//! # lexcache — Learning for Exception
//!
//! A full Rust reproduction of *Learning for Exception: Dynamic Service
//! Caching in 5G-Enabled MECs with Bursty User Demands* (ICDCS 2020).
//!
//! The umbrella crate re-exports every subsystem:
//!
//! * [`net`] — the 5G heterogeneous MEC network substrate (base stations,
//!   tiers, topologies, stochastic delay processes).
//! * [`workload`] — services, user requests and bursty demand generators,
//!   plus the synthetic small-sample hotspot trace used to train the GAN.
//! * [`simplex`] — a from-scratch two-phase primal simplex LP solver and
//!   the caching ILP → LP lowering.
//! * [`bandit`] — multi-armed-bandit machinery: arm statistics, ε-greedy
//!   policies, empirical regret ledgers and the paper's theoretical bound.
//! * [`neural`] — a minimal from-scratch neural-network library (matrices,
//!   dense layers, LSTM / Bi-LSTM, Adam) used by the GAN.
//! * [`infogan`] — the Info-RNN-GAN demand predictor of §V.
//! * [`forecast`] — the ARMA baseline predictor (`OL_Reg`) and friends.
//! * [`core`] — the paper's algorithms: `OL_GD`, `OL_GAN`, `Greedy_GD`,
//!   `Pri_GD`, `OL_Reg`, and the slot-by-slot simulation engine.
//!
//! # Quickstart
//!
//! ```
//! use lexcache::net::{NetworkConfig, topology::gtitm};
//! use lexcache::workload::ScenarioConfig;
//! use lexcache::core::{Episode, OlGd, PolicyConfig};
//!
//! let net_cfg = NetworkConfig::paper_defaults();
//! let topo = gtitm::generate(20, &net_cfg, 7);
//! let scenario = ScenarioConfig::small().build(&topo, 7);
//! let mut episode = Episode::new(topo, net_cfg, scenario, 7);
//! let report = episode.run(&mut OlGd::new(PolicyConfig::default()), 10);
//! assert_eq!(report.slots.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bandit;
pub use forecast;
pub use infogan;
pub use lexcache_core as core;
pub use lexcache_queue as queue;
pub use lexcache_resilience as resilience;
pub use mec_net as net;
pub use mec_workload as workload;
pub use neural;
pub use simplex;
