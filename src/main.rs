//! `lexcache` command-line interface: run simulations, inspect
//! topologies and workload traces without writing Rust.
//!
//! ```text
//! lexcache simulate --policy ol-gd --stations 100 --slots 100
//! lexcache simulate --policy ol-gan --demand flash --seed 7 --regret
//! lexcache topo --kind as1755
//! lexcache trace --users 20 --cells 5 --slots 200
//! ```

#![forbid(unsafe_code)]

use lexcache::core::{
    ol_ewma, ol_naive, CachingPolicy, Episode, EpisodeConfig, GreedyGd, OlGan, OlGd, OlReg, OlUcb,
    PolicyConfig, PriGd,
};
use lexcache::infogan::InfoGanConfig;
use lexcache::net::topology::{as1755, gtitm, transit_stub};
use lexcache::net::{NetworkConfig, Topology};
use lexcache::workload::demand::FlashCrowdConfig;
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::{stats, HotspotTrace, ScenarioConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
lexcache — dynamic service caching in 5G MECs (ICDCS 2020 reproduction)

USAGE:
  lexcache simulate [--policy P] [--topology T] [--stations N]
                    [--requests N] [--slots N] [--demand D] [--seed S]
                    [--regret] [--hidden-demands]
  lexcache topo     [--kind T] [--stations N] [--seed S]
  lexcache trace    [--users N] [--cells N] [--slots N] [--seed S]
  lexcache help

OPTIONS:
  --policy     ol-gd | greedy | pri | ol-reg | ol-gan | ol-ucb |
               ol-ewma | ol-naive              (default ol-gd)
  --topology   gtitm | as1755 | transit-stub   (default gtitm)
  --demand     fixed | flash | mmpp | onoff    (default fixed)
  --stations   base-station count              (default 100)
  --requests   request count                   (default 150)
  --slots      time horizon                    (default 100)
  --seed       RNG seed                        (default 0)
  --regret     track clairvoyant regret
  --hidden-demands  withhold true demands (forced for ol-reg/ol-gan)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "topo" => cmd_topo(&opts),
        "trace" => cmd_trace(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--key value` options (`--regret`-style flags get value "true").
type Options = BTreeMap<String, String>;

fn parse_options(args: &[String]) -> Result<Options, String> {
    const FLAGS: [&str; 2] = ["regret", "hidden-demands"];
    let mut opts = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{arg}`"))?;
        if FLAGS.contains(&key) {
            opts.insert(key.to_string(), "true".to_string());
        } else {
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            opts.insert(key.to_string(), value.clone());
        }
    }
    Ok(opts)
}

fn get_usize(opts: &Options, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a positive integer, got `{v}`")),
    }
}

fn get_u64(opts: &Options, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

fn build_topology(opts: &Options, stations: usize, seed: u64) -> Result<Topology, String> {
    let cfg = NetworkConfig::paper_defaults();
    match opts
        .get("topology")
        .or(opts.get("kind"))
        .map(String::as_str)
    {
        None | Some("gtitm") => Ok(gtitm::generate(stations, &cfg, seed)),
        Some("as1755") => Ok(as1755::scaled(stations, &cfg, seed)),
        Some("transit-stub") => Ok(transit_stub::generate(
            transit_stub::TransitStubConfig::for_size(stations),
            &cfg,
            seed,
        )),
        Some(other) => Err(format!("unknown topology `{other}`")),
    }
}

fn demand_kind(opts: &Options) -> Result<DemandKind, String> {
    match opts.get("demand").map(String::as_str) {
        None | Some("fixed") => Ok(DemandKind::Fixed),
        Some("flash") => Ok(DemandKind::Flash(FlashCrowdConfig::default())),
        Some("mmpp") => Ok(DemandKind::Mmpp {
            p_busy: 0.2,
            p_calm: 0.3,
            busy_extra: 10.0,
        }),
        Some("onoff") => Ok(DemandKind::OnOff {
            p_on: 0.25,
            scale: 3.0,
            shape: 1.3,
            cap: 25.0,
        }),
        Some(other) => Err(format!("unknown demand model `{other}`")),
    }
}

fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let stations = get_usize(opts, "stations", 100)?;
    let requests = get_usize(opts, "requests", 150)?;
    let slots = get_usize(opts, "slots", 100)?;
    let seed = get_u64(opts, "seed", 0)?;
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = build_topology(opts, stations, seed)?;
    let scenario = ScenarioConfig::paper_defaults()
        .with_requests(requests)
        .with_demand(demand_kind(opts)?)
        .build(&topo, seed);

    let policy_name = opts.get("policy").map(String::as_str).unwrap_or("ol-gd");
    let policy_cfg = PolicyConfig::default().with_seed(seed);
    let mut policy: Box<dyn CachingPolicy> = match policy_name {
        "ol-gd" => Box::new(OlGd::new(policy_cfg)),
        "greedy" => Box::new(GreedyGd::new()),
        "pri" => Box::new(PriGd::new()),
        "ol-reg" => Box::new(OlReg::new(policy_cfg, 3)),
        "ol-ucb" => Box::new(OlUcb::new(seed)),
        "ol-ewma" => Box::new(ol_ewma(policy_cfg)),
        "ol-naive" => Box::new(ol_naive(policy_cfg)),
        "ol-gan" => {
            let mut gan_cfg = InfoGanConfig::paper_defaults(scenario.n_cells());
            gan_cfg.window = 10;
            gan_cfg.bins = 24;
            gan_cfg.mu = 3.0;
            Box::new(OlGan::new(policy_cfg, gan_cfg, seed))
        }
        other => return Err(format!("unknown policy `{other}`")),
    };

    let hidden = opts.contains_key("hidden-demands")
        || matches!(policy_name, "ol-reg" | "ol-gan" | "ol-ewma" | "ol-naive");
    let mut ep_cfg = EpisodeConfig::new(seed);
    if hidden {
        ep_cfg = ep_cfg.hidden_demands();
    }
    if opts.contains_key("regret") {
        ep_cfg = ep_cfg.with_regret();
    }
    println!(
        "simulate: {} on {} ({} stations, {} requests, {} slots, seed {seed})",
        policy.name(),
        topo.name(),
        topo.len(),
        requests,
        slots
    );
    let mut episode = Episode::with_config(topo, net_cfg, scenario, ep_cfg);
    let report = episode.run(policy.as_mut(), slots);
    println!(
        "mean average delay : {:>10.2} ms",
        report.mean_avg_delay_ms()
    );
    println!(
        "mean decide time   : {:>10.3} ms/slot",
        report.mean_decide_us() / 1000.0
    );
    println!("remote fallbacks   : {:>10}", report.total_remote());
    if let Some(regret) = report.cumulative_regret_ms() {
        println!("cumulative regret  : {:>10.2} ms", regret);
    }
    Ok(())
}

fn cmd_topo(opts: &Options) -> Result<(), String> {
    let stations = get_usize(opts, "stations", 87)?;
    let seed = get_u64(opts, "seed", 0)?;
    let topo = build_topology(opts, stations, seed)?;
    println!("topology {}", topo.name());
    println!("stations        : {}", topo.len());
    println!("links           : {}", topo.edge_count());
    println!("connected       : {}", topo.is_connected());
    println!("mean hop length : {:.2}", topo.mean_hop_length());
    println!("total capacity  : {:.0} MHz", topo.total_capacity_mhz());
    let mut by_tier = BTreeMap::new();
    for bs in topo.stations() {
        *by_tier.entry(bs.tier().name()).or_insert(0usize) += 1;
    }
    let mut tiers: Vec<_> = by_tier.into_iter().collect();
    tiers.sort();
    for (tier, count) in tiers {
        println!("  {tier:<6}: {count}");
    }
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let users = get_usize(opts, "users", 20)?;
    let cells = get_usize(opts, "cells", 5)?;
    let slots = get_usize(opts, "slots", 200)?;
    if slots < 2 {
        return Err("--slots must be at least 2 for trace statistics".into());
    }
    let seed = get_u64(opts, "seed", 0)?;
    let trace = HotspotTrace::synthesize(users, cells, 3, slots, seed);
    println!(
        "trace: {} users, {} cells, {} slots, {} rows",
        trace.n_users(),
        trace.n_cells(),
        trace.n_slots(),
        trace.rows().len()
    );
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>8}",
        "cell", "dispersion", "peak/mean", "autocorr(1)", "hurst"
    );
    for (c, series) in trace.cell_demand_series().iter().enumerate() {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>8.2}",
            c,
            stats::index_of_dispersion(series),
            stats::peak_to_mean(series),
            stats::autocorrelation(series, 1),
            stats::hurst_rs(series),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[&str]) -> Options {
        parse_options(&pairs.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("valid options")
    }

    #[test]
    fn parses_key_value_and_flags() {
        let o = opts(&["--stations", "40", "--regret", "--policy", "greedy"]);
        assert_eq!(o.get("stations").map(String::as_str), Some("40"));
        assert_eq!(o.get("regret").map(String::as_str), Some("true"));
        assert_eq!(o.get("policy").map(String::as_str), Some("greedy"));
    }

    #[test]
    fn rejects_missing_value() {
        let args = vec!["--stations".to_string()];
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn rejects_positional_arguments() {
        let args = vec!["fast".to_string()];
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn numeric_parsing_defaults_and_errors() {
        let o = opts(&["--slots", "7"]);
        assert_eq!(get_usize(&o, "slots", 100).expect("parses"), 7);
        assert_eq!(get_usize(&o, "stations", 100).expect("default"), 100);
        let bad = opts(&["--slots", "x"]);
        assert!(get_usize(&bad, "slots", 100).is_err());
    }

    #[test]
    fn topology_selection() {
        let o = opts(&["--topology", "as1755"]);
        let t = build_topology(&o, 30, 1).expect("builds");
        assert!(t.name().starts_with("as1755"));
        let bad = opts(&["--topology", "nope"]);
        assert!(build_topology(&bad, 10, 1).is_err());
    }

    #[test]
    fn demand_selection() {
        assert_eq!(demand_kind(&opts(&[])).expect("default"), DemandKind::Fixed);
        assert!(matches!(
            demand_kind(&opts(&["--demand", "flash"])).expect("flash"),
            DemandKind::Flash(_)
        ));
        assert!(demand_kind(&opts(&["--demand", "zzz"])).is_err());
    }

    #[test]
    fn small_simulation_through_cli_path() {
        let o = opts(&[
            "--stations",
            "12",
            "--requests",
            "8",
            "--slots",
            "3",
            "--policy",
            "greedy",
        ]);
        cmd_simulate(&o).expect("runs");
    }

    #[test]
    fn topo_and_trace_commands_run() {
        cmd_topo(&opts(&["--stations", "20"])).expect("topo");
        cmd_trace(&opts(&["--users", "4", "--cells", "2", "--slots", "30"])).expect("trace");
    }
}
