//! The paper's motivating scenario: a museum VR service hit by flash
//! crowds. Demands are *not* known in advance; `OL_GAN` predicts each
//! location cell's bursty demand with the Info-RNN-GAN while `OL_Reg`
//! uses the fixed-weight ARMA of Eq. 27.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vr_flash_crowd
//! ```

use lexcache::core::{Episode, EpisodeConfig, OlGan, OlReg, PolicyConfig};
use lexcache::infogan::InfoGanConfig;
use lexcache::net::{topology::gtitm, NetworkConfig};
use lexcache::workload::demand::{DemandProcess as _, FlashCrowd, FlashCrowdConfig};
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::ScenarioConfig;

fn main() {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(60, &net_cfg, 7);
    let scenario = ScenarioConfig::paper_defaults()
        .with_requests(100)
        .with_demand(DemandKind::Flash(FlashCrowdConfig::default()))
        .build(&topo, 7);
    let n_cells = scenario.n_cells();
    println!(
        "VR flash-crowd scenario: {} users across {} museum cells",
        scenario.requests().len(),
        n_cells
    );

    // Pre-train OL_GAN on a small historical sample: 60 slots of an
    // independent burst-rich realization, reduced to per-cell burst
    // residuals (the stand-in for the NYC hotspot trace).
    let mut cell_basics = vec![0.0; n_cells];
    for r in scenario.requests() {
        cell_basics[r.location_cell()] += r.basic_demand();
    }
    let mut history = FlashCrowd::new(
        scenario.requests(),
        FlashCrowdConfig {
            event_probability: 0.5,
            ..FlashCrowdConfig::default()
        },
        999,
    );
    let n_hist = 60;
    let mut series = vec![vec![0.0; n_hist]; n_cells];
    for t in 0..n_hist {
        history.advance();
        for r in scenario.requests() {
            series[r.location_cell()][t] += history.demand(r.id());
        }
        for c in 0..n_cells {
            series[c][t] = (series[c][t] - cell_basics[c]).max(0.0);
        }
    }
    let cells: Vec<usize> = (0..n_cells).collect();

    let mut gan_cfg = InfoGanConfig::paper_defaults(n_cells);
    gan_cfg.window = 10;
    gan_cfg.bins = 24;
    gan_cfg.mu = 3.0;
    let mut ol_gan = OlGan::new(PolicyConfig::default(), gan_cfg, 7);
    ol_gan.pretrain(&series, &cells, 120);
    println!(
        "pre-trained Info-RNN-GAN ({} parameters) on {} slots of history",
        ol_gan.gan().n_params(),
        n_hist
    );

    // Unknown-demand episodes (the policies never see the true ρ(t)).
    let horizon = 80;
    let cfg = EpisodeConfig::new(7).hidden_demands();
    let mut e1 = Episode::with_config(topo.clone(), net_cfg.clone(), scenario.clone(), cfg);
    let gan_report = e1.run(&mut ol_gan, horizon);
    let mut e2 = Episode::with_config(topo, net_cfg, scenario, cfg);
    let reg_report = e2.run(&mut OlReg::new(PolicyConfig::default(), 3), horizon);

    println!("\nper-slot average delay (ms) around the first bursts:");
    println!("{:>6} {:>10} {:>10}", "slot", "OL_GAN", "OL_Reg");
    for t in (0..horizon).step_by(8) {
        println!(
            "{:>6} {:>10.1} {:>10.1}",
            t + 1,
            gan_report.slots[t].avg_delay_ms,
            reg_report.slots[t].avg_delay_ms
        );
    }
    println!(
        "\nmeans: OL_GAN {:.2} ms vs OL_Reg {:.2} ms ({:+.1}%)",
        gan_report.mean_avg_delay_ms(),
        reg_report.mean_avg_delay_ms(),
        (gan_report.mean_avg_delay_ms() - reg_report.mean_avg_delay_ms())
            / reg_report.mean_avg_delay_ms()
            * 100.0
    );
    println!(
        "runtime: OL_GAN {:.1} vs OL_Reg {:.1} ms/slot",
        gan_report.mean_decide_us() / 1000.0,
        reg_report.mean_decide_us() / 1000.0
    );
}
