//! Topology tour: the same workload and policy across the three
//! topology families (flat GT-ITM, hierarchical transit-stub, AS1755
//! hub-and-spoke), with and without endogenous load-driven congestion.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example topology_tour
//! ```

use lexcache::core::{Episode, EpisodeConfig, GreedyGd, OlGd, PolicyConfig};
use lexcache::net::topology::{as1755, gtitm, transit_stub};
use lexcache::net::{NetworkConfig, Topology};
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::ScenarioConfig;

fn build(kind: &str, net_cfg: &NetworkConfig) -> Topology {
    match kind {
        "gtitm" => gtitm::generate(87, net_cfg, 3),
        "transit-stub" => {
            transit_stub::generate(transit_stub::TransitStubConfig::for_size(87), net_cfg, 3)
        }
        _ => as1755::generate(net_cfg, 0),
    }
}

fn main() {
    let net_cfg = NetworkConfig::paper_defaults();
    let horizon = 60;
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>12}",
        "topology", "hops", "OL_GD", "Greedy", "advantage"
    );
    for kind in ["gtitm", "transit-stub", "as1755"] {
        for &sensitivity in &[0.0, 2.0] {
            let topo = build(kind, &net_cfg);
            let hops = topo.mean_hop_length();
            let scenario = ScenarioConfig::paper_defaults()
                .with_demand(DemandKind::Fixed)
                .build(&topo, 3);
            let ep_cfg = EpisodeConfig::new(3).with_load_sensitivity(sensitivity);
            let mut e1 =
                Episode::with_config(topo.clone(), net_cfg.clone(), scenario.clone(), ep_cfg);
            let ol = e1
                .run(&mut OlGd::new(PolicyConfig::default()), horizon)
                .mean_avg_delay_ms();
            let mut e2 = Episode::with_config(topo, net_cfg.clone(), scenario, ep_cfg);
            let greedy = e2.run(&mut GreedyGd::new(), horizon).mean_avg_delay_ms();
            let label = if sensitivity > 0.0 {
                format!("{kind}+load")
            } else {
                kind.to_string()
            };
            println!(
                "{:>14} {:>10.2} {:>10.2} {:>10.2} {:>11.1}%",
                label,
                hops,
                ol,
                greedy,
                (greedy - ol) / greedy * 100.0
            );
        }
    }
    println!("\nload-driven congestion (\"+load\") models bottleneck links: stations");
    println!("slow down because traffic concentrates on them, which widens the");
    println!("learner's advantage most on hub-and-spoke graphs (see fig5/EXPERIMENTS.md).");
}
