//! Quickstart: build a 5G MEC network, attach a workload, and compare
//! the paper's online learner (`OL_GD`) against the static greedy
//! baseline over a short horizon.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lexcache::core::{Episode, GreedyGd, OlGd, PolicyConfig};
use lexcache::net::{topology::gtitm, NetworkConfig};
use lexcache::workload::ScenarioConfig;

fn main() {
    // An 80-station heterogeneous network with the paper's §VI-A
    // parameters: one macro tier (8–16 GHz cloudlets, 100 m cells),
    // micro and femto tiers below it, links with probability 0.1.
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(80, &net_cfg, 42);
    println!(
        "network: {} stations, {} links, connected: {}",
        topo.len(),
        topo.edge_count(),
        topo.is_connected()
    );

    // 120 user requests over 10 services with fixed (given) demands.
    let scenario = ScenarioConfig::paper_defaults()
        .with_requests(120)
        .build(&topo, 42);
    println!(
        "workload: {} requests, {} services, {} location cells",
        scenario.requests().len(),
        scenario.services().len(),
        scenario.n_cells()
    );

    // Paired episodes: same seed → same hidden delay realization, so the
    // comparison is apples-to-apples.
    let horizon = 100;
    let mut ol_episode = Episode::new(topo.clone(), net_cfg.clone(), scenario.clone(), 42);
    let ol = ol_episode.run(&mut OlGd::new(PolicyConfig::default()), horizon);

    let mut greedy_episode = Episode::new(topo, net_cfg, scenario, 42);
    let greedy = greedy_episode.run(&mut GreedyGd::new(), horizon);

    println!(
        "\n{:>10} {:>16} {:>18}",
        "policy", "avg delay (ms)", "decide (ms/slot)"
    );
    for report in [&ol, &greedy] {
        println!(
            "{:>10} {:>16.2} {:>18.3}",
            report.policy,
            report.mean_avg_delay_ms(),
            report.mean_decide_us() / 1000.0
        );
    }
    let gain =
        (greedy.mean_avg_delay_ms() - ol.mean_avg_delay_ms()) / greedy.mean_avg_delay_ms() * 100.0;
    println!("\nOL_GD improves on Greedy_GD by {gain:.1}% (paper reports ~15% at 100 slots)");
}
