//! Theorem 1 in action: track `OL_GD`'s cumulative regret against the
//! clairvoyant per-slot optimum and compare with the theoretical bound
//! `σ·log((T−1)/(e^{1/c}+1))`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example regret_audit
//! ```

use lexcache::bandit::{theorem1_bound, EpsilonSchedule, GapParams};
use lexcache::core::{Episode, EpisodeConfig, OlGd, PolicyConfig};
use lexcache::net::{topology::gtitm, NetworkConfig};
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::ScenarioConfig;

fn main() {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(40, &net_cfg, 11);
    let scenario = ScenarioConfig::paper_defaults()
        .with_requests(60)
        .with_demand(DemandKind::Fixed)
        .build(&topo, 11);

    let c = 0.5;
    let gamma = 0.1;
    let horizon = 100;
    let mut policy = OlGd::new(
        PolicyConfig::default()
            .with_gamma(gamma)
            .with_epsilon(EpsilonSchedule::Decay { c }),
    );
    let mut episode = Episode::with_config(
        topo,
        net_cfg,
        scenario,
        EpisodeConfig::new(11).with_regret(),
    );
    let report = episode.run(&mut policy, horizon);
    let curve = report.regret_curve().expect("regret tracking enabled");

    // Lemma 1 gap σ from the environment's known support: congestion can
    // triple the slowest tier delay, jitter adds ±25%.
    let sigma = GapParams {
        n_requests: 60,
        d_max: 50.0 * 1.25 * 3.0,
        d_min: 5.0 * 0.75,
        delta_ins: 30.0,
        gamma,
    }
    .sigma();

    println!("sigma (Lemma 1 gap): {sigma:.1}");
    println!(
        "\n{:>6} {:>20} {:>20}",
        "slot", "empirical regret", "Theorem 1 bound"
    );
    for t in (9..horizon).step_by(10) {
        println!(
            "{:>6} {:>20.2} {:>20.2}",
            t + 1,
            curve[t],
            theorem1_bound(sigma, t + 1, c)
        );
    }
    let total = curve.last().copied().unwrap_or(0.0);
    let bound = theorem1_bound(sigma, horizon, c);
    println!(
        "\nfinal: empirical {total:.1} <= bound {bound:.1}: {}",
        total <= bound
    );
    let half = curve[horizon / 2 - 1];
    println!(
        "log-like growth (second half {:.1} < first half {:.1}): {}",
        total - half,
        half,
        total - half < half
    );
}
