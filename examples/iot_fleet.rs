//! An IoT stream-processing fleet: many small requests with independent
//! heavy-tailed on/off bursts (self-similar traffic), compared across
//! all three given-demand policies on the AS1755 real topology.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example iot_fleet
//! ```

use lexcache::core::{CachingPolicy, Episode, GreedyGd, OlGd, PolicyConfig, PriGd};
use lexcache::net::{topology::as1755, NetworkConfig};
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::ScenarioConfig;

fn main() {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = as1755::generate(&net_cfg, 0);
    println!(
        "AS1755-shaped backbone: {} routers, {} links, mean path {:.2} hops",
        topo.len(),
        topo.edge_count(),
        topo.mean_hop_length()
    );

    // 120 IoT streams: small basics, Pareto-tailed bursts capped at 25
    // data units, demands revealed to the *_GD policies.
    let scenario = ScenarioConfig::paper_defaults()
        .with_requests(120)
        .with_demand(DemandKind::OnOff {
            p_on: 0.25,
            scale: 3.0,
            shape: 1.3,
            cap: 25.0,
        })
        .build(&topo, 3);

    let horizon = 80;
    let mut policies: Vec<Box<dyn CachingPolicy>> = vec![
        Box::new(OlGd::new(PolicyConfig::default())),
        Box::new(GreedyGd::new()),
        Box::new(PriGd::new()),
    ];
    println!(
        "\n{:>10} {:>16} {:>14} {:>10}",
        "policy", "avg delay (ms)", "remote tasks", "ms/slot"
    );
    for policy in policies.iter_mut() {
        let mut episode = Episode::new(topo.clone(), net_cfg.clone(), scenario.clone(), 3);
        let report = episode.run(policy.as_mut(), horizon);
        println!(
            "{:>10} {:>16.2} {:>14} {:>10.3}",
            report.policy,
            report.mean_avg_delay_ms(),
            report.total_remote(),
            report.mean_decide_us() / 1000.0
        );
    }
    println!("\nreal topologies concentrate load on hub routers, so the online");
    println!("learner's ability to avoid congested cloudlets matters more than");
    println!("on flat synthetic graphs (compare `cargo run -p bench --bin fig5`).");
}
