//! End-to-end tests of the `lexcache` command-line binary.

use std::process::Command;

fn lexcache(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lexcache"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = lexcache(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = lexcache(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = lexcache(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_policy_fails_cleanly() {
    let out = lexcache(&["simulate", "--policy", "magic"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn topo_reports_structure() {
    let out = lexcache(&["topo", "--kind", "as1755", "--stations", "87"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stations        : 87"));
    assert!(text.contains("connected       : true"));
    assert!(text.contains("macro"));
}

#[test]
fn small_simulation_reports_metrics() {
    let out = lexcache(&[
        "simulate",
        "--policy",
        "greedy",
        "--stations",
        "15",
        "--requests",
        "10",
        "--slots",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean average delay"));
    assert!(text.contains("Greedy_GD"));
}

#[test]
fn regret_flag_adds_regret_line() {
    let out = lexcache(&[
        "simulate",
        "--policy",
        "ol-gd",
        "--stations",
        "12",
        "--requests",
        "8",
        "--slots",
        "3",
        "--regret",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cumulative regret"));
}

#[test]
fn trace_prints_burstiness_table() {
    let out = lexcache(&["trace", "--users", "6", "--cells", "2", "--slots", "40"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dispersion"));
    assert!(text.contains("hurst"));
}

#[test]
fn bad_numeric_value_is_reported() {
    let out = lexcache(&["simulate", "--slots", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--slots"));
}
