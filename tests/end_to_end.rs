//! Cross-crate integration tests: the full pipeline from topology
//! generation through workload synthesis, LP lowering, bandit learning
//! and GAN prediction to episode metrics.

use lexcache::core::{
    CachingPolicy, Episode, EpisodeConfig, GreedyGd, OlGan, OlGd, OlReg, PolicyConfig, PriGd,
};
use lexcache::infogan::InfoGanConfig;
use lexcache::net::{topology::as1755, topology::gtitm, NetworkConfig};
use lexcache::workload::demand::FlashCrowdConfig;
use lexcache::workload::scenario::DemandKind;
use lexcache::workload::ScenarioConfig;

fn given_demand_episode(n: usize, seed: u64) -> Episode {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(n, &net_cfg, seed);
    let scenario = ScenarioConfig::small().with_requests(20).build(&topo, seed);
    Episode::new(topo, net_cfg, scenario, seed)
}

#[test]
fn all_five_policies_complete_an_episode() {
    let net_cfg = NetworkConfig::paper_defaults();
    let horizon = 6;
    let build = |seed| {
        let topo = gtitm::generate(20, &net_cfg, seed);
        let scenario = ScenarioConfig::small()
            .with_demand(DemandKind::Flash(FlashCrowdConfig::default()))
            .build(&topo, seed);
        (topo, scenario)
    };
    let (topo, scenario) = build(1);
    let n_cells = scenario.n_cells();
    let mut policies: Vec<(Box<dyn CachingPolicy>, bool)> = vec![
        (Box::new(OlGd::new(PolicyConfig::default())), true),
        (Box::new(GreedyGd::new()), true),
        (Box::new(PriGd::new()), true),
        (Box::new(OlReg::new(PolicyConfig::default(), 3)), false),
        (
            Box::new(OlGan::new(
                PolicyConfig::default(),
                InfoGanConfig::small(n_cells),
                1,
            )),
            false,
        ),
    ];
    for (policy, given) in policies.iter_mut() {
        let mut cfg = EpisodeConfig::new(1);
        if !*given {
            cfg = cfg.hidden_demands();
        }
        let mut episode =
            Episode::with_config(topo.clone(), net_cfg.clone(), scenario.clone(), cfg);
        let report = episode.run(policy.as_mut(), horizon);
        assert_eq!(report.slots.len(), horizon, "{}", report.policy);
        assert!(
            report.mean_avg_delay_ms() > 0.0 && report.mean_avg_delay_ms().is_finite(),
            "{} produced bad delays",
            report.policy
        );
    }
}

#[test]
fn seeded_runs_are_bit_identical() {
    let run = || {
        let mut episode = given_demand_episode(15, 9);
        episode
            .run(&mut OlGd::new(PolicyConfig::default().with_seed(9)), 8)
            .delay_series()
    };
    assert_eq!(run(), run());
}

#[test]
fn learning_converges_toward_clairvoyant_optimum() {
    // Over a long horizon the per-slot regret of OL_GD should shrink:
    // compare mean regret of the first and last quarter.
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(30, &net_cfg, 4);
    let scenario = ScenarioConfig::small().with_requests(25).build(&topo, 4);
    let mut episode =
        Episode::with_config(topo, net_cfg, scenario, EpisodeConfig::new(4).with_regret());
    let horizon = 80;
    let report = episode.run(&mut OlGd::new(PolicyConfig::default()), horizon);
    let per_slot: Vec<f64> = report
        .slots
        .iter()
        .map(|s| s.avg_delay_ms - s.optimal_avg_delay_ms.expect("tracked"))
        .collect();
    let q = horizon / 4;
    let early: f64 = per_slot[..q].iter().sum::<f64>() / q as f64;
    let late: f64 = per_slot[horizon - q..].iter().sum::<f64>() / q as f64;
    assert!(
        late < early,
        "regret should shrink with learning: early {early:.2}, late {late:.2}"
    );
}

#[test]
fn ol_gd_beats_static_baselines_over_seeds() {
    let horizon = 60;
    let seeds = [0u64, 1, 2];
    let mut ol = 0.0;
    let mut greedy = 0.0;
    for &seed in &seeds {
        let mut e1 = given_demand_episode(40, seed);
        ol += e1
            .run(
                &mut OlGd::new(PolicyConfig::default().with_seed(seed)),
                horizon,
            )
            .mean_avg_delay_ms();
        let mut e2 = given_demand_episode(40, seed);
        greedy += e2.run(&mut GreedyGd::new(), horizon).mean_avg_delay_ms();
    }
    assert!(
        ol < greedy,
        "OL_GD ({ol:.1}) should beat Greedy_GD ({greedy:.1}) over {} seeds",
        seeds.len()
    );
}

#[test]
fn as1755_episode_runs_end_to_end() {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = as1755::generate(&net_cfg, 0);
    let scenario = ScenarioConfig::small().with_requests(30).build(&topo, 2);
    let mut episode = Episode::new(topo, net_cfg, scenario, 2);
    let report = episode.run(&mut PriGd::new(), 10);
    assert_eq!(report.topology, "as1755");
    assert!(report.mean_avg_delay_ms() > 0.0);
}

#[test]
fn gan_pipeline_pretrain_predict_update() {
    // Synthesize a small-sample trace, pretrain, then run the policy in
    // the unknown-demand regime — the full Algorithm 2 pipeline.
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(20, &net_cfg, 5);
    let scenario = ScenarioConfig::small()
        .with_requests(16)
        .with_demand(DemandKind::Flash(FlashCrowdConfig::default()))
        .build(&topo, 5);
    let n_cells = scenario.n_cells();
    let mut cell_basics = vec![0.0; n_cells];
    for r in scenario.requests() {
        cell_basics[r.location_cell()] += r.basic_demand();
    }
    // Tiny burst-residual pretraining series.
    let series: Vec<Vec<f64>> = (0..n_cells)
        .map(|c| {
            (0..20)
                .map(|t| {
                    if t % 7 == 0 {
                        10.0 * (c + 1) as f64
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let cells: Vec<usize> = (0..n_cells).collect();
    let mut policy = OlGan::new(PolicyConfig::default(), InfoGanConfig::small(n_cells), 5);
    policy.pretrain(&series, &cells, 10);
    let mut episode = Episode::with_config(
        topo,
        net_cfg,
        scenario,
        EpisodeConfig::new(5).hidden_demands(),
    );
    let report = episode.run(&mut policy, 8);
    assert_eq!(report.policy, "OL_GAN");
    assert!(report.slots.iter().all(|s| s.avg_delay_ms.is_finite()));
}

#[test]
fn runtime_ordering_matches_figure_3b() {
    // OL_GD (LP per slot) must cost more per decision than the greedy
    // baselines — the qualitative content of Fig. 3(b).
    let mut e1 = given_demand_episode(40, 7);
    let ol = e1.run(&mut OlGd::new(PolicyConfig::default()), 15);
    let mut e2 = given_demand_episode(40, 7);
    let greedy = e2.run(&mut GreedyGd::new(), 15);
    assert!(
        ol.mean_decide_us() > greedy.mean_decide_us(),
        "OL_GD {}us vs greedy {}us",
        ol.mean_decide_us(),
        greedy.mean_decide_us()
    );
}
