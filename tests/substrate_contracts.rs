//! Cross-crate contract tests: the pieces the algorithms assume about
//! their substrates.

use lexcache::bandit::{ArmSet, GapParams};
use lexcache::forecast::{mae, MultiSeries, PaperArma, Predictor as _};
use lexcache::infogan::{InfoGanConfig, InfoRnnGan};
use lexcache::net::delay::{DelayProcess as _, UniformTierDelay};
use lexcache::net::{topology::gtitm, NetworkConfig};
use lexcache::simplex::{CachingLp, LinearProgram, Relation};
use lexcache::workload::demand::DemandProcess as _;
use lexcache::workload::{HotspotTrace, ScenarioConfig};

#[test]
fn arm_estimates_converge_to_delay_process_means() {
    // Feed an ArmSet the actual draws of a delay process; the empirical
    // mean must approach the process's declared true mean — the contract
    // Algorithm 1's believed-delay LP relies on.
    let cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(10, &cfg, 3);
    let mut process = UniformTierDelay::new(&topo, &cfg, 3);
    let mut arms = ArmSet::new(10);
    for _ in 0..3000 {
        process.advance();
        for i in 0..10 {
            arms.observe(i, process.unit_delay(lexcache::net::BsId(i)));
        }
    }
    for i in 0..10 {
        let estimated = arms.mean(i).expect("observed");
        let truth = process.true_mean(lexcache::net::BsId(i));
        assert!(
            (estimated - truth).abs() < 0.1 * truth,
            "arm {i}: {estimated} vs {truth}"
        );
    }
}

#[test]
fn lemma1_sigma_covers_realized_per_slot_gap() {
    // The Lemma 1 gap is an upper bound on how much worse any caching
    // can be than the best one in a single slot; verify empirically on
    // random assignments.
    let cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(12, &cfg, 1);
    let scenario = ScenarioConfig::small().build(&topo, 1);
    let n = topo.len();
    let demands: Vec<f64> = scenario
        .requests()
        .iter()
        .map(|r| r.basic_demand())
        .collect();
    let believed: Vec<f64> = topo
        .stations()
        .iter()
        .map(|b| cfg.tier(b.tier()).unit_delay_ms.hi)
        .collect();
    let lp = lexcache::core::lowering::build_caching_lp(
        &topo,
        &scenario,
        &lexcache::core::TransferCosts::compute(&topo, &scenario),
        &believed,
        &demands,
        75.0,
    );
    // Best vs worst single-station assignment (per-request local view).
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for i in 0..n {
        let assignment = vec![i; demands.len()];
        if lp.respects_capacity(&assignment) {
            let v = lp.assignment_objective(&assignment);
            best = best.min(v);
            worst = worst.max(v);
        }
    }
    let sigma = GapParams {
        n_requests: demands.len(),
        d_max: 50.0 * 1.25 * 3.0 + 1_000.0, // delay + worst transfer penalty
        d_min: 5.0 * 0.75,
        delta_ins: 30.0,
        gamma: 0.1,
    }
    .sigma();
    assert!(
        worst - best <= sigma,
        "realized gap {} exceeds sigma {}",
        worst - best,
        sigma
    );
}

#[test]
fn trace_feeds_gan_training_end_to_end() {
    let trace = HotspotTrace::synthesize(12, 3, 2, 40, 8);
    let series = trace.cell_demand_series();
    let cells: Vec<usize> = (0..trace.n_cells()).collect();
    let mut gan = InfoRnnGan::new(InfoGanConfig::small(trace.n_cells()), 8);
    let report = gan.fit(&series, &cells, 8);
    assert_eq!(report.d_loss.len(), 8);
    assert!(report.d_loss.iter().all(|l| l.is_finite()));
    let pred = gan.predict_next(&series[0][..10], 0);
    assert!(pred.is_finite() && pred >= 0.0);
}

#[test]
fn arma_bank_tracks_scenario_demands() {
    let cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(15, &cfg, 2);
    let mut scenario = ScenarioConfig::small().build(&topo, 2);
    let n = scenario.requests().len();
    let mut bank = MultiSeries::from_fn(n, || PaperArma::with_linear_weights(3));
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    for _ in 0..30 {
        scenario.demand_mut().advance();
        let demands = scenario.demand().demands();
        preds.extend(bank.predict_all());
        actuals.extend(demands.iter().copied());
        bank.observe_all(&demands);
    }
    // Fixed demands: after warm-up the ARMA is exact; allow the cold
    // start to dominate the first slots only.
    let tail_preds = &preds[n * 5..];
    let tail_actuals = &actuals[n * 5..];
    assert!(mae(tail_preds, tail_actuals) < 1e-9);
}

#[test]
fn simplex_handles_caching_shaped_blocks() {
    // A miniature of the full ILP relaxation solved through the generic
    // path: assignment rows, capacity rows, y-link rows.
    let lp = CachingLp::new(
        vec![2.0, 3.0],
        vec![0, 1],
        vec![vec![1.0, 9.0], vec![9.0, 1.0]],
        vec![5.0, 5.0],
        vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        2,
    );
    let exact = lp.solve_exact().expect("small instance");
    let fast = lp.solve_fast().expect("feasible");
    assert!(exact.is_feasible(&lp, 1e-6));
    assert!(fast.is_feasible(&lp, 1e-6));
    assert!(fast.objective >= exact.objective - 1e-9);

    // And the raw builder API stays usable for custom models.
    let mut custom = LinearProgram::minimize(vec![1.0, 2.0]);
    custom.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 1.0);
    let sol = lexcache::simplex::dense::solve(&custom).expect("feasible");
    assert!((sol.objective - 1.0).abs() < 1e-9);
}
