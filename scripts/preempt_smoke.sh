#!/usr/bin/env bash
# Preemption-warning determinism smoke: exercises the drain-and-failover
# pipeline end to end against the ablation_preempt bin at smoke size.
#
#   1. a smoke run with timings zeroed at --threads 1 is the byte
#      reference for results/ablation_preempt.json;
#   2. the same run at --threads 4 must reproduce it byte for byte —
#      notices, cache migrations and proactive reroutes all ride the
#      seeded fault process, so worker count must not show;
#   3. the JSON must be valid, cover every (policy, notice) point, and
#      the warned points must actually exercise the drain pipeline
#      (non-zero drained/migrated totals somewhere at notice >= 1).
#
# Run from the repo root: ./scripts/preempt_smoke.sh
set -euo pipefail

BIN=${CARGO_BIN:-"cargo run --release -q -p bench --bin ablation_preempt --"}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/lexcache_preempt_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Zeroed timings make the report JSON a pure function of the sweep
# structure and seeds, so thread counts cannot show.
export LEXCACHE_ZERO_TIMINGS=1

fail() { echo "preempt_smoke: FAIL: $*" >&2; exit 1; }

echo "== reference: serial smoke run =="
$BIN --smoke --json --threads 1 --no-journal
[ -s results/ablation_preempt.json ] || fail "no JSON exported"
cp results/ablation_preempt.json "$WORK/reference.json"

echo "== parallel smoke run must match byte for byte =="
$BIN --smoke --json --threads 4 --no-journal
cmp results/ablation_preempt.json "$WORK/reference.json" \
  || fail "results diverged between --threads 1 and --threads 4"

echo "== exported JSON parses and the drain pipeline fired =="
python3 - <<'EOF' || fail "JSON failed validation"
import json
with open("results/ablation_preempt.json") as f:
    series = json.load(f)
assert series, "no series exported"
labels = {s["label"] for s in series}
# 6 policies x 4 notice windows.
assert len(labels) == 24, f"expected 24 sweep points, got {len(labels)}"
drained = migrated = 0
for s in series:
    for r in s["reports"]:
        for slot in r["slots"]:
            drained += slot["drained_count"]
            migrated += slot["migrated_entries"]
assert drained > 0, "no preemption notice ever fired in the smoke grid"
assert migrated > 0, "no warm cache entry was ever migrated off a doomed station"
print(f"   json ok: {len(labels)} sweep points, {drained} notices, {migrated} migrations")
EOF

echo "preempt_smoke: PASS"
