#!/bin/bash
cd /root/repo
# wait for the first batch to finish
while ! grep -q ALL_FIGURES_DONE results/run_log.txt; do sleep 10; done
cargo build --release -p bench >/dev/null 2>&1
export LEXCACHE_REPEATS=8 LEXCACHE_SLOTS=100
echo "=== fig5 rerun start $(date +%T) ==="
./target/release/fig5 > results/fig5.txt 2>&1
echo "=== fig5 done $(date +%T) ==="
echo "=== fig7 rerun start $(date +%T) ==="
./target/release/fig7 > results/fig7.txt 2>&1
echo "=== fig7 done $(date +%T) ==="
export LEXCACHE_REPEATS=5
for ab in ablation_estimator ablation_cache; do
  echo "=== $ab start $(date +%T) ==="
  ./target/release/$ab > results/$ab.txt 2>&1
  echo "=== $ab done $(date +%T) ==="
done
echo SECOND_BATCH_DONE
