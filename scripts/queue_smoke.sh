#!/usr/bin/env bash
# Queue-core determinism smoke: exercises the event-driven open-loop
# traffic layer end to end against the fig_latency bin at smoke size.
#
#   1. a smoke run with timings zeroed at --threads 1 is the byte
#      reference for results/fig_latency.json;
#   2. the same run at --threads 4 must reproduce it byte for byte —
#      arrival instants, service times and sojourn percentiles all ride
#      hashed streams, so worker count must not show;
#   3. the JSON must be valid, cover every (policy, rho) point, keep
#      p99 >= p50 >= 0 on every slot, and the saturated points
#      (rho = 1.1) must measure a strictly heavier tail than the
#      light-load points (rho = 0.5).
#
# Run from the repo root: ./scripts/queue_smoke.sh
set -euo pipefail

BIN=${CARGO_BIN:-"cargo run --release -q -p bench --bin fig_latency --"}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/lexcache_queue_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Zeroed timings make the report JSON a pure function of the sweep
# structure and seeds, so thread counts cannot show.
export LEXCACHE_ZERO_TIMINGS=1

fail() { echo "queue_smoke: FAIL: $*" >&2; exit 1; }

echo "== reference: serial smoke run =="
$BIN --smoke --json --threads 1 --no-journal
[ -s results/fig_latency.json ] || fail "no JSON exported"
cp results/fig_latency.json "$WORK/reference.json"

echo "== parallel smoke run must match byte for byte =="
$BIN --smoke --json --threads 4 --no-journal
cmp results/fig_latency.json "$WORK/reference.json" \
  || fail "results diverged between --threads 1 and --threads 4"

echo "== exported JSON parses and the tail behaves =="
python3 - <<'EOF' || fail "JSON failed validation"
import json
with open("results/fig_latency.json") as f:
    series = json.load(f)
assert series, "no series exported"
labels = {s["label"] for s in series}
# 6 policies x 4 offered loads.
assert len(labels) == 24, f"expected 24 sweep points, got {len(labels)}"
tail = {}
for s in series:
    rho = s["label"].rsplit("@rho", 1)[1]
    p99s = tail.setdefault(rho, [])
    for r in s["reports"]:
        for slot in r["slots"]:
            p50, p99 = slot["p50_sojourn_ms"], slot["p99_sojourn_ms"]
            assert 0.0 <= p50 <= p99, f"{s['label']}: bad percentiles {p50}/{p99}"
        p99s.append(
            sum(t["p99_sojourn_ms"] for t in r["slots"]) / len(r["slots"])
        )
mean = lambda xs: sum(xs) / len(xs)
assert mean(tail["1.1"]) > 0.0, "saturated queues measured no sojourns"
assert mean(tail["1.1"]) > mean(tail["0.5"]), (
    f"tail did not grow with load: rho 1.1 -> {mean(tail['1.1']):.3f} ms, "
    f"rho 0.5 -> {mean(tail['0.5']):.3f} ms"
)
print(
    f"   json ok: {len(labels)} sweep points, mean p99 "
    f"{mean(tail['0.5']):.2f} ms @ rho 0.5 vs {mean(tail['1.1']):.2f} ms @ rho 1.1"
)
EOF

echo "queue_smoke: PASS"
