#!/usr/bin/env bash
# Parametrized determinism/crash-safety smoke driver — one script for
# every CI smoke job:
#
#   ./scripts/smoke.sh queue        fig_latency      1-vs-4-thread byte diff + tail shape
#   ./scripts/smoke.sh preempt      ablation_preempt 1-vs-4-thread byte diff + drain pipeline
#   ./scripts/smoke.sh resilience   fig_resilience   1-vs-4-thread byte diff + gates fired
#   ./scripts/smoke.sh trace        fig3             traced-run byte diff + trace structure
#   ./scripts/smoke.sh resume       fig3             kill -9 / resume / retry / quarantine
#
# Every mode zeroes wall-clock timings (LEXCACHE_ZERO_TIMINGS=1) so the
# exported artifacts are pure functions of the sweep structure and
# seeds: worker counts must not show, and any byte of divergence fails.
# CARGO_BIN overrides the cargo invocation (CI pre-builds the bin).
#
# Run from the repo root.
set -euo pipefail

MODE=${1:-}
usage() {
  echo "usage: $0 <queue|preempt|resilience|trace|resume>" >&2
  exit 2
}
case "$MODE" in
  queue) BIN_NAME=fig_latency ;;
  preempt) BIN_NAME=ablation_preempt ;;
  resilience) BIN_NAME=fig_resilience ;;
  trace | resume) BIN_NAME=fig3 ;;
  *) usage ;;
esac

BIN=${CARGO_BIN:-"cargo run --release -q -p bench --bin $BIN_NAME --"}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/lexcache_${MODE}_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

export LEXCACHE_ZERO_TIMINGS=1

fail() { echo "smoke($MODE): FAIL: $*" >&2; exit 1; }

# The shared skeleton of the --smoke modes: a serial smoke run is the
# byte reference for results/<bin>.json, a 4-thread run must reproduce
# it exactly.
smoke_diff_json() {
  echo "== reference: serial smoke run =="
  $BIN --smoke --json --threads 1 --no-journal
  [ -s "results/$BIN_NAME.json" ] || fail "no JSON exported"
  cp "results/$BIN_NAME.json" "$WORK/reference.json"

  echo "== parallel smoke run must match byte for byte =="
  $BIN --smoke --json --threads 4 --no-journal
  cmp "results/$BIN_NAME.json" "$WORK/reference.json" \
    || fail "results diverged between --threads 1 and --threads 4"
}

mode_queue() {
  smoke_diff_json
  echo "== exported JSON parses and the tail behaves =="
  python3 - <<'EOF' || fail "JSON failed validation"
import json
with open("results/fig_latency.json") as f:
    series = json.load(f)
assert series, "no series exported"
labels = {s["label"] for s in series}
# 6 policies x 4 offered loads.
assert len(labels) == 24, f"expected 24 sweep points, got {len(labels)}"
tail = {}
for s in series:
    rho = s["label"].rsplit("@rho", 1)[1]
    p99s = tail.setdefault(rho, [])
    for r in s["reports"]:
        for slot in r["slots"]:
            p50, p99 = slot["p50_sojourn_ms"], slot["p99_sojourn_ms"]
            assert 0.0 <= p50 <= p99, f"{s['label']}: bad percentiles {p50}/{p99}"
        p99s.append(
            sum(t["p99_sojourn_ms"] for t in r["slots"]) / len(r["slots"])
        )
mean = lambda xs: sum(xs) / len(xs)
assert mean(tail["1.1"]) > 0.0, "saturated queues measured no sojourns"
assert mean(tail["1.1"]) > mean(tail["0.5"]), (
    f"tail did not grow with load: rho 1.1 -> {mean(tail['1.1']):.3f} ms, "
    f"rho 0.5 -> {mean(tail['0.5']):.3f} ms"
)
print(
    f"   json ok: {len(labels)} sweep points, mean p99 "
    f"{mean(tail['0.5']):.2f} ms @ rho 0.5 vs {mean(tail['1.1']):.2f} ms @ rho 1.1"
)
EOF
}

mode_preempt() {
  smoke_diff_json
  echo "== exported JSON parses and the drain pipeline fired =="
  python3 - <<'EOF' || fail "JSON failed validation"
import json
with open("results/ablation_preempt.json") as f:
    series = json.load(f)
assert series, "no series exported"
labels = {s["label"] for s in series}
# 6 policies x 4 notice windows.
assert len(labels) == 24, f"expected 24 sweep points, got {len(labels)}"
drained = migrated = 0
for s in series:
    for r in s["reports"]:
        for slot in r["slots"]:
            drained += slot["drained_count"]
            migrated += slot["migrated_entries"]
assert drained > 0, "no preemption notice ever fired in the smoke grid"
assert migrated > 0, "no warm cache entry was ever migrated off a doomed station"
print(f"   json ok: {len(labels)} sweep points, {drained} notices, {migrated} migrations")
EOF
}

mode_resilience() {
  smoke_diff_json
  echo "== exported JSON parses and the SLO gates fired under overload =="
  python3 - <<'EOF' || fail "JSON failed validation"
import json
with open("results/fig_resilience.json") as f:
    series = json.load(f)
assert series, "no series exported"
labels = {s["label"] for s in series}
# 6 policies x 2 offered loads x 2 arms (off/on).
assert len(labels) == 24, f"expected 24 sweep points, got {len(labels)}"
missed_off = shed_on = breaker_on = retried = 0
for s in series:
    point, arm = s["label"].rsplit("/", 1)
    rho = float(point.rsplit("@rho", 1)[1])
    for r in s["reports"]:
        for slot in r["slots"]:
            assert slot["retries_succeeded"] <= slot["retries_attempted"], (
                f"{s['label']}: more retry successes than attempts"
            )
            retried += slot["retries_attempted"]
            if rho > 1.0 and arm == "off":
                missed_off += slot["deadline_missed"]
            if rho > 1.0 and arm == "on":
                shed_on += slot["shed_count"]
                breaker_on += slot["breaker_open_slots"]
assert missed_off > 0, "deep overload without gates must miss deadlines"
assert shed_on > 0, "admission control never shed at rho 1.3"
assert breaker_on > 0, "no circuit breaker ever tripped at rho 1.3"
print(
    f"   json ok: {len(labels)} sweep points, {missed_off} misses (off), "
    f"{retried} retries, {shed_on} sheds + {breaker_on} breaker-open slots (on)"
)
EOF
}

mode_trace() {
  # Small, fast, deterministic: zeroed timings make the trace a pure
  # function of the sweep structure, so thread counts cannot show.
  export LEXCACHE_REPEATS=3
  export LEXCACHE_SLOTS=5
  export LEXCACHE_TRACE=1

  echo "== reference: traced serial run =="
  $BIN --threads 1 --no-journal
  [ -s results/trace_fig3.json ] || fail "no trace exported"
  [ -s results/trace_fig3.folded ] || fail "no flame fold exported"
  cp results/trace_fig3.json "$WORK/reference.json"
  cp results/trace_fig3.folded "$WORK/reference.folded"

  echo "== traced parallel run must match byte for byte =="
  $BIN --threads 4 --no-journal
  cmp results/trace_fig3.json "$WORK/reference.json" \
    || fail "trace diverged between --threads 1 and --threads 4"
  cmp results/trace_fig3.folded "$WORK/reference.folded" \
    || fail "flame fold diverged between --threads 1 and --threads 4"

  echo "== exported trace parses and is non-trivial =="
  python3 - <<'EOF' || fail "trace failed validation"
import json
with open("results/trace_fig3.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
phases = {e["ph"] for e in events}
assert "M" in phases, "no thread_name metadata"
assert "B" in phases and "E" in phases, "no begin/end span events"
names = {e.get("name") for e in events}
assert "runner/cell" in names, "runner cell spans missing"
assert "runner/queue_wait" in names, "queue-wait instants missing"
begins = sum(1 for e in events if e["ph"] == "B")
ends = sum(1 for e in events if e["ph"] == "E")
assert begins == ends, f"unbalanced spans: {begins} begins, {ends} ends"
print(f"   trace ok: {len(events)} events, {len(names)} distinct names")
EOF
}

mode_resume() {
  # Small, fast, deterministic: every variant below must produce the
  # same results/fig3.json bytes (decide_us is wall clock, so timings
  # are zeroed in the JSON).
  export LEXCACHE_REPEATS=3
  export LEXCACHE_SLOTS=5

  run_fig3() { $BIN --json "$@"; }

  echo "== reference: clean serial run =="
  run_fig3 --threads 1 --journal "$WORK/ref.journal.jsonl"
  cp results/fig3.json "$WORK/reference.json"
  [ -s "$WORK/ref.journal.jsonl" ] || fail "no journal written"

  echo "== kill -9 mid-sweep, then resume =="
  # Slow the victim down enough to be killed while cells are in flight.
  run_fig3 --threads 1 --journal "$WORK/killed.journal.jsonl" &
  VICTIM=$!
  sleep 0.4
  kill -9 "$VICTIM" 2>/dev/null || true
  wait "$VICTIM" 2>/dev/null || true
  if [ ! -f "$WORK/killed.journal.jsonl" ]; then
    # The victim finished or died before its first checkpoint — fall
    # back to the truncation path below, which pins the same contract.
    echo "   (victim left no journal; skipping to truncated-journal resume)"
  else
    for threads in 1 4; do
      run_fig3 --threads "$threads" \
        --resume "$WORK/killed.journal.jsonl" \
        --journal "$WORK/resumed_kill.journal.jsonl"
      cmp results/fig3.json "$WORK/reference.json" \
        || fail "resume after kill -9 diverged (threads $threads)"
    done
  fi

  echo "== truncated-journal resume (simulated torn checkpoint) =="
  # Keep the header plus the first two cell records of the reference
  # journal — a deterministic "crashed after 2 cells" stub.
  head -n 3 "$WORK/ref.journal.jsonl" > "$WORK/trunc.journal.jsonl"
  for threads in 1 4; do
    run_fig3 --threads "$threads" \
      --resume "$WORK/trunc.journal.jsonl" \
      --journal "$WORK/resumed_trunc.journal.jsonl" \
      | tee "$WORK/resume_out.txt"
    grep -q "resume: spliced 2 of" "$WORK/resume_out.txt" \
      || fail "resume did not splice the journaled cells (threads $threads)"
    cmp results/fig3.json "$WORK/reference.json" \
      || fail "truncated-journal resume diverged (threads $threads)"
  done

  echo "== always-panicking cell is quarantined (exit 3) =="
  # (env prefix on the command itself, not the shell function: bash
  # leaks `VAR=x fn` assignments past the call.)
  set +e
  LEXCACHE_PANIC_CELL=2 $BIN --json --threads 2 \
    --journal "$WORK/quarantine.journal.jsonl" 2> "$WORK/quarantine_err.txt"
  status=$?
  set -e
  [ "$status" -eq 3 ] || fail "quarantined sweep exited $status, expected 3"
  grep -q "quarantined" "$WORK/quarantine_err.txt" || fail "no quarantine summary"
  grep -q "cell 2 " "$WORK/quarantine_err.txt" || fail "summary does not name cell 2"

  echo "== panic-once cell recovers via retry, output unchanged =="
  LEXCACHE_PANIC_CELL=2:1 $BIN --json --threads 2 \
    --journal "$WORK/retry.journal.jsonl" 2> "$WORK/retry_err.txt"
  grep -q "retrying with the same seed" "$WORK/retry_err.txt" \
    || fail "retry was not reported"
  cmp results/fig3.json "$WORK/reference.json" \
    || fail "output changed after a retried panic"
}

"mode_$MODE"

echo "smoke($MODE): PASS"
