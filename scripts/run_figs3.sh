#!/bin/bash
cd /root/repo
while ! grep -q SECOND_BATCH_DONE results/run_log2.txt; do sleep 10; done
export LEXCACHE_REPEATS=6 LEXCACHE_SLOTS=100
echo "=== ablation_topology start $(date +%T) ==="
./target/release/ablation_topology > results/ablation_topology.txt 2>&1
echo "=== ablation_topology done $(date +%T) ==="
echo THIRD_BATCH_DONE
