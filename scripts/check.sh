#!/usr/bin/env bash
# One-command local gate: formatting, clippy, the lexlint static
# analysis pass, and the full test suite. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lexlint"
# --fix-check also fails when a machine-applicable autofix is pending;
# the incremental cache (.lexlint-cache.json, git-ignored) makes repeat
# runs re-analyze only changed files.
cargo run -q -p lexlint -- check --fix-check

echo "==> cargo test"
cargo test -q --workspace

echo "==> all checks passed"
