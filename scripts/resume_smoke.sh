#!/usr/bin/env bash
# Crash-safety smoke: exercises the checkpoint/resume and
# retry/quarantine contract of the sweep layer end to end, against a
# real figure bin (fig3) at smoke size.
#
#   1. a clean serial run is the byte reference (timings zeroed);
#   2. a run is killed mid-sweep (kill -9), and --resume from its
#      journal must reproduce the reference byte for byte, at 1 and at
#      4 worker threads;
#   3. a truncated-journal resume (simulated torn checkpoint) must do
#      the same;
#   4. an injected always-panicking cell must be retried, quarantined,
#      and reported with exit status 3;
#   5. an injected panic-once cell must recover via retry with
#      unchanged output.
#
# Run from the repo root: ./scripts/resume_smoke.sh
set -euo pipefail

BIN=${CARGO_BIN:-"cargo run --release -q -p bench --bin fig3 --"}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/lexcache_resume_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Small, fast, deterministic: every variant below must produce the
# same results/fig3.json bytes (decide_us is wall clock, so timings
# are zeroed in the JSON).
export LEXCACHE_REPEATS=3
export LEXCACHE_SLOTS=5
export LEXCACHE_ZERO_TIMINGS=1

run_fig3() { $BIN --json "$@"; }

fail() { echo "resume_smoke: FAIL: $*" >&2; exit 1; }

echo "== reference: clean serial run =="
run_fig3 --threads 1 --journal "$WORK/ref.journal.jsonl"
cp results/fig3.json "$WORK/reference.json"
[ -s "$WORK/ref.journal.jsonl" ] || fail "no journal written"

echo "== kill -9 mid-sweep, then resume =="
# Slow the victim down enough to be killed while cells are in flight.
run_fig3 --threads 1 --journal "$WORK/killed.journal.jsonl" &
VICTIM=$!
sleep 0.4
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
if [ ! -f "$WORK/killed.journal.jsonl" ]; then
  # The victim finished or died before its first checkpoint — fall
  # back to the truncation path below, which pins the same contract.
  echo "   (victim left no journal; skipping to truncated-journal resume)"
else
  for threads in 1 4; do
    run_fig3 --threads "$threads" \
      --resume "$WORK/killed.journal.jsonl" \
      --journal "$WORK/resumed_kill.journal.jsonl"
    cmp results/fig3.json "$WORK/reference.json" \
      || fail "resume after kill -9 diverged (threads $threads)"
  done
fi

echo "== truncated-journal resume (simulated torn checkpoint) =="
# Keep the header plus the first two cell records of the reference
# journal — a deterministic "crashed after 2 cells" stub.
head -n 3 "$WORK/ref.journal.jsonl" > "$WORK/trunc.journal.jsonl"
for threads in 1 4; do
  run_fig3 --threads "$threads" \
    --resume "$WORK/trunc.journal.jsonl" \
    --journal "$WORK/resumed_trunc.journal.jsonl" \
    | tee "$WORK/resume_out.txt"
  grep -q "resume: spliced 2 of" "$WORK/resume_out.txt" \
    || fail "resume did not splice the journaled cells (threads $threads)"
  cmp results/fig3.json "$WORK/reference.json" \
    || fail "truncated-journal resume diverged (threads $threads)"
done

echo "== always-panicking cell is quarantined (exit 3) =="
# (env prefix on the command itself, not the shell function: bash
# leaks `VAR=x fn` assignments past the call.)
set +e
LEXCACHE_PANIC_CELL=2 $BIN --json --threads 2 \
  --journal "$WORK/quarantine.journal.jsonl" 2> "$WORK/quarantine_err.txt"
status=$?
set -e
[ "$status" -eq 3 ] || fail "quarantined sweep exited $status, expected 3"
grep -q "quarantined" "$WORK/quarantine_err.txt" || fail "no quarantine summary"
grep -q "cell 2 " "$WORK/quarantine_err.txt" || fail "summary does not name cell 2"

echo "== panic-once cell recovers via retry, output unchanged =="
LEXCACHE_PANIC_CELL=2:1 $BIN --json --threads 2 \
  --journal "$WORK/retry.journal.jsonl" 2> "$WORK/retry_err.txt"
grep -q "retrying with the same seed" "$WORK/retry_err.txt" \
  || fail "retry was not reported"
cmp results/fig3.json "$WORK/reference.json" \
  || fail "output changed after a retried panic"

echo "resume_smoke: PASS"
