#!/bin/bash
cd /root/repo
export LEXCACHE_REPEATS=8
export LEXCACHE_SLOTS=100
for fig in fig3 fig4 fig5 fig6 fig7 regret_bound summary prediction_mae; do
  echo "=== $fig start $(date +%T) ==="
  ./target/release/$fig > results/$fig.txt 2>&1
  echo "=== $fig done $(date +%T) ==="
done
export LEXCACHE_REPEATS=5
for ab in ablation_gamma ablation_epsilon ablation_lambda ablation_predictor ablation_delay_model; do
  echo "=== $ab start $(date +%T) ==="
  ./target/release/$ab > results/$ab.txt 2>&1
  echo "=== $ab done $(date +%T) ==="
done
echo ALL_FIGURES_DONE
