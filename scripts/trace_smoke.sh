#!/usr/bin/env bash
# Trace-determinism smoke: exercises the lexcache-trace recorder end
# to end against a real figure bin (fig3) at smoke size.
#
#   1. a traced run with timings zeroed at --threads 1 is the byte
#      reference for results/trace_fig3.json;
#   2. the same run at --threads 4 must reproduce it byte for byte —
#      per-cell track stamping plus canonical-order collection is what
#      makes traces diffable evidence;
#   3. the exported trace must be valid JSON with a non-empty
#      traceEvents array, and the flame fold must be non-empty.
#
# Run from the repo root: ./scripts/trace_smoke.sh
set -euo pipefail

BIN=${CARGO_BIN:-"cargo run --release -q -p bench --bin fig3 --"}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/lexcache_trace_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Small, fast, deterministic: zeroed timings make the trace a pure
# function of the sweep structure, so thread counts cannot show.
export LEXCACHE_REPEATS=3
export LEXCACHE_SLOTS=5
export LEXCACHE_ZERO_TIMINGS=1
export LEXCACHE_TRACE=1

fail() { echo "trace_smoke: FAIL: $*" >&2; exit 1; }

echo "== reference: traced serial run =="
$BIN --threads 1 --no-journal
[ -s results/trace_fig3.json ] || fail "no trace exported"
[ -s results/trace_fig3.folded ] || fail "no flame fold exported"
cp results/trace_fig3.json "$WORK/reference.json"
cp results/trace_fig3.folded "$WORK/reference.folded"

echo "== traced parallel run must match byte for byte =="
$BIN --threads 4 --no-journal
cmp results/trace_fig3.json "$WORK/reference.json" \
  || fail "trace diverged between --threads 1 and --threads 4"
cmp results/trace_fig3.folded "$WORK/reference.folded" \
  || fail "flame fold diverged between --threads 1 and --threads 4"

echo "== exported trace parses and is non-trivial =="
python3 - <<'EOF' || fail "trace failed validation"
import json
with open("results/trace_fig3.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "traceEvents is empty"
phases = {e["ph"] for e in events}
assert "M" in phases, "no thread_name metadata"
assert "B" in phases and "E" in phases, "no begin/end span events"
names = {e.get("name") for e in events}
assert "runner/cell" in names, "runner cell spans missing"
assert "runner/queue_wait" in names, "queue-wait instants missing"
begins = sum(1 for e in events if e["ph"] == "B")
ends = sum(1 for e in events if e["ph"] == "E")
assert begins == ends, f"unbalanced spans: {begins} begins, {ends} ends"
print(f"   trace ok: {len(events)} events, {len(names)} distinct names")
EOF

echo "trace_smoke: PASS"
