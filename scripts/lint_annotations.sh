#!/usr/bin/env bash
# Runs lexlint over the workspace and re-emits every finding as a
# GitHub Actions workflow command (::error / ::warning), so findings
# show up as inline annotations on the PR diff. Exit status is
# lexlint's own (0 clean, 1 findings, 2 usage/I-O error), so the CI
# step still fails on violations.
#
# Usage: scripts/lint_annotations.sh [extra lexlint flags...]
set -uo pipefail
cd "$(dirname "$0")/.."

out=$(cargo run -q -p lexlint -- check --format json "$@")
status=$?

printf '%s\n' "$out" | python3 -c '
import json, sys

def esc(s):
    return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

for line in sys.stdin:
    line = line.strip()
    if not line:
        continue
    f = json.loads(line)
    level = "error" if f["severity"] == "error" else "warning"
    msg = esc(f"{f['rule']}: {f['snippet']} — fix: {f['hint']}")
    print(f"::{level} file={f['file']},line={f['line']}::{msg}")
'

exit "$status"
