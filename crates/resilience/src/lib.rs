//! `lexcache-resilience` — request-level resilience primitives for the
//! open-loop queue core.
//!
//! PR 9's queue layer *measures* overload; this crate supplies the
//! mechanisms that react to it, all deterministic and RNG-free:
//!
//! * [`CircuitBreaker`] — a per-station Closed → Open → HalfOpen state
//!   machine driven by rolling per-slot failure-rate / p99-sojourn
//!   windows, with deterministic probe admission in HalfOpen and a
//!   drain-state interlock (a draining station is never probed);
//! * [`retry`] — stateless exponential backoff with seeded jitter and
//!   failover-station selection, hashed from
//!   `(seed ⊕ salt, slot, request, attempt)` via the same splitmix64
//!   chain the workload's arrival stream uses — never an episode RNG,
//!   so serial-vs-parallel byte-identity is preserved by construction;
//! * [`Admission`] — slot-granularity admission control (per-station
//!   token bucket + backlog threshold) with priority-aware shedding:
//!   low-priority arrivals shed first, everything sheds past twice the
//!   threshold.
//!
//! The crate is pure `std` (like `lexcache-runner` and `lexlint`) so
//! its state machines are testable in isolation; `lexcache-queue`
//! wires them into the event loop and `lexcache-core` feeds breaker
//! weights into the caching LP exactly like `Draining(k)` columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

/// The 64-bit golden-ratio increment used by every hash chain here and
/// by `mec_workload::arrivals` (the two must stay in sync so the retry
/// side-stream provably never collides into the arrival stream's
/// *structure* — different salts keep the streams independent).
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One round of the splitmix64 output function (Steele, Lea & Flood) —
/// bit-for-bit the finalizer `mec_workload::arrivals` uses for the
/// arrival-offset stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod retry {
    //! Deterministic retry scheduling: exponential backoff with seeded
    //! jitter and failover-station selection, all stateless hashes of
    //! `(seed, slot, request, attempt)`.

    use super::{splitmix64, GOLDEN_GAMMA};

    /// Exponent cap for the backoff doubling — attempts are bounded by
    /// a small retry budget anyway, this only guards the shift.
    const MAX_BACKOFF_EXP: u32 = 20;

    /// The raw 64-bit hash of one retry coordinate. Mirrors the
    /// arrival-offset chain (`seed ⊕ mix(slot)`, then one golden-ratio
    /// fold per coordinate) with the attempt folded in last.
    pub fn mix(seed: u64, slot: usize, request: usize, attempt: u32) -> u64 {
        let mut h = seed ^ splitmix64(slot as u64);
        h = splitmix64(h.wrapping_add((request as u64).wrapping_mul(GOLDEN_GAMMA)));
        splitmix64(h.wrapping_add((attempt as u64).wrapping_mul(GOLDEN_GAMMA)))
    }

    /// A uniform draw in `[0, 1)` from the retry coordinate — the top
    /// 53 bits of the hash, the exact dyadic-rational construction the
    /// arrival stream uses.
    pub fn jitter_unit(seed: u64, slot: usize, request: usize, attempt: u32) -> f64 {
        (mix(seed, slot, request, attempt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Backoff before re-enqueueing the retry of failed attempt
    /// `attempt` (0-based): `base · 2^attempt + jitter · u`, with `u`
    /// the seeded uniform above. Deterministic, strictly positive when
    /// `base_ms` is.
    pub fn backoff_ms(
        base_ms: f64,
        jitter_ms: f64,
        seed: u64,
        slot: usize,
        request: usize,
        attempt: u32,
    ) -> f64 {
        let exp = attempt.min(MAX_BACKOFF_EXP);
        base_ms * (1u64 << exp) as f64 + jitter_ms * jitter_unit(seed, slot, request, attempt)
    }

    /// The station a retry fails over to: a deterministic pick among
    /// the other `n_stations - 1` stations (uniform in the hash), or
    /// `home` itself when it is the only station. The pick is salted
    /// away from the jitter hash so backoff and placement are
    /// independent coordinates.
    pub fn failover_station(
        seed: u64,
        slot: usize,
        request: usize,
        attempt: u32,
        home: usize,
        n_stations: usize,
    ) -> usize {
        assert!(home < n_stations, "home station out of range");
        if n_stations <= 1 {
            return home;
        }
        let h = mix(seed ^ 0x517c_c1b7_2722_0a95, slot, request, attempt);
        let pick = (h % (n_stations as u64 - 1)) as usize;
        if pick >= home {
            pick + 1
        } else {
            pick
        }
    }
}

/// Tunables of one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerParams {
    /// Rolling window length in slots; the breaker only trips once the
    /// window is full.
    pub window: usize,
    /// Trip when windowed `failures / arrivals` reaches this fraction
    /// (with at least one failure observed).
    pub fail_rate: f64,
    /// Trip when the worst per-slot p99 sojourn in the window reaches
    /// this many ms; 0 disables the latency trigger.
    pub p99_ms: f64,
    /// Slots spent Open (shedding everything) before probing.
    pub open_slots: u32,
    /// Arrivals admitted per HalfOpen slot as probes; the rest shed.
    pub probes: u32,
}

impl BreakerParams {
    fn validate(&self) {
        assert!(self.window >= 1, "breaker window must be at least 1 slot");
        assert!(
            self.fail_rate > 0.0 && self.fail_rate <= 1.0,
            "breaker fail rate must be in (0, 1], got {}",
            self.fail_rate
        );
        assert!(
            self.p99_ms.is_finite() && self.p99_ms >= 0.0,
            "breaker p99 threshold must be finite and >= 0"
        );
        assert!(self.open_slots >= 1, "breaker must stay open >= 1 slot");
        assert!(self.probes >= 1, "half-open needs at least one probe");
    }
}

/// Where a [`CircuitBreaker`] sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every arrival is admitted, the rolling window records
    /// evidence.
    Closed,
    /// Tripped: every arrival sheds for the contained number of
    /// remaining slots.
    Open(u32),
    /// Probing: the first `probes` arrivals of the slot are admitted,
    /// the rest shed; a clean probe slot closes, a failed one reopens.
    HalfOpen,
}

/// One slot of evidence for a station's breaker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlotSample {
    /// Arrivals routed at the station this slot (admitted or not).
    pub arrivals: u64,
    /// Failures charged to the station this slot: waiting-room drops
    /// plus deadline misses. Sheds are *not* failures — they are the
    /// breaker's own output and would self-latch it open.
    pub failures: u64,
    /// p99 sojourn of the station's completions this slot, ms.
    pub p99_ms: f64,
}

/// A per-station circuit breaker over rolling per-slot evidence.
///
/// Lifecycle: `Closed` trips to `Open(open_slots)` when the full
/// window's failure rate or worst p99 crosses its threshold; `Open`
/// counts down and then probes as `HalfOpen`; a clean probed slot
/// closes the breaker, a failure during probing reopens it. The drain
/// interlock keeps a Draining station un-probed: `Open` holds instead
/// of transitioning to `HalfOpen`, and a breaker already `HalfOpen`
/// when the drain notice lands demotes back to `Open` before any probe
/// can be admitted.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    params: BreakerParams,
    state: BreakerState,
    window: VecDeque<SlotSample>,
    probes_left: u32,
}

impl CircuitBreaker {
    /// A closed breaker with an empty evidence window.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are out of range (zero window, fail
    /// rate outside `(0, 1]`, zero open slots or probes).
    pub fn new(params: BreakerParams) -> Self {
        params.validate();
        CircuitBreaker {
            params,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            probes_left: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True while every arrival sheds.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open(_))
    }

    /// The soft LP column down-weight this breaker contributes,
    /// mirroring the `1 + 1/k` shape of `Draining(k)`: a Closed
    /// breaker is free (1.0), HalfOpen charges 1.5 (probing, route
    /// little), Open charges 2.0 (shedding, route nothing you care
    /// about).
    pub fn weight(&self) -> f64 {
        match self.state {
            BreakerState::Closed => 1.0,
            BreakerState::HalfOpen => 1.5,
            BreakerState::Open(_) => 2.0,
        }
    }

    /// Slot-start hook: refills the HalfOpen probe budget and enforces
    /// the drain interlock (HalfOpen + draining demotes to `Open(1)` so
    /// the doomed station is never probed).
    pub fn begin_slot(&mut self, draining: bool) {
        if self.state == BreakerState::HalfOpen {
            if draining {
                self.state = BreakerState::Open(1);
                self.probes_left = 0;
            } else {
                self.probes_left = self.params.probes;
            }
        }
    }

    /// Per-arrival admission gate. Closed admits, Open sheds, HalfOpen
    /// admits while probe budget remains (consuming one probe).
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open(_) => false,
            BreakerState::HalfOpen => {
                if self.probes_left > 0 {
                    self.probes_left -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Slot-end hook: consumes the slot's evidence and transitions.
    pub fn end_slot(&mut self, sample: SlotSample, draining: bool) {
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(sample);
                while self.window.len() > self.params.window {
                    self.window.pop_front();
                }
                if self.window.len() == self.params.window && self.window_trips() {
                    self.state = BreakerState::Open(self.params.open_slots);
                    self.window.clear();
                }
            }
            BreakerState::Open(k) => {
                if k > 1 {
                    self.state = BreakerState::Open(k - 1);
                } else if draining {
                    // Drain interlock: hold Open, re-check next slot.
                    self.state = BreakerState::Open(1);
                } else {
                    self.state = BreakerState::HalfOpen;
                }
            }
            BreakerState::HalfOpen => {
                if sample.failures > 0 {
                    self.state = BreakerState::Open(self.params.open_slots);
                } else if sample.arrivals > 0 {
                    self.state = BreakerState::Closed;
                }
                // No arrivals → nothing learned, keep probing.
            }
        }
    }

    fn window_trips(&self) -> bool {
        let arrivals: u64 = self.window.iter().map(|s| s.arrivals).sum();
        let failures: u64 = self.window.iter().map(|s| s.failures).sum();
        let worst_p99 = self.window.iter().map(|s| s.p99_ms).fold(0.0f64, f64::max);
        let rate_trip = failures > 0
            && arrivals > 0
            && failures as f64 >= self.params.fail_rate * arrivals as f64;
        let p99_trip = self.params.p99_ms > 0.0 && worst_p99 >= self.params.p99_ms;
        rate_trip || p99_trip
    }
}

/// Tunables of the slot-granularity [`Admission`] gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionParams {
    /// Station backlog at which low-priority arrivals shed; at twice
    /// this backlog everything sheds. 0 disables the backlog gate.
    pub backlog_threshold: usize,
    /// Per-station arrival budget per slot; once exhausted,
    /// low-priority arrivals shed (high-priority overdraft). 0
    /// disables the token gate.
    pub tokens_per_slot: u32,
}

/// Priority-aware admission control: a per-station token bucket
/// refilled each slot plus a backlog threshold, shedding low-priority
/// work first so goodput degrades instead of collapsing.
#[derive(Debug, Clone)]
pub struct Admission {
    params: AdmissionParams,
    tokens: Vec<u32>,
}

impl Admission {
    /// A gate over `n_stations` stations with full buckets.
    pub fn new(n_stations: usize, params: AdmissionParams) -> Self {
        Admission {
            params,
            tokens: vec![params.tokens_per_slot; n_stations],
        }
    }

    /// Slot-start hook: refills every bucket.
    pub fn begin_slot(&mut self) {
        for t in &mut self.tokens {
            *t = self.params.tokens_per_slot;
        }
    }

    /// Decides one arrival at `station` given the station's current
    /// backlog. Sheds (returns false) low-priority work at the backlog
    /// threshold or on an empty bucket, and everything at twice the
    /// threshold.
    pub fn admit(&mut self, station: usize, backlog: usize, high_priority: bool) -> bool {
        let thr = self.params.backlog_threshold;
        if thr > 0 {
            if backlog >= 2 * thr {
                return false;
            }
            if backlog >= thr && !high_priority {
                return false;
            }
        }
        if self.params.tokens_per_slot > 0 {
            if self.tokens[station] > 0 {
                self.tokens[station] -= 1;
            } else if !high_priority {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BreakerParams {
        BreakerParams {
            window: 3,
            fail_rate: 0.5,
            p99_ms: 0.0,
            open_slots: 2,
            probes: 1,
        }
    }

    fn failing_slot() -> SlotSample {
        SlotSample {
            arrivals: 10,
            failures: 8,
            p99_ms: 0.0,
        }
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs of the Steele–Lea–Flood generator seeded
        // at 0 (same vector the workload arrival stream is built on).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(splitmix64(0)), 0xa706_dd2f_4d19_7e6f);
    }

    #[test]
    fn jitter_is_deterministic_and_in_unit_range() {
        for attempt in 0..4 {
            let a = retry::jitter_unit(42, 7, 3, attempt);
            let b = retry::jitter_unit(42, 7, 3, attempt);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!((0.0..1.0).contains(&a));
        }
        assert_ne!(
            retry::jitter_unit(42, 7, 3, 0).to_bits(),
            retry::jitter_unit(42, 7, 3, 1).to_bits(),
            "attempts must draw distinct jitter"
        );
    }

    #[test]
    fn backoff_doubles_with_attempt() {
        let at = |a| retry::backoff_ms(10.0, 0.0, 1, 1, 1, a);
        assert_eq!(at(0), 10.0);
        assert_eq!(at(1), 20.0);
        assert_eq!(at(2), 40.0);
        let jittered = retry::backoff_ms(10.0, 5.0, 1, 1, 1, 0);
        assert!(jittered >= 10.0 && jittered < 15.0);
    }

    #[test]
    fn failover_avoids_home_and_stays_in_range() {
        for request in 0..50 {
            let target = retry::failover_station(9, 3, request, 0, 2, 5);
            assert!(target < 5);
            assert_ne!(target, 2, "failover must leave the failed station");
        }
        assert_eq!(
            retry::failover_station(9, 3, 0, 0, 0, 1),
            0,
            "single-station networks can only retry in place"
        );
    }

    #[test]
    fn breaker_trips_only_on_a_full_window() {
        let mut b = CircuitBreaker::new(params());
        b.end_slot(failing_slot(), false);
        b.end_slot(failing_slot(), false);
        assert_eq!(b.state(), BreakerState::Closed, "window not full yet");
        b.end_slot(failing_slot(), false);
        assert_eq!(b.state(), BreakerState::Open(2));
        assert!(!b.admit());
    }

    #[test]
    fn open_counts_down_then_probes_then_closes() {
        let mut b = CircuitBreaker::new(params());
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        assert!(b.is_open());
        b.end_slot(SlotSample::default(), false); // Open(2) → Open(1)
        assert_eq!(b.state(), BreakerState::Open(1));
        b.end_slot(SlotSample::default(), false); // Open(1) → HalfOpen
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.begin_slot(false);
        assert!(b.admit(), "first arrival is the probe");
        assert!(!b.admit(), "second arrival exceeds the probe budget");
        b.end_slot(
            SlotSample {
                arrivals: 1,
                failures: 0,
                p99_ms: 2.0,
            },
            false,
        );
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_the_full_penalty() {
        let mut b = CircuitBreaker::new(params());
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        b.end_slot(SlotSample::default(), false);
        b.end_slot(SlotSample::default(), false);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.end_slot(
            SlotSample {
                arrivals: 1,
                failures: 1,
                p99_ms: 0.0,
            },
            false,
        );
        assert_eq!(b.state(), BreakerState::Open(2));
    }

    #[test]
    fn empty_probe_slot_keeps_probing() {
        let mut b = CircuitBreaker::new(params());
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        b.end_slot(SlotSample::default(), false);
        b.end_slot(SlotSample::default(), false);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.end_slot(SlotSample::default(), false);
        assert_eq!(b.state(), BreakerState::HalfOpen, "no evidence, no verdict");
    }

    #[test]
    fn p99_threshold_trips_without_failures() {
        let mut b = CircuitBreaker::new(BreakerParams {
            p99_ms: 100.0,
            ..params()
        });
        let slow = SlotSample {
            arrivals: 5,
            failures: 0,
            p99_ms: 150.0,
        };
        for _ in 0..3 {
            b.end_slot(slow, false);
        }
        assert!(b.is_open(), "latency alone must trip the breaker");
    }

    #[test]
    fn draining_station_is_never_probed() {
        let mut b = CircuitBreaker::new(params());
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        b.end_slot(SlotSample::default(), false); // Open(2) → Open(1)
        b.end_slot(SlotSample::default(), true); // drain holds it Open
        assert_eq!(b.state(), BreakerState::Open(1));
        // A breaker already HalfOpen when the notice lands demotes
        // before any probe can be admitted.
        b.end_slot(SlotSample::default(), false);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.begin_slot(true);
        assert_eq!(b.state(), BreakerState::Open(1));
        assert!(!b.admit());
    }

    #[test]
    fn weights_mirror_the_drain_shape() {
        let mut b = CircuitBreaker::new(params());
        assert_eq!(b.weight(), 1.0);
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        assert_eq!(b.weight(), 2.0);
        b.end_slot(SlotSample::default(), false);
        b.end_slot(SlotSample::default(), false);
        assert_eq!(b.weight(), 1.5);
    }

    #[test]
    fn sheds_are_not_failures_so_open_does_not_self_latch() {
        let mut b = CircuitBreaker::new(params());
        for _ in 0..3 {
            b.end_slot(failing_slot(), false);
        }
        // While Open the station sheds everything: arrivals but no
        // failures. The countdown must still reach HalfOpen.
        b.end_slot(
            SlotSample {
                arrivals: 20,
                failures: 0,
                p99_ms: 0.0,
            },
            false,
        );
        b.end_slot(
            SlotSample {
                arrivals: 20,
                failures: 0,
                p99_ms: 0.0,
            },
            false,
        );
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn admission_sheds_low_priority_first() {
        let mut a = Admission::new(
            1,
            AdmissionParams {
                backlog_threshold: 4,
                tokens_per_slot: 0,
            },
        );
        assert!(a.admit(0, 3, false), "under threshold admits everyone");
        assert!(!a.admit(0, 4, false), "threshold sheds low priority");
        assert!(a.admit(0, 4, true), "high priority rides through");
        assert!(!a.admit(0, 8, true), "twice the threshold sheds everyone");
    }

    #[test]
    fn token_bucket_refills_each_slot() {
        let mut a = Admission::new(
            2,
            AdmissionParams {
                backlog_threshold: 0,
                tokens_per_slot: 2,
            },
        );
        assert!(a.admit(0, 0, false));
        assert!(a.admit(0, 0, false));
        assert!(!a.admit(0, 0, false), "bucket exhausted");
        assert!(a.admit(0, 0, true), "high priority overdrafts");
        assert!(a.admit(1, 0, false), "buckets are per station");
        a.begin_slot();
        assert!(a.admit(0, 0, false), "refilled");
    }

    #[test]
    #[should_panic(expected = "fail rate")]
    fn zero_fail_rate_is_rejected() {
        CircuitBreaker::new(BreakerParams {
            fail_rate: 0.0,
            ..params()
        });
    }
}
