//! Property-based tests of the algorithm layer, exercised through the
//! public episode API on random small instances.

use lexcache_core::{
    CachingPolicy, Episode, EpisodeConfig, GreedyGd, OlGd, PolicyConfig, PriGd, SlotContext,
    SlotFeedback, Target,
};
use mec_net::topology::gtitm;
use mec_net::NetworkConfig;
use mec_workload::ScenarioConfig;
use proptest::prelude::*;

/// Wraps a policy and audits every assignment against capacity and
/// coverage invariants using the given demands.
struct Audited<P> {
    inner: P,
    violations: Vec<String>,
}

impl<P: CachingPolicy> CachingPolicy for Audited<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> lexcache_core::Assignment {
        let assignment = self.inner.decide(ctx);
        let demands = ctx.given_demands.expect("given-demand regime");
        if assignment.len() != demands.len() {
            self.violations.push("wrong assignment size".into());
        }
        let mut load = vec![0.0; ctx.topo.len()];
        for (l, t) in assignment.targets().iter().enumerate() {
            if let Target::Edge(bs) = t {
                load[bs.index()] += demands[l];
            }
        }
        for (i, bs) in ctx.topo.stations().iter().enumerate() {
            let cap = bs.capacity_mhz() / ctx.scenario.c_unit_mhz();
            if load[i] > cap + 1e-6 {
                self.violations
                    .push(format!("station {i} overloaded: {} > {cap}", load[i]));
            }
        }
        assignment
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        self.inner.observe(feedback);
    }
}

fn run_audited<P: CachingPolicy>(policy: P, n: usize, requests: usize, seed: u64) -> Vec<String> {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(n, &net_cfg, seed);
    let scenario = ScenarioConfig::small()
        .with_requests(requests)
        .build(&topo, seed);
    let mut audited = Audited {
        inner: policy,
        violations: Vec::new(),
    };
    let mut episode = Episode::with_config(topo, net_cfg, scenario, EpisodeConfig::new(seed));
    let _ = episode.run(&mut audited, 5);
    audited.violations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ol_gd_respects_capacity_on_random_instances(
        n in 5usize..25,
        requests in 3usize..30,
        seed in 0u64..500,
    ) {
        let violations = run_audited(
            OlGd::new(PolicyConfig::default().with_seed(seed)),
            n,
            requests,
            seed,
        );
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn greedy_respects_capacity_on_random_instances(
        n in 5usize..25,
        requests in 3usize..30,
        seed in 0u64..500,
    ) {
        let violations = run_audited(GreedyGd::new(), n, requests, seed);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn priority_respects_capacity_on_random_instances(
        n in 5usize..25,
        requests in 3usize..30,
        seed in 0u64..500,
    ) {
        let violations = run_audited(PriGd::new(), n, requests, seed);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn episodes_are_reproducible(
        n in 5usize..20,
        requests in 3usize..15,
        seed in 0u64..200,
    ) {
        let net_cfg = NetworkConfig::paper_defaults();
        let run = || {
            let topo = gtitm::generate(n, &net_cfg, seed);
            let scenario = ScenarioConfig::small().with_requests(requests).build(&topo, seed);
            let mut episode = Episode::new(topo, net_cfg.clone(), scenario, seed);
            episode
                .run(&mut OlGd::new(PolicyConfig::default().with_seed(seed)), 4)
                .delay_series()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn achieved_delay_never_beats_clairvoyant_optimum(
        n in 5usize..15,
        seed in 0u64..100,
    ) {
        let net_cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(n, &net_cfg, seed);
        let scenario = ScenarioConfig::small().build(&topo, seed);
        let mut episode = Episode::with_config(
            topo,
            net_cfg,
            scenario,
            EpisodeConfig::new(seed).with_regret(),
        );
        let report = episode.run(&mut GreedyGd::new(), 4);
        for slot in &report.slots {
            let opt = slot.optimal_avg_delay_ms.expect("regret tracked");
            prop_assert!(slot.avg_delay_ms >= opt - 1e-6);
        }
    }
}
