//! Regression tests for bit-level run-to-run determinism.
//!
//! The decision path must not depend on iteration order of hashed
//! collections or on NaN-collapsing float comparisons: two episodes
//! built from the same seed have to produce *byte-identical* per-slot
//! results. These tests compare `f64::to_bits` of every per-slot
//! delay, not an epsilon band — any hidden source of nondeterminism
//! (e.g. a `HashMap` on the lowering path) shows up as a hard failure.

use lexcache_core::{
    CachingPolicy, Episode, EpisodeReport, GreedyGd, OlGd, OlReg, PolicyConfig, PriGd,
};
use mec_net::{topology::gtitm, NetworkConfig};
use mec_workload::ScenarioConfig;

const HORIZON: usize = 12;

fn run_once(seed: u64, make_policy: &dyn Fn() -> Box<dyn CachingPolicy>) -> EpisodeReport {
    let cfg = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(20, &cfg, seed);
    let scenario = ScenarioConfig::small().build(&topo, seed);
    let mut episode = Episode::new(topo, cfg, scenario, seed);
    episode.run(make_policy().as_mut(), HORIZON)
}

/// Asserts two same-seed reports agree bit-for-bit on every per-slot
/// observable except wall-clock decision time.
fn assert_identical(a: &EpisodeReport, b: &EpisodeReport) {
    assert_eq!(a.slots.len(), b.slots.len(), "slot count differs");
    for (t, (sa, sb)) in a.slots.iter().zip(&b.slots).enumerate() {
        assert_eq!(
            sa.avg_delay_ms.to_bits(),
            sb.avg_delay_ms.to_bits(),
            "slot {t}: avg_delay_ms differs ({} vs {})",
            sa.avg_delay_ms,
            sb.avg_delay_ms
        );
        assert_eq!(
            sa.remote_count, sb.remote_count,
            "slot {t}: remote_count differs"
        );
    }
}

#[test]
fn same_seed_episodes_are_bit_identical() {
    let policies: [(&str, Box<dyn Fn() -> Box<dyn CachingPolicy>>); 4] = [
        (
            "OL_GD",
            Box::new(|| Box::new(OlGd::new(PolicyConfig::default()))),
        ),
        (
            "OL_Reg",
            Box::new(|| Box::new(OlReg::new(PolicyConfig::default(), 3))),
        ),
        ("Greedy_GD", Box::new(|| Box::new(GreedyGd::new()))),
        ("Pri_GD", Box::new(|| Box::new(PriGd::new()))),
    ];
    for (name, make) in &policies {
        for seed in [0u64, 7, 42] {
            let first = run_once(seed, make.as_ref());
            let second = run_once(seed, make.as_ref());
            assert_eq!(&first.policy, name);
            assert_identical(&first, &second);
        }
    }
}

#[test]
fn observability_sinks_do_not_perturb_results() {
    // The obs layer must be write-only: installing a sink (NoopSink or
    // a collecting registry) cannot change a single bit of the episode
    // outcome, only record it.
    let make: Box<dyn Fn() -> Box<dyn CachingPolicy>> =
        Box::new(|| Box::new(OlGd::new(PolicyConfig::default())));
    let baseline = run_once(5, make.as_ref());

    lexcache_obs::install(Box::new(lexcache_obs::NoopSink));
    let with_noop = run_once(5, make.as_ref());
    drop(lexcache_obs::uninstall());
    assert_identical(&baseline, &with_noop);

    let registry = lexcache_obs::SharedRegistry::new();
    lexcache_obs::install(Box::new(registry.clone()));
    let with_registry = run_once(5, make.as_ref());
    drop(lexcache_obs::uninstall());
    assert_identical(&baseline, &with_registry);

    let snap = registry.snapshot();
    assert!(!snap.is_empty(), "registry collected no events");
    assert!(
        snap.spans().contains_key("sim/decide"),
        "expected per-slot sim/decide spans in the registry"
    );
}

#[test]
fn different_seeds_actually_diverge() {
    // Sanity check that the comparison above is not vacuous: distinct
    // seeds must produce distinct delay traces.
    let make: Box<dyn Fn() -> Box<dyn CachingPolicy>> =
        Box::new(|| Box::new(OlGd::new(PolicyConfig::default())));
    let a = run_once(1, make.as_ref());
    let b = run_once(2, make.as_ref());
    let same = a
        .slots
        .iter()
        .zip(&b.slots)
        .all(|(sa, sb)| sa.avg_delay_ms.to_bits() == sb.avg_delay_ms.to_bits());
    assert!(!same, "seeds 1 and 2 produced identical delay traces");
}
