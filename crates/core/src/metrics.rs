//! Episode metrics: delay, runtime, regret.

use serde::{Deserialize, Serialize};

/// Measurements of one simulated time slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotMetrics {
    /// 1-based slot index.
    pub slot: usize,
    /// Average per-request delay achieved this slot, in ms (objective
    /// (3) evaluated on the realized delays).
    pub avg_delay_ms: f64,
    /// Wall-clock time of the policy's `decide` call, in microseconds —
    /// the paper's "running time" series (Figs. 3(b)–7(b)).
    pub decide_us: f64,
    /// The clairvoyant LP optimum of the same slot (same realized
    /// delays, true demands), in ms — `None` unless regret tracking is
    /// enabled.
    pub optimal_avg_delay_ms: Option<f64>,
    /// Requests that had to fall back to the remote data centre.
    pub remote_count: usize,
    /// Requests whose assignment targeted a station that failed this
    /// slot and were re-routed to another alive station by the repair
    /// pass (0 when fault injection is disabled).
    #[serde(default)]
    pub rerouted_count: usize,
    /// Requests pushed to the remote data centre by the repair pass
    /// because no alive station had spare capacity (a subset of
    /// `remote_count`; 0 when fault injection is disabled).
    #[serde(default)]
    pub dropped_count: usize,
    /// Stations that received a preemption notice this slot and began
    /// draining (0 when preemption is disabled).
    #[serde(default)]
    pub drained_count: usize,
    /// Warm cache entries migrated off draining stations this slot by
    /// the drain pass (0 when preemption is disabled).
    #[serde(default)]
    pub migrated_entries: usize,
    /// Requests moved off stations one slot from their scheduled kill by
    /// the pre-emptive repair pass (0 when preemption is disabled).
    #[serde(default)]
    pub proactive_reroutes: usize,
    /// Measured median per-request sojourn time (departure − arrival,
    /// ms) of the jobs the open-loop queue core completed this slot —
    /// simulated time, not wall clock, so it survives zeroed-timing
    /// comparisons. 0 when the queue core is disabled or no job
    /// completed this slot.
    #[serde(default)]
    pub p50_sojourn_ms: f64,
    /// Measured 99th-percentile sojourn time of this slot's completed
    /// jobs, ms (0 when the queue core is disabled — see
    /// [`SlotMetrics::p50_sojourn_ms`]).
    #[serde(default)]
    pub p99_sojourn_ms: f64,
    /// Arrivals the queue core rejected at a full station waiting room
    /// this slot (0 when the queue core is disabled or waiting rooms
    /// are unbounded).
    #[serde(default)]
    pub queue_dropped_count: usize,
    /// Jobs the queue core completed this slot — the goodput series the
    /// resilience sweep plots against ρ (0 when the queue core is
    /// disabled).
    #[serde(default)]
    pub queue_completed_count: usize,
    /// Jobs reaped at their deadline this slot (departed early, not
    /// completions; 0 when resilience deadlines are disabled).
    #[serde(default)]
    pub deadline_missed: usize,
    /// Deadline misses that re-enqueued a deterministic retry this
    /// slot.
    #[serde(default)]
    pub retries_attempted: usize,
    /// Retried jobs (attempt > 0) that completed this slot.
    #[serde(default)]
    pub retries_succeeded: usize,
    /// Arrivals shed by a circuit breaker or the admission gate this
    /// slot (distinct from `queue_dropped_count`, which is waiting-room
    /// overflow).
    #[serde(default)]
    pub shed_count: usize,
    /// Stations whose circuit breaker was Open while this slot's
    /// arrivals were gated.
    #[serde(default)]
    pub breaker_open_slots: usize,
}

/// Nearest-rank percentile over `values`: sort with `total_cmp`, take
/// element `ceil(q·n)` clamped into `[1, n]`; 0 for empty input and
/// `q` clamped to `[0, 1]`. The single implementation behind every
/// percentile statistic in a report.
fn nearest_rank(mut values: Vec<f64>, q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    values[rank - 1]
}

/// The result of running one policy for a horizon of slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeReport {
    /// Policy name.
    pub policy: String,
    /// Topology name.
    pub topology: String,
    /// Per-slot measurements.
    pub slots: Vec<SlotMetrics>,
}

impl EpisodeReport {
    /// A copy with every wall-clock field (`decide_us`) zeroed.
    ///
    /// Everything else in a report is a deterministic function of the
    /// seed; `decide_us` is the one measured quantity. Golden-trace
    /// tests comparing serial vs parallel runs byte-for-byte strip it
    /// first so the comparison covers exactly the deterministic state.
    pub fn with_zeroed_timings(&self) -> EpisodeReport {
        let mut out = self.clone();
        for slot in &mut out.slots {
            slot.decide_us = 0.0;
        }
        out
    }

    /// Mean of `field` over all slots — the shared summation helper
    /// behind every per-slot mean; 0 for an empty report.
    fn mean_of(&self, field: impl Fn(&SlotMetrics) -> f64) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.slots.iter().map(field).sum::<f64>() / self.slots.len() as f64
    }

    /// Mean achieved average delay over all slots, ms.
    pub fn mean_avg_delay_ms(&self) -> f64 {
        self.mean_of(|s| s.avg_delay_ms)
    }

    /// Nearest-rank percentile of the per-slot achieved average delay,
    /// ms. `q` is clamped to `[0, 1]`; returns 0 for an empty report.
    pub fn delay_ms_percentile(&self, q: f64) -> f64 {
        nearest_rank(self.delay_series(), q)
    }

    /// Median per-slot achieved average delay, ms.
    pub fn p50_avg_delay_ms(&self) -> f64 {
        self.delay_ms_percentile(0.50)
    }

    /// 99th-percentile per-slot achieved average delay, ms — the burst
    /// slots the mean smooths away.
    pub fn p99_avg_delay_ms(&self) -> f64 {
        self.delay_ms_percentile(0.99)
    }

    /// Total decision runtime over the horizon, µs — the single
    /// summation behind every decide-time statistic.
    fn total_decide_us(&self) -> f64 {
        self.slots.iter().map(|s| s.decide_us).sum()
    }

    /// Total decision runtime over the horizon, ms.
    pub fn total_decide_ms(&self) -> f64 {
        self.total_decide_us() / 1_000.0
    }

    /// Mean per-slot decision runtime, µs.
    pub fn mean_decide_us(&self) -> f64 {
        self.mean_of(|s| s.decide_us)
    }

    /// Nearest-rank percentile of the per-slot decision runtime, µs.
    /// `q` is clamped to `[0, 1]`; returns 0 for an empty report.
    pub fn decide_us_percentile(&self, q: f64) -> f64 {
        nearest_rank(self.slots.iter().map(|s| s.decide_us).collect(), q)
    }

    /// 99th-percentile per-slot decision runtime, µs — the LP-solve
    /// tail that per-slot means hide.
    pub fn p99_decide_us(&self) -> f64 {
        self.decide_us_percentile(0.99)
    }

    /// Cumulative regret against the clairvoyant optimum, if tracked:
    /// `Σ_t (achieved_t − optimal_t)`.
    pub fn cumulative_regret_ms(&self) -> Option<f64> {
        let mut total = 0.0;
        for s in &self.slots {
            total += s.avg_delay_ms - s.optimal_avg_delay_ms?;
        }
        Some(total)
    }

    /// The running cumulative-regret curve, if tracked.
    pub fn regret_curve(&self) -> Option<Vec<f64>> {
        let mut acc = 0.0;
        let mut curve = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            acc += s.avg_delay_ms - s.optimal_avg_delay_ms?;
            curve.push(acc);
        }
        Some(curve)
    }

    /// The per-slot achieved delay series (Fig. 3(a)-style).
    pub fn delay_series(&self) -> Vec<f64> {
        self.slots.iter().map(|s| s.avg_delay_ms).collect()
    }

    /// Total requests that fell back to the remote data centre.
    pub fn total_remote(&self) -> usize {
        self.slots.iter().map(|s| s.remote_count).sum()
    }

    /// Total requests re-routed to another alive station by the
    /// fault-repair pass.
    pub fn total_rerouted(&self) -> usize {
        self.slots.iter().map(|s| s.rerouted_count).sum()
    }

    /// Total requests the fault-repair pass pushed to the remote data
    /// centre for lack of alive edge capacity.
    pub fn total_dropped(&self) -> usize {
        self.slots.iter().map(|s| s.dropped_count).sum()
    }

    /// Total preemption notices received (stations that began draining).
    pub fn total_drained(&self) -> usize {
        self.slots.iter().map(|s| s.drained_count).sum()
    }

    /// Total warm cache entries migrated off draining stations.
    pub fn total_migrated(&self) -> usize {
        self.slots.iter().map(|s| s.migrated_entries).sum()
    }

    /// Total requests evacuated pre-emptively from doomed stations.
    pub fn total_proactive_reroutes(&self) -> usize {
        self.slots.iter().map(|s| s.proactive_reroutes).sum()
    }

    /// Mean of the per-slot median sojourn time, ms (0 everywhere when
    /// the queue core is disabled).
    pub fn mean_p50_sojourn_ms(&self) -> f64 {
        self.mean_of(|s| s.p50_sojourn_ms)
    }

    /// Mean of the per-slot 99th-percentile sojourn time, ms — the
    /// queueing-tail counterpart of [`Self::mean_avg_delay_ms`]'s
    /// linear proxy; their divergence as offered load approaches 1 is
    /// exactly what the slot-synchronous path cannot express.
    pub fn mean_p99_sojourn_ms(&self) -> f64 {
        self.mean_of(|s| s.p99_sojourn_ms)
    }

    /// Worst per-slot p99 sojourn over the horizon, ms — under open-
    /// loop overload (ρ > 1) the backlog compounds, so the last slots
    /// dominate; the max exposes the collapse the mean dilutes.
    pub fn max_p99_sojourn_ms(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.p99_sojourn_ms)
            .fold(0.0, f64::max)
    }

    /// Total arrivals dropped at full station waiting rooms.
    pub fn total_queue_dropped(&self) -> usize {
        self.slots.iter().map(|s| s.queue_dropped_count).sum()
    }

    /// Total jobs the queue core completed — the episode's goodput.
    pub fn total_queue_completed(&self) -> usize {
        self.slots.iter().map(|s| s.queue_completed_count).sum()
    }

    /// Total jobs reaped at their deadline.
    pub fn total_deadline_missed(&self) -> usize {
        self.slots.iter().map(|s| s.deadline_missed).sum()
    }

    /// Total deadline misses that re-enqueued a retry.
    pub fn total_retries_attempted(&self) -> usize {
        self.slots.iter().map(|s| s.retries_attempted).sum()
    }

    /// Total retried jobs that completed.
    pub fn total_retries_succeeded(&self) -> usize {
        self.slots.iter().map(|s| s.retries_succeeded).sum()
    }

    /// Total arrivals shed by breakers or the admission gate.
    pub fn total_shed(&self) -> usize {
        self.slots.iter().map(|s| s.shed_count).sum()
    }

    /// Total station-slots spent with an Open circuit breaker.
    pub fn total_breaker_open_slots(&self) -> usize {
        self.slots.iter().map(|s| s.breaker_open_slots).sum()
    }

    /// Deadline misses as a fraction of deadline-resolved jobs
    /// (misses / (misses + completions)); 0 when nothing resolved.
    pub fn deadline_miss_rate(&self) -> f64 {
        let missed = self.total_deadline_missed();
        let resolved = missed + self.total_queue_completed();
        if resolved == 0 {
            0.0
        } else {
            missed as f64 / resolved as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: usize, delay: f64, opt: Option<f64>) -> SlotMetrics {
        SlotMetrics {
            slot: i,
            avg_delay_ms: delay,
            decide_us: 100.0,
            optimal_avg_delay_ms: opt,
            remote_count: i % 2,
            rerouted_count: i,
            dropped_count: i % 3,
            drained_count: i % 2,
            migrated_entries: 2 * i,
            proactive_reroutes: i % 4,
            p50_sojourn_ms: delay / 2.0,
            p99_sojourn_ms: delay * 3.0,
            queue_dropped_count: i % 5,
            queue_completed_count: 3 * i,
            deadline_missed: i % 2,
            retries_attempted: i % 3,
            retries_succeeded: i % 3,
            shed_count: i % 4,
            breaker_open_slots: i % 2,
        }
    }

    #[test]
    fn zeroed_timings_strip_only_the_wall_clock() {
        let r = EpisodeReport {
            policy: "test".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, Some(8.0)), slot(2, 20.0, None)],
        };
        let z = r.with_zeroed_timings();
        assert_eq!(z.total_decide_ms(), 0.0);
        assert_eq!(z.mean_avg_delay_ms(), r.mean_avg_delay_ms());
        assert_eq!(z.slots[0].optimal_avg_delay_ms, Some(8.0));
        assert_eq!(z.total_remote(), r.total_remote());
        assert_eq!(
            z.mean_p99_sojourn_ms(),
            r.mean_p99_sojourn_ms(),
            "sojourns are simulated time, not wall clock — zeroing must keep them"
        );
        assert_eq!(r.total_decide_ms(), 0.2, "the original is untouched");
    }

    #[test]
    fn means_and_totals() {
        let r = EpisodeReport {
            policy: "test".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, None), slot(2, 20.0, None)],
        };
        assert_eq!(r.mean_avg_delay_ms(), 15.0);
        assert_eq!(r.mean_decide_us(), 100.0);
        assert_eq!(r.total_decide_ms(), 0.2);
        assert_eq!(r.delay_series(), vec![10.0, 20.0]);
        assert_eq!(r.total_remote(), 1);
        assert_eq!(r.total_rerouted(), 3);
        assert_eq!(r.total_dropped(), 3);
        assert_eq!(r.total_drained(), 1);
        assert_eq!(r.total_migrated(), 6);
        assert_eq!(r.total_proactive_reroutes(), 3);
        assert_eq!(r.total_queue_dropped(), 3);
        assert_eq!(r.mean_p50_sojourn_ms(), 7.5);
        assert_eq!(r.mean_p99_sojourn_ms(), 45.0);
        assert_eq!(r.max_p99_sojourn_ms(), 60.0);
        assert_eq!(r.total_queue_completed(), 9);
        assert_eq!(r.total_deadline_missed(), 1);
        assert_eq!(r.total_retries_attempted(), 3);
        assert_eq!(r.total_retries_succeeded(), 3);
        assert_eq!(r.total_shed(), 3);
        assert_eq!(r.total_breaker_open_slots(), 1);
        assert_eq!(r.deadline_miss_rate(), 0.1, "1 miss / (1 + 9 completions)");
    }

    #[test]
    fn deadline_miss_rate_guards_the_empty_denominator() {
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![],
        };
        assert_eq!(r.deadline_miss_rate(), 0.0);
    }

    #[test]
    fn delay_percentiles_use_the_same_nearest_rank_rule() {
        let slots: Vec<SlotMetrics> = (1..=100).map(|i| slot(i, i as f64, None)).collect();
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots,
        };
        assert_eq!(r.p50_avg_delay_ms(), 50.0);
        assert_eq!(r.p99_avg_delay_ms(), 99.0);
        assert_eq!(r.delay_ms_percentile(0.0), 1.0);
        assert_eq!(r.delay_ms_percentile(1.0), 100.0);
        assert_eq!(r.delay_ms_percentile(7.0), 100.0, "q clamps");
    }

    #[test]
    fn queue_summaries_are_zero_without_the_queue_core() {
        let mut s = slot(1, 10.0, None);
        s.p50_sojourn_ms = 0.0;
        s.p99_sojourn_ms = 0.0;
        s.queue_dropped_count = 0;
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![s],
        };
        assert_eq!(r.mean_p50_sojourn_ms(), 0.0);
        assert_eq!(r.mean_p99_sojourn_ms(), 0.0);
        assert_eq!(r.max_p99_sojourn_ms(), 0.0);
        assert_eq!(r.total_queue_dropped(), 0);
    }

    #[test]
    fn decide_percentiles_use_nearest_rank() {
        let mut slots: Vec<SlotMetrics> = (1..=100)
            .map(|i| SlotMetrics {
                slot: i,
                avg_delay_ms: 1.0,
                decide_us: i as f64,
                optimal_avg_delay_ms: None,
                remote_count: 0,
                rerouted_count: 0,
                dropped_count: 0,
                drained_count: 0,
                migrated_entries: 0,
                proactive_reroutes: 0,
                p50_sojourn_ms: 0.0,
                p99_sojourn_ms: 0.0,
                queue_dropped_count: 0,
                queue_completed_count: 0,
                deadline_missed: 0,
                retries_attempted: 0,
                retries_succeeded: 0,
                shed_count: 0,
                breaker_open_slots: 0,
            })
            .collect();
        // Shuffle-ish ordering: percentiles must sort, not trust input.
        slots.reverse();
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots,
        };
        assert_eq!(r.p99_decide_us(), 99.0);
        assert_eq!(r.decide_us_percentile(0.5), 50.0);
        assert_eq!(r.decide_us_percentile(0.0), 1.0);
        assert_eq!(r.decide_us_percentile(1.0), 100.0);
        assert_eq!(r.decide_us_percentile(2.0), 100.0, "q clamps");
        assert_eq!(r.total_decide_ms(), r.mean_decide_us() * 100.0 / 1_000.0);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![],
        };
        assert_eq!(r.p99_decide_us(), 0.0);
    }

    #[test]
    fn regret_requires_tracking() {
        let untracked = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, None)],
        };
        assert_eq!(untracked.cumulative_regret_ms(), None);
        let tracked = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, Some(8.0)), slot(2, 9.0, Some(8.5))],
        };
        assert_eq!(tracked.cumulative_regret_ms(), Some(2.5));
        assert_eq!(tracked.regret_curve(), Some(vec![2.0, 2.5]));
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![],
        };
        assert_eq!(r.mean_avg_delay_ms(), 0.0);
        assert_eq!(r.mean_decide_us(), 0.0);
        assert_eq!(r.cumulative_regret_ms(), Some(0.0));
    }
}
