//! Episode metrics: delay, runtime, regret.

use serde::{Deserialize, Serialize};

/// Measurements of one simulated time slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotMetrics {
    /// 1-based slot index.
    pub slot: usize,
    /// Average per-request delay achieved this slot, in ms (objective
    /// (3) evaluated on the realized delays).
    pub avg_delay_ms: f64,
    /// Wall-clock time of the policy's `decide` call, in microseconds —
    /// the paper's "running time" series (Figs. 3(b)–7(b)).
    pub decide_us: f64,
    /// The clairvoyant LP optimum of the same slot (same realized
    /// delays, true demands), in ms — `None` unless regret tracking is
    /// enabled.
    pub optimal_avg_delay_ms: Option<f64>,
    /// Requests that had to fall back to the remote data centre.
    pub remote_count: usize,
    /// Requests whose assignment targeted a station that failed this
    /// slot and were re-routed to another alive station by the repair
    /// pass (0 when fault injection is disabled).
    #[serde(default)]
    pub rerouted_count: usize,
    /// Requests pushed to the remote data centre by the repair pass
    /// because no alive station had spare capacity (a subset of
    /// `remote_count`; 0 when fault injection is disabled).
    #[serde(default)]
    pub dropped_count: usize,
    /// Stations that received a preemption notice this slot and began
    /// draining (0 when preemption is disabled).
    #[serde(default)]
    pub drained_count: usize,
    /// Warm cache entries migrated off draining stations this slot by
    /// the drain pass (0 when preemption is disabled).
    #[serde(default)]
    pub migrated_entries: usize,
    /// Requests moved off stations one slot from their scheduled kill by
    /// the pre-emptive repair pass (0 when preemption is disabled).
    #[serde(default)]
    pub proactive_reroutes: usize,
}

/// The result of running one policy for a horizon of slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeReport {
    /// Policy name.
    pub policy: String,
    /// Topology name.
    pub topology: String,
    /// Per-slot measurements.
    pub slots: Vec<SlotMetrics>,
}

impl EpisodeReport {
    /// A copy with every wall-clock field (`decide_us`) zeroed.
    ///
    /// Everything else in a report is a deterministic function of the
    /// seed; `decide_us` is the one measured quantity. Golden-trace
    /// tests comparing serial vs parallel runs byte-for-byte strip it
    /// first so the comparison covers exactly the deterministic state.
    pub fn with_zeroed_timings(&self) -> EpisodeReport {
        let mut out = self.clone();
        for slot in &mut out.slots {
            slot.decide_us = 0.0;
        }
        out
    }

    /// Mean achieved average delay over all slots, ms.
    pub fn mean_avg_delay_ms(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.slots.iter().map(|s| s.avg_delay_ms).sum::<f64>() / self.slots.len() as f64
    }

    /// Total decision runtime over the horizon, µs — the single
    /// summation behind every decide-time statistic.
    fn total_decide_us(&self) -> f64 {
        self.slots.iter().map(|s| s.decide_us).sum()
    }

    /// Total decision runtime over the horizon, ms.
    pub fn total_decide_ms(&self) -> f64 {
        self.total_decide_us() / 1_000.0
    }

    /// Mean per-slot decision runtime, µs.
    pub fn mean_decide_us(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.total_decide_us() / self.slots.len() as f64
    }

    /// Nearest-rank percentile of the per-slot decision runtime, µs.
    /// `q` is clamped to `[0, 1]`; returns 0 for an empty report.
    pub fn decide_us_percentile(&self, q: f64) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.slots.iter().map(|s| s.decide_us).collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// 99th-percentile per-slot decision runtime, µs — the LP-solve
    /// tail that per-slot means hide.
    pub fn p99_decide_us(&self) -> f64 {
        self.decide_us_percentile(0.99)
    }

    /// Cumulative regret against the clairvoyant optimum, if tracked:
    /// `Σ_t (achieved_t − optimal_t)`.
    pub fn cumulative_regret_ms(&self) -> Option<f64> {
        let mut total = 0.0;
        for s in &self.slots {
            total += s.avg_delay_ms - s.optimal_avg_delay_ms?;
        }
        Some(total)
    }

    /// The running cumulative-regret curve, if tracked.
    pub fn regret_curve(&self) -> Option<Vec<f64>> {
        let mut acc = 0.0;
        let mut curve = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            acc += s.avg_delay_ms - s.optimal_avg_delay_ms?;
            curve.push(acc);
        }
        Some(curve)
    }

    /// The per-slot achieved delay series (Fig. 3(a)-style).
    pub fn delay_series(&self) -> Vec<f64> {
        self.slots.iter().map(|s| s.avg_delay_ms).collect()
    }

    /// Total requests that fell back to the remote data centre.
    pub fn total_remote(&self) -> usize {
        self.slots.iter().map(|s| s.remote_count).sum()
    }

    /// Total requests re-routed to another alive station by the
    /// fault-repair pass.
    pub fn total_rerouted(&self) -> usize {
        self.slots.iter().map(|s| s.rerouted_count).sum()
    }

    /// Total requests the fault-repair pass pushed to the remote data
    /// centre for lack of alive edge capacity.
    pub fn total_dropped(&self) -> usize {
        self.slots.iter().map(|s| s.dropped_count).sum()
    }

    /// Total preemption notices received (stations that began draining).
    pub fn total_drained(&self) -> usize {
        self.slots.iter().map(|s| s.drained_count).sum()
    }

    /// Total warm cache entries migrated off draining stations.
    pub fn total_migrated(&self) -> usize {
        self.slots.iter().map(|s| s.migrated_entries).sum()
    }

    /// Total requests evacuated pre-emptively from doomed stations.
    pub fn total_proactive_reroutes(&self) -> usize {
        self.slots.iter().map(|s| s.proactive_reroutes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: usize, delay: f64, opt: Option<f64>) -> SlotMetrics {
        SlotMetrics {
            slot: i,
            avg_delay_ms: delay,
            decide_us: 100.0,
            optimal_avg_delay_ms: opt,
            remote_count: i % 2,
            rerouted_count: i,
            dropped_count: i % 3,
            drained_count: i % 2,
            migrated_entries: 2 * i,
            proactive_reroutes: i % 4,
        }
    }

    #[test]
    fn zeroed_timings_strip_only_the_wall_clock() {
        let r = EpisodeReport {
            policy: "test".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, Some(8.0)), slot(2, 20.0, None)],
        };
        let z = r.with_zeroed_timings();
        assert_eq!(z.total_decide_ms(), 0.0);
        assert_eq!(z.mean_avg_delay_ms(), r.mean_avg_delay_ms());
        assert_eq!(z.slots[0].optimal_avg_delay_ms, Some(8.0));
        assert_eq!(z.total_remote(), r.total_remote());
        assert_eq!(r.total_decide_ms(), 0.2, "the original is untouched");
    }

    #[test]
    fn means_and_totals() {
        let r = EpisodeReport {
            policy: "test".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, None), slot(2, 20.0, None)],
        };
        assert_eq!(r.mean_avg_delay_ms(), 15.0);
        assert_eq!(r.mean_decide_us(), 100.0);
        assert_eq!(r.total_decide_ms(), 0.2);
        assert_eq!(r.delay_series(), vec![10.0, 20.0]);
        assert_eq!(r.total_remote(), 1);
        assert_eq!(r.total_rerouted(), 3);
        assert_eq!(r.total_dropped(), 3);
        assert_eq!(r.total_drained(), 1);
        assert_eq!(r.total_migrated(), 6);
        assert_eq!(r.total_proactive_reroutes(), 3);
    }

    #[test]
    fn decide_percentiles_use_nearest_rank() {
        let mut slots: Vec<SlotMetrics> = (1..=100)
            .map(|i| SlotMetrics {
                slot: i,
                avg_delay_ms: 1.0,
                decide_us: i as f64,
                optimal_avg_delay_ms: None,
                remote_count: 0,
                rerouted_count: 0,
                dropped_count: 0,
                drained_count: 0,
                migrated_entries: 0,
                proactive_reroutes: 0,
            })
            .collect();
        // Shuffle-ish ordering: percentiles must sort, not trust input.
        slots.reverse();
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots,
        };
        assert_eq!(r.p99_decide_us(), 99.0);
        assert_eq!(r.decide_us_percentile(0.5), 50.0);
        assert_eq!(r.decide_us_percentile(0.0), 1.0);
        assert_eq!(r.decide_us_percentile(1.0), 100.0);
        assert_eq!(r.decide_us_percentile(2.0), 100.0, "q clamps");
        assert_eq!(r.total_decide_ms(), r.mean_decide_us() * 100.0 / 1_000.0);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![],
        };
        assert_eq!(r.p99_decide_us(), 0.0);
    }

    #[test]
    fn regret_requires_tracking() {
        let untracked = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, None)],
        };
        assert_eq!(untracked.cumulative_regret_ms(), None);
        let tracked = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![slot(1, 10.0, Some(8.0)), slot(2, 9.0, Some(8.5))],
        };
        assert_eq!(tracked.cumulative_regret_ms(), Some(2.5));
        assert_eq!(tracked.regret_curve(), Some(vec![2.0, 2.5]));
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = EpisodeReport {
            policy: "p".into(),
            topology: "t".into(),
            slots: vec![],
        };
        assert_eq!(r.mean_avg_delay_ms(), 0.0);
        assert_eq!(r.mean_decide_us(), 0.0);
        assert_eq!(r.cumulative_regret_ms(), Some(0.0));
    }
}
