//! The slot-by-slot simulation engine.

use crate::lowering::{build_caching_lp_masked, TransferCosts};
use crate::metrics::{EpisodeReport, SlotMetrics};
use crate::policy::{CachingPolicy, SlotContext, SlotFeedback};
use lexcache_obs as obs;
use lexcache_queue::{QueueConfig, QueueSim};
use mec_net::delay::{CongestionDelay, DelayProcess, RemoteDcDelay, UniformTierDelay};
use mec_net::{DrainState, FaultConfig, FaultProcess, NetworkConfig, Topology};
use mec_workload::demand::DemandProcess as _;
use mec_workload::Scenario;
use serde::{Deserialize, Serialize};

/// Which hidden unit-delay process drives the episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModelKind {
    /// IID uniform per-slot delays within each tier's range.
    Uniform,
    /// Congestion-modulated delays (two-state Markov chain per station).
    /// This is the default: temporally correlated congestion is the
    /// uncertainty that makes online learning beat static priors.
    Congestion {
        /// P(normal → congested) per slot.
        p_enter: f64,
        /// P(congested → normal) per slot.
        p_exit: f64,
        /// Delay multiplier while congested.
        factor: f64,
    },
}

impl DelayModelKind {
    /// The default congestion parameters used across the benches.
    pub fn default_congestion() -> Self {
        DelayModelKind::Congestion {
            p_enter: 0.10,
            p_exit: 0.25,
            factor: 3.0,
        }
    }
}

/// Episode-level knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// The hidden delay process.
    pub delay_model: DelayModelKind,
    /// Whether to hand the true demand vector to the policy
    /// (`given_demands`): `true` for the §IV `*_GD` regime, `false` for
    /// the §V prediction regime.
    pub reveal_demands: bool,
    /// Whether to solve the clairvoyant LP each slot for regret curves
    /// (roughly doubles runtime).
    pub track_regret: bool,
    /// `false` (default): the paper's per-slot accounting — every
    /// (service, station) instance used in a slot pays `d_ins`.
    /// `true`: instances stay warm across slots ([`crate::CacheState`])
    /// and only newly instantiated ones pay.
    pub amortize_instantiation: bool,
    /// Endogenous load-driven congestion: the realized unit delay of a
    /// station is additionally scaled by `1 + load_sensitivity ·
    /// (load/capacity)` — stations slow down *because* traffic piles
    /// onto them, the bottleneck mechanism of real topologies. `0`
    /// (default) disables it. Both the score and the bandit
    /// observations see the load-scaled delay, so learners can discover
    /// and avoid crowded stations.
    pub load_sensitivity: f64,
    /// Seeded fault injection: station outages, link failures and
    /// capacity brown-outs ([`FaultConfig::none`] by default — no fault
    /// process is even constructed, so the simulation is bit-identical
    /// to a build without fault support).
    #[serde(default)]
    pub faults: FaultConfig,
    /// How many warm cache entries may be migrated off a station per
    /// preemption notice (most-recently-used first, see
    /// [`crate::CacheState::drain_to`]). Only consulted when the fault
    /// config preempts; entries beyond the budget die with the station.
    #[serde(default = "default_migration_budget")]
    pub migration_budget: usize,
    /// Open-loop queue core ([`lexcache_queue::QueueSim`]): when set,
    /// every edge-assigned request additionally arrives at a concrete
    /// instant inside its slot, queues at its station (whose effective
    /// rate shrinks under brown-outs, outages and drain notices) and
    /// departs after its service time, filling the measured
    /// `p50_sojourn_ms`/`p99_sojourn_ms`/`queue_dropped_count` slot
    /// metrics alongside the paper's linear proxy. `None` (default)
    /// skips the layer entirely; [`QueueConfig::equivalence`] runs it
    /// with zero service time, which is bit-identical to `None`
    /// (golden-tested). The queue layer draws from its own salted hash
    /// streams, never the episode RNG, so enabling it cannot perturb
    /// demands, delays or faults. It feeds back into the objective and
    /// the policy in exactly two places: waiting-room drops and
    /// resilience sheds are charged demand × realized remote delay in
    /// `avg_delay_ms` (zero when nothing is lost), and circuit-breaker
    /// verdicts ([`lexcache_queue::ResilConfig`]) down-weight the next
    /// slot's LP columns like `Draining(k)` does.
    #[serde(default)]
    pub queue: Option<QueueConfig>,
    /// Environment seed (delay realizations).
    pub seed: u64,
}

fn default_migration_budget() -> usize {
    8
}

impl EpisodeConfig {
    /// Defaults: congestion delays, demands revealed, no regret tracking.
    pub fn new(seed: u64) -> Self {
        EpisodeConfig {
            delay_model: DelayModelKind::default_congestion(),
            reveal_demands: true,
            track_regret: false,
            amortize_instantiation: false,
            load_sensitivity: 0.0,
            faults: FaultConfig::none(),
            migration_budget: default_migration_budget(),
            queue: None,
            seed,
        }
    }

    /// Switches to the unknown-demand regime.
    pub fn hidden_demands(mut self) -> Self {
        self.reveal_demands = false;
        self
    }

    /// Enables clairvoyant-regret tracking.
    pub fn with_regret(mut self) -> Self {
        self.track_regret = true;
        self
    }

    /// Overrides the delay model.
    pub fn with_delay_model(mut self, model: DelayModelKind) -> Self {
        self.delay_model = model;
        self
    }

    /// Switches to warm-cache instantiation accounting.
    pub fn with_amortized_instantiation(mut self) -> Self {
        self.amortize_instantiation = true;
        self
    }

    /// Enables endogenous load-driven congestion.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is negative.
    pub fn with_load_sensitivity(mut self, sensitivity: f64) -> Self {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        self.load_sensitivity = sensitivity;
        self
    }

    /// Enables seeded fault injection (station outages, link failures,
    /// capacity brown-outs).
    ///
    /// # Panics
    ///
    /// Panics if any rate in `faults` is outside `[0, 1]` (see
    /// [`FaultConfig::validate`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        faults.validate();
        self.faults = faults;
        self
    }

    /// Overrides the per-notice cache migration budget (0 disables
    /// drain migration entirely).
    pub fn with_migration_budget(mut self, budget: usize) -> Self {
        self.migration_budget = budget;
        self
    }

    /// Enables the open-loop queue core (see [`EpisodeConfig::queue`]).
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = Some(queue);
        self
    }
}

enum DelayModel {
    Uniform(UniformTierDelay),
    Congestion(CongestionDelay),
}

impl DelayModel {
    fn as_dyn(&self) -> &dyn DelayProcess {
        match self {
            DelayModel::Uniform(p) => p,
            DelayModel::Congestion(p) => p,
        }
    }

    fn advance(&mut self) {
        match self {
            DelayModel::Uniform(p) => p.advance(),
            DelayModel::Congestion(p) => p.advance(),
        }
    }
}

/// A runnable simulation episode: one topology, one workload scenario,
/// one hidden delay realization.
///
/// Reuse the episode across policies by constructing one per policy with
/// the same seed — the environment randomness is identical, so
/// comparisons are paired.
pub struct Episode {
    topo: Topology,
    net_cfg: NetworkConfig,
    scenario: Scenario,
    transfer: TransferCosts,
    prior_delay: Vec<f64>,
    delay: DelayModel,
    remote: RemoteDcDelay,
    cfg: EpisodeConfig,
    cache: crate::CacheState,
    /// `Some` only when `cfg.faults.is_enabled()` — a disabled fault
    /// model costs nothing and changes nothing.
    faults: Option<FaultProcess>,
    /// Per-slot liveness snapshot handed to the policy (all-true when
    /// faults are off).
    station_up: Vec<bool>,
    /// Per-slot brown-out capacity multipliers (all-ones when faults are
    /// off).
    capacity_factor: Vec<f64>,
    /// Per-slot preemption drain states handed to the policy (all-`Up`
    /// when faults are off).
    drain: Vec<DrainState>,
    /// Transfer costs re-routed around dead links; `None` until the
    /// first link-state change, after which it shadows `transfer`.
    transfer_masked: Option<TransferCosts>,
    /// `Some` only when `cfg.queue` is set — the open-loop queue state
    /// (backlog included) persists across the episode's slots.
    queue: Option<QueueSim>,
    /// Per-slot circuit-breaker LP down-weights handed to the policy
    /// (1.0 Closed / 1.5 HalfOpen / 2.0 Open), refreshed from the queue
    /// core each slot; all-ones when the queue or its breakers are off.
    breaker_weight: Vec<f64>,
}

impl Episode {
    /// Creates an episode with [`EpisodeConfig::new`] defaults.
    pub fn new(topo: Topology, net_cfg: NetworkConfig, scenario: Scenario, seed: u64) -> Self {
        Self::with_config(topo, net_cfg, scenario, EpisodeConfig::new(seed))
    }

    /// Creates an episode with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was built for a different topology size.
    pub fn with_config(
        topo: Topology,
        net_cfg: NetworkConfig,
        scenario: Scenario,
        cfg: EpisodeConfig,
    ) -> Self {
        for r in scenario.requests() {
            assert!(
                r.registered_bs().index() < topo.len(),
                "scenario was built for a different topology"
            );
        }
        let transfer = TransferCosts::compute(&topo, &scenario);
        let prior_delay: Vec<f64> = topo
            .stations()
            .iter()
            .map(|bs| net_cfg.tier(bs.tier()).unit_delay_ms.mid())
            .collect();
        let delay = match cfg.delay_model {
            DelayModelKind::Uniform => {
                DelayModel::Uniform(UniformTierDelay::new(&topo, &net_cfg, cfg.seed))
            }
            DelayModelKind::Congestion {
                p_enter,
                p_exit,
                factor,
            } => DelayModel::Congestion(CongestionDelay::new(
                &topo, &net_cfg, p_enter, p_exit, factor, cfg.seed,
            )),
        };
        let remote = RemoteDcDelay::new(&net_cfg, cfg.seed);
        let cache = crate::CacheState::new(scenario.services().len(), topo.len());
        let faults = cfg
            .faults
            .is_enabled()
            .then(|| FaultProcess::new(&topo, cfg.faults, cfg.seed));
        let n = topo.len();
        Episode {
            topo,
            net_cfg,
            scenario,
            transfer,
            prior_delay,
            delay,
            remote,
            cfg,
            cache,
            faults,
            station_up: vec![true; n],
            capacity_factor: vec![1.0; n],
            drain: vec![DrainState::Up; n],
            transfer_masked: None,
            // The queue core gets the episode seed so its retry jitter
            // stream (seed ⊕ retry salt) is paired across policies; with
            // resilience disabled the seed is never consulted.
            queue: cfg.queue.map(|q| QueueSim::new_seeded(n, q, cfg.seed)),
            breaker_weight: vec![1.0; n],
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The per-episode transfer-cost matrix.
    pub fn transfer(&self) -> &TransferCosts {
        &self.transfer
    }

    /// Processing + transfer part of objective (3) on an integral
    /// assignment under realized delays, with queueing slowdown on
    /// overloaded stations: a station serving `load > capacity` data
    /// units multiplies its unit delay by `(load / capacity)²` — the
    /// superlinear blow-up of queueing delay near saturation. Also
    /// returns the distinct (service, station) instances used.
    fn score_processing(
        &self,
        assignment: &crate::Assignment,
        demands: &[f64],
        realized: &[f64],
        transfer: &TransferCosts,
    ) -> (f64, Vec<(usize, usize)>) {
        let n = self.topo.len();
        let c_unit = self.scenario.c_unit_mhz();
        let mut load = vec![0.0; n];
        for (l, t) in assignment.targets().iter().enumerate() {
            if let crate::Target::Edge(bs) = t {
                load[bs.index()] += demands[l];
            }
        }
        let overload: Vec<f64> = (0..n)
            .map(|i| {
                // Brown-outs shrink the usable capacity, so congestion
                // kicks in earlier (`* 1.0` bit-exact without faults).
                let cap =
                    (self.topo.stations()[i].capacity_mhz() / c_unit) * self.capacity_factor[i];
                let ratio = (load[i] / cap).max(1.0);
                ratio * ratio
            })
            .collect();
        let mut total = 0.0;
        let mut used = std::collections::BTreeSet::new();
        for (l, t) in assignment.targets().iter().enumerate() {
            match t {
                crate::Target::Edge(bs) => {
                    let i = bs.index();
                    total += demands[l] * (realized[i] * overload[i] + transfer.get(l, *bs));
                    let k = self.scenario.requests()[l].service().index();
                    used.insert((k, i));
                }
                crate::Target::Remote => {
                    total += demands[l] * self.remote.unit_delay();
                }
            }
        }
        (total, used.into_iter().collect())
    }

    /// Safety net run after `decide` when faults are active: any request
    /// still assigned to a down station is re-routed to its cheapest
    /// alive station with spare (brown-out-adjusted) capacity, or to the
    /// remote data centre when none has room. A second, pre-emptive pass
    /// then evacuates requests parked on stations one slot away from a
    /// scheduled preemption kill (`Draining(1)`) onto the cheapest alive
    /// non-draining station with slack — acting on the warning now is
    /// cheaper than post-outage repair next slot. Returns the repaired
    /// assignment plus `(rerouted, dropped, proactive)` counts.
    // lexlint: why the repair pass mirrors the full per-slot fault snapshot; a params struct would be built and torn down once per call site
    #[allow(clippy::too_many_arguments)]
    fn repair_faulted_assignment(
        &self,
        assignment: crate::Assignment,
        demands: &[f64],
        transfer: &TransferCosts,
        station_up: &[bool],
        capacity_factor: &[f64],
        drain: &[DrainState],
    ) -> (crate::Assignment, usize, usize, usize) {
        let n = self.topo.len();
        let c_unit = self.scenario.c_unit_mhz();
        let capacity: Vec<f64> = self
            .topo
            .stations()
            .iter()
            .enumerate()
            .map(|(i, bs)| {
                if station_up[i] {
                    (bs.capacity_mhz() / c_unit) * capacity_factor[i]
                } else {
                    0.0
                }
            })
            .collect();
        let mut targets: Vec<crate::Target> = assignment.targets().to_vec();
        let mut load = vec![0.0; n];
        for (l, t) in targets.iter().enumerate() {
            if let crate::Target::Edge(bs) = t {
                if station_up[bs.index()] {
                    load[bs.index()] += demands[l];
                }
            }
        }
        let mut rerouted = 0;
        let mut dropped = 0;
        for l in 0..targets.len() {
            let crate::Target::Edge(bs) = targets[l] else {
                continue;
            };
            if station_up[bs.index()] {
                continue;
            }
            let mut best: Option<usize> = None;
            let mut best_cost = self.net_cfg.remote_dc_delay_ms.mid();
            for i in 0..n {
                if station_up[i] && load[i] + demands[l] <= capacity[i] + 1e-9 {
                    let c = self.prior_delay[i] + transfer.get(l, mec_net::BsId(i));
                    if c < best_cost {
                        best_cost = c;
                        best = Some(i);
                    }
                }
            }
            match best {
                Some(i) => {
                    load[i] += demands[l];
                    targets[l] = crate::Target::Edge(mec_net::BsId(i));
                    rerouted += 1;
                }
                None => {
                    targets[l] = crate::Target::Remote;
                    dropped += 1;
                }
            }
        }
        // Pre-emptive pass: a request still parked on a `Draining(1)`
        // station would be force-repaired (or lost to the remote tier)
        // next slot anyway; moving it now, while the station still
        // serves, avoids instantiating anything new on doomed hardware.
        // Unlike the down-station pass there is no remote fallback — if
        // no alive non-draining station has slack, the request stays put
        // for its final served slot.
        let mut proactive = 0;
        if drain.iter().any(|d| *d == DrainState::Draining(1)) {
            for l in 0..targets.len() {
                let crate::Target::Edge(bs) = targets[l] else {
                    continue;
                };
                if drain[bs.index()] != DrainState::Draining(1) || !station_up[bs.index()] {
                    continue;
                }
                let mut best: Option<usize> = None;
                let mut best_cost = f64::INFINITY;
                for i in 0..n {
                    if !station_up[i] || drain[i].is_draining() {
                        continue;
                    }
                    if load[i] + demands[l] <= capacity[i] + 1e-9 {
                        let c = self.prior_delay[i] + transfer.get(l, mec_net::BsId(i));
                        if c < best_cost {
                            best_cost = c;
                            best = Some(i);
                        }
                    }
                }
                if let Some(i) = best {
                    load[bs.index()] -= demands[l];
                    load[i] += demands[l];
                    targets[l] = crate::Target::Edge(mec_net::BsId(i));
                    proactive += 1;
                }
            }
        }
        (
            crate::Assignment::new(targets),
            rerouted,
            dropped,
            proactive,
        )
    }

    /// Runs `policy` for `horizon` slots and collects metrics.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or the policy returns an assignment of
    /// the wrong size.
    pub fn run(&mut self, policy: &mut dyn CachingPolicy, horizon: usize) -> EpisodeReport {
        assert!(horizon > 0, "horizon must be positive");
        let n = self.topo.len();
        let n_requests = self.scenario.requests().len();
        let request_cells: Vec<usize> = self
            .scenario
            .requests()
            .iter()
            .map(|r| r.location_cell())
            .collect();
        let mut slots = Vec::with_capacity(horizon);

        for slot in 1..=horizon {
            obs::gauge("sim/slot", slot as f64);
            // The environment reveals this slot's demands and (hidden)
            // delays.
            let demands = {
                let _span = obs::span("sim/demand");
                self.scenario.demand_mut().advance();
                let demands = self.scenario.demand().demands();
                self.delay.advance();
                self.remote.advance();
                demands
            };

            // Fault injection: advance the outage/link/brown-out chains,
            // lose the warm cache of freshly failed stations and reroute
            // transfer paths around dead links. Skipped entirely (not
            // just a no-op) when faults are disabled.
            let mut drained_count = 0usize;
            let mut migrated_entries = 0usize;
            if self.faults.is_some() {
                let _span = obs::span("sim/faults");
                if let Some(fp) = self.faults.as_mut() {
                    fp.advance(&self.topo);
                    let mut killed_while_draining = 0u64;
                    for &bs in fp.newly_failed() {
                        let lost = self.cache.evict_station(bs);
                        if fp.preempt_killed().contains(&bs) {
                            killed_while_draining += lost as u64;
                            obs::mark("faults/preempt_kill");
                        }
                    }
                    if killed_while_draining > 0 {
                        obs::counter("faults/killed_while_draining", killed_while_draining);
                    }
                    if fp.injected_last_slot() > 0 {
                        obs::counter("faults/injected", fp.injected_last_slot() as u64);
                    }
                    // Proactive degradation: every station warned this
                    // slot drains its warmest cache entries onto the
                    // cheapest alive station that is not itself doomed,
                    // up to the migration budget. The rest of the warm
                    // set dies with the station at kill time.
                    drained_count = fp.notices().len();
                    if drained_count > 0 {
                        obs::counter("faults/preempt_warned", drained_count as u64);
                    }
                    for idx in 0..drained_count {
                        obs::mark("faults/preempt_notice");
                        let from = fp.notices()[idx].station;
                        let mut best: Option<usize> = None;
                        let mut best_cost = f64::INFINITY;
                        for i in 0..n {
                            if i == from.index()
                                || !fp.station_up()[i]
                                || fp.drain_states()[i].is_draining()
                            {
                                continue;
                            }
                            let c = self.prior_delay[i];
                            if c < best_cost {
                                best_cost = c;
                                best = Some(i);
                            }
                        }
                        if let Some(i) = best {
                            let moved = self.cache.drain_to(
                                from,
                                mec_net::BsId(i),
                                self.cfg.migration_budget,
                            );
                            if moved > 0 {
                                migrated_entries += moved;
                                obs::mark("faults/drain");
                            }
                        }
                    }
                    if migrated_entries > 0 {
                        obs::counter("faults/drained", migrated_entries as u64);
                    }
                    if fp.links_changed() {
                        self.transfer_masked = Some(TransferCosts::compute_masked(
                            &self.topo,
                            &self.scenario,
                            fp.link_up(),
                        ));
                    }
                    self.station_up.copy_from_slice(fp.station_up());
                    self.capacity_factor.copy_from_slice(fp.capacity_factors());
                    self.drain.copy_from_slice(fp.drain_states());
                }
            }
            let transfer_now = self.transfer_masked.as_ref().unwrap_or(&self.transfer);

            // Circuit-breaker verdicts from the queue core's *previous*
            // slot down-weight this slot's LP columns, exactly like
            // `Draining(k)`. All-ones (and the builder delegates to the
            // drain-aware path bit-for-bit) when breakers are off.
            if let Some(qs) = self.queue.as_ref() {
                self.breaker_weight = qs.breaker_weights();
            }

            let ctx = {
                let _span = obs::span("sim/context");
                SlotContext {
                    slot,
                    topo: &self.topo,
                    scenario: &self.scenario,
                    given_demands: self.cfg.reveal_demands.then_some(demands.as_slice()),
                    transfer: transfer_now,
                    prior_delay: &self.prior_delay,
                    remote_delay: self.net_cfg.remote_dc_delay_ms.mid(),
                    net_cfg: &self.net_cfg,
                    station_up: &self.station_up,
                    capacity_factor: &self.capacity_factor,
                    drain: &self.drain,
                    breaker_weight: &self.breaker_weight,
                }
            };
            let decide_span = obs::span("sim/decide");
            let watch = obs::Stopwatch::start();
            let assignment = policy.decide(&ctx);
            let decide_us = watch.elapsed_us();
            drop(decide_span);
            assert_eq!(
                assignment.len(),
                n_requests,
                "assignment must cover every request"
            );
            drop(ctx);

            // Graceful degradation: nothing may stay assigned to a down
            // station, whatever the policy returned — and nothing should
            // wait out a preemption warning's final slot if a safe
            // station has room.
            let (assignment, rerouted_count, dropped_count, proactive_reroutes) =
                if self.faults.is_some() {
                    let _span = obs::span("sim/fault_repair");
                    let (repaired, rerouted, dropped, proactive) = self.repair_faulted_assignment(
                        assignment,
                        &demands,
                        transfer_now,
                        &self.station_up,
                        &self.capacity_factor,
                        &self.drain,
                    );
                    if rerouted > 0 {
                        obs::counter("requests/rerouted", rerouted as u64);
                    }
                    if dropped > 0 {
                        obs::counter("requests/dropped", dropped as u64);
                    }
                    if proactive > 0 {
                        obs::counter("requests/proactive_reroute", proactive as u64);
                    }
                    (repaired, rerouted, dropped, proactive)
                } else {
                    (assignment, 0, 0, 0)
                };

            // Score against the realized delays. A station whose
            // realized load exceeds its capacity queues: its unit delay
            // scales with the overload ratio. Policies that under-predict
            // bursty demand therefore pay for it — the physical effect
            // the paper's bursty-demand story hinges on. The clairvoyant
            // optimum below respects capacities exactly and never
            // overloads.
            let realize_span = obs::span("sim/realize");
            let mut realized: Vec<f64> = (0..n)
                .map(|i| self.delay.as_dyn().unit_delay(mec_net::BsId(i)))
                .collect();
            if self.cfg.load_sensitivity > 0.0 {
                // Endogenous congestion: this slot's utilization slows
                // the stations carrying it.
                let c_unit = self.scenario.c_unit_mhz();
                let mut load = vec![0.0; n];
                for (l, t) in assignment.targets().iter().enumerate() {
                    if let crate::Target::Edge(bs) = t {
                        load[bs.index()] += demands[l];
                    }
                }
                for (i, r) in realized.iter_mut().enumerate() {
                    let cap =
                        (self.topo.stations()[i].capacity_mhz() / c_unit) * self.capacity_factor[i];
                    *r *= 1.0 + self.cfg.load_sensitivity * (load[i] / cap);
                }
            }
            let (processing, used_instances) =
                self.score_processing(&assignment, &demands, &realized, transfer_now);
            drop(realize_span);
            let inst_cost = {
                let _span = obs::span("sim/cache_apply");
                obs::counter("cache/instances_used", used_instances.len() as u64);
                if self.cfg.amortize_instantiation {
                    self.cache
                        .apply(slot, &used_instances, self.scenario.instantiation())
                } else {
                    used_instances
                        .iter()
                        .map(|&(k, i)| self.scenario.instantiation().get(mec_net::BsId(i), k))
                        .sum()
                }
            };
            let avg_delay_ms = (processing + inst_cost) / n_requests as f64;
            // Clairvoyant reference: the processing-delay LP optimum
            // under the realized delays and true demands. The
            // instantiation term is dropped from the reference — a
            // fractional solution spreads requests over many partial
            // instances, so its summed instantiation cost is *not* a
            // lower bound on integral assignments, while the pure
            // processing optimum is.
            let optimal_avg_delay_ms = if self.cfg.track_regret {
                let _span = obs::span("sim/regret_lp");
                let true_lp = build_caching_lp_masked(
                    &self.topo,
                    &self.scenario,
                    transfer_now,
                    &realized,
                    &demands,
                    self.remote.unit_delay(),
                    &self.station_up,
                    &self.capacity_factor,
                );
                true_lp.solve_fast().ok().map(|sol| {
                    let zero_y = vec![vec![0.0; true_lp.n_stations()]; true_lp.n_services()];
                    true_lp.objective_of(&sol.x, &zero_y)
                })
            } else {
                None
            };

            // Bandit feedback: only stations actually played reveal their
            // realized delay.
            let feedback_span = obs::span("sim/feedback");
            let observed: Vec<(usize, f64)> = assignment
                .stations_used()
                .into_iter()
                .map(|bs| (bs.index(), realized[bs.index()]))
                .collect();
            let feedback = SlotFeedback {
                slot,
                observed_unit_delay: &observed,
                realized_demands: &demands,
                request_cells: &request_cells,
                station_up: &self.station_up,
            };
            policy.observe(&feedback);
            obs::counter("sim/remote_requests", assignment.remote_count() as u64);
            drop(feedback_span);

            // Open-loop queue layer: replay this slot's (repaired)
            // assignment as timed arrivals against finite-rate station
            // servers and measure per-request sojourns. The arrival and
            // retry streams are hashed from (seed, slot, request) rather
            // than drawn from the episode RNG, so a queue-disabled run
            // is untouched. Two narrow feedback paths exist: breaker
            // verdicts down-weight next slot's LP columns (above), and
            // every waiting-room drop or resilience shed is charged its
            // demand at the realized remote unit delay — the request
            // was effectively bounced to the remote tier — so overload
            // shows up in the paper's cost objective exactly like the
            // fault path's `dropped_count`. A lossless slot adds
            // nothing and leaves `avg_delay_ms` bit-identical.
            let mut queue_loss_penalty = 0.0;
            let (
                p50_sojourn_ms,
                p99_sojourn_ms,
                queue_dropped_count,
                queue_completed_count,
                deadline_missed,
                retries_attempted,
                retries_succeeded,
                shed_count,
                breaker_open_slots,
            ) = match self.queue.as_mut() {
                Some(qs) => {
                    let _span = obs::span("sim/queue");
                    let qcfg = *qs.config();
                    // Effective service rate per station: liveness ×
                    // brown-out factor × drain down-weight (a station
                    // `Draining(k)` serves at k/(k+1), mirroring the
                    // LP's (1 + 1/k) cost penalty on doomed columns).
                    let rates: Vec<f64> = (0..n)
                        .map(|i| {
                            if !self.station_up[i] {
                                return 0.0;
                            }
                            let drain_factor = match self.drain[i] {
                                DrainState::Draining(k) => k as f64 / (k as f64 + 1.0),
                                _ => 1.0,
                            };
                            self.capacity_factor[i] * drain_factor
                        })
                        .collect();
                    // Drain notices interlock with the breakers: a
                    // HalfOpen breaker must not spend its probe on a
                    // station that is scheduled to die.
                    let draining: Vec<bool> = self.drain.iter().map(|d| d.is_draining()).collect();
                    qs.set_draining(&draining);
                    qs.begin_slot(slot, &rates);
                    // Normalize service times so total offered work is
                    // ρ × nominal capacity (n stations × slot length).
                    // Normalizing by *nominal* rather than live
                    // capacity means faults genuinely raise effective
                    // load; per-station load depends on where the
                    // policy routed demand.
                    let total_demand: f64 = demands.iter().sum();
                    let ms_per_unit = if total_demand > 0.0 {
                        qcfg.offered_load * n as f64 * qcfg.slot_ms / total_demand
                    } else {
                        0.0
                    };
                    // Priority-aware shedding spares the heavy hitters:
                    // an above-average-demand request is high priority.
                    let mean_demand = total_demand / n_requests as f64;
                    let arrivals = mec_workload::arrivals::expand_slot(
                        self.cfg.seed ^ qcfg.arrival_seed_salt,
                        slot,
                        n_requests,
                        qcfg.slot_ms,
                    );
                    for a in &arrivals {
                        if let crate::Target::Edge(bs) = assignment.targets()[a.request] {
                            qs.submit_prio(
                                a.request,
                                bs.index(),
                                a.offset_ms,
                                demands[a.request] * ms_per_unit,
                                demands[a.request] >= mean_demand,
                            );
                        }
                    }
                    let stats = qs.run_slot();
                    for &r in stats.dropped_requests.iter().chain(&stats.shed_requests) {
                        queue_loss_penalty += demands[r] * self.remote.unit_delay();
                    }
                    (
                        stats.p50_ms(),
                        stats.p99_ms(),
                        stats.dropped,
                        stats.completed(),
                        stats.deadline_missed,
                        stats.retries_attempted,
                        stats.retries_succeeded,
                        stats.shed,
                        stats.breaker_open,
                    )
                }
                None => (0.0, 0.0, 0, 0, 0, 0, 0, 0, 0),
            };
            let avg_delay_ms = if queue_loss_penalty > 0.0 {
                avg_delay_ms + queue_loss_penalty / n_requests as f64
            } else {
                avg_delay_ms
            };

            slots.push(SlotMetrics {
                slot,
                avg_delay_ms,
                decide_us,
                optimal_avg_delay_ms,
                remote_count: assignment.remote_count(),
                rerouted_count,
                dropped_count,
                drained_count,
                migrated_entries,
                proactive_reroutes,
                p50_sojourn_ms,
                p99_sojourn_ms,
                queue_dropped_count,
                queue_completed_count,
                deadline_missed,
                retries_attempted,
                retries_succeeded,
                shed_count,
                breaker_open_slots,
            });
        }
        EpisodeReport {
            policy: policy.name().to_string(),
            topology: self.topo.name().to_string(),
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyGd, OlGd, OlReg, PriGd};
    use crate::assignment::Target;
    use crate::policy::PolicyConfig;
    use mec_net::topology::gtitm;
    use mec_workload::ScenarioConfig;

    fn episode(seed: u64) -> Episode {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(20, &cfg, seed);
        let scenario = ScenarioConfig::small().build(&topo, seed);
        Episode::new(topo, cfg, scenario, seed)
    }

    #[test]
    fn ol_gd_runs_and_reports_every_slot() {
        let mut ep = episode(1);
        let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 12);
        assert_eq!(report.slots.len(), 12);
        assert_eq!(report.policy, "OL_GD");
        for s in &report.slots {
            assert!(s.avg_delay_ms > 0.0 && s.avg_delay_ms.is_finite());
            assert!(s.decide_us >= 0.0);
            assert_eq!(s.optimal_avg_delay_ms, None);
        }
    }

    #[test]
    fn baselines_run() {
        for (policy, name) in [
            (
                Box::new(GreedyGd::new()) as Box<dyn CachingPolicy>,
                "Greedy_GD",
            ),
            (Box::new(PriGd::new()) as Box<dyn CachingPolicy>, "Pri_GD"),
        ] {
            let mut policy = policy;
            let mut ep = episode(2);
            let report = ep.run(policy.as_mut(), 5);
            assert_eq!(report.policy, name);
            assert!(report.mean_avg_delay_ms() > 0.0);
        }
    }

    #[test]
    fn regret_tracking_produces_optimum_per_slot() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &cfg, 3);
        let scenario = ScenarioConfig::small().build(&topo, 3);
        let mut ep = Episode::with_config(topo, cfg, scenario, EpisodeConfig::new(3).with_regret());
        let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 6);
        for s in &report.slots {
            let opt = s.optimal_avg_delay_ms.expect("tracked");
            // The clairvoyant fractional optimum can never beat an
            // integral assignment by a negative margin.
            assert!(
                s.avg_delay_ms >= opt - 1e-6,
                "achieved {} below optimum {opt}",
                s.avg_delay_ms
            );
        }
        assert!(report.cumulative_regret_ms().unwrap() >= -1e-6);
    }

    #[test]
    fn paired_environments_are_identical_across_policies() {
        // Two episodes with the same seed expose the same demand/delay
        // realizations: a policy that ignores feedback sees identical
        // costs in both runs.
        let mut a = episode(7);
        let mut b = episode(7);
        let ra = a.run(&mut GreedyGd::new(), 8);
        let rb = b.run(&mut GreedyGd::new(), 8);
        assert_eq!(ra.delay_series(), rb.delay_series());
    }

    #[test]
    fn learning_beats_static_greedy_under_congestion() {
        // Run long enough for the arms to converge; the learner should
        // be at least competitive with (and typically beat) the static
        // prior-driven greedy under congested delays.
        let horizon = 60;
        let mut greedy_total = 0.0;
        let mut ol_total = 0.0;
        for seed in 0..3 {
            let mut e1 = episode(seed);
            greedy_total += e1.run(&mut GreedyGd::new(), horizon).mean_avg_delay_ms();
            let mut e2 = episode(seed);
            ol_total += e2
                .run(
                    &mut OlGd::new(PolicyConfig::default().with_seed(seed)),
                    horizon,
                )
                .mean_avg_delay_ms();
        }
        assert!(
            ol_total < greedy_total * 1.05,
            "OL_GD {ol_total} should be competitive with greedy {greedy_total}"
        );
    }

    #[test]
    fn hidden_demand_regime_runs_ol_reg() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &cfg, 5);
        let scenario = ScenarioConfig::small()
            .with_demand(mec_workload::scenario::DemandKind::Flash(
                mec_workload::demand::FlashCrowdConfig::default(),
            ))
            .build(&topo, 5);
        let mut ep =
            Episode::with_config(topo, cfg, scenario, EpisodeConfig::new(5).hidden_demands());
        let report = ep.run(&mut OlReg::new(PolicyConfig::default(), 3), 10);
        assert_eq!(report.slots.len(), 10);
        assert!(report.mean_avg_delay_ms() > 0.0);
    }

    #[test]
    fn amortized_accounting_is_cheaper_and_rank_preserving() {
        let cfg = NetworkConfig::paper_defaults();
        let run = |amortize: bool, seed: u64| {
            let topo = gtitm::generate(20, &cfg, seed);
            let scenario = ScenarioConfig::small().build(&topo, seed);
            let mut ep_cfg = EpisodeConfig::new(seed);
            if amortize {
                ep_cfg = ep_cfg.with_amortized_instantiation();
            }
            let mut ep = Episode::with_config(topo, cfg.clone(), scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 12).mean_avg_delay_ms()
        };
        for seed in 0..3 {
            let per_slot = run(false, seed);
            let amortized = run(true, seed);
            assert!(
                amortized < per_slot,
                "warm cache must reduce total delay: {amortized} vs {per_slot}"
            );
        }
    }

    #[test]
    fn load_sensitivity_raises_delays_and_rewards_spreading() {
        let cfg = NetworkConfig::paper_defaults();
        let run = |sensitivity: f64| {
            let topo = gtitm::generate(20, &cfg, 5);
            let scenario = ScenarioConfig::small().with_requests(25).build(&topo, 5);
            let mut ep = Episode::with_config(
                topo,
                cfg.clone(),
                scenario,
                EpisodeConfig::new(5).with_load_sensitivity(sensitivity),
            );
            ep.run(&mut GreedyGd::new(), 10).mean_avg_delay_ms()
        };
        let base = run(0.0);
        let loaded = run(2.0);
        assert!(
            loaded > base,
            "load-driven congestion must raise delays: {loaded} vs {base}"
        );
    }

    #[test]
    #[should_panic(expected = "sensitivity must be non-negative")]
    fn negative_sensitivity_rejected() {
        let _ = EpisodeConfig::new(1).with_load_sensitivity(-1.0);
    }

    #[test]
    fn estimator_variants_run_end_to_end() {
        use crate::policy::EstimatorKind;
        for estimator in [
            EstimatorKind::SampleMean,
            EstimatorKind::Windowed { window: 5 },
            EstimatorKind::Discounted { gamma: 0.8 },
        ] {
            let mut ep = episode(11);
            let report = ep.run(
                &mut OlGd::new(PolicyConfig::default().with_estimator(estimator)),
                8,
            );
            assert_eq!(report.slots.len(), 8, "{estimator:?}");
            assert!(report.mean_avg_delay_ms() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut ep = episode(1);
        let _ = ep.run(&mut GreedyGd::new(), 0);
    }

    #[test]
    fn zero_rate_faults_match_plain_episode_bit_for_bit() {
        let plain = {
            let mut ep = episode(13);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 10)
        };
        let with_disabled_faults = {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 13);
            let scenario = ScenarioConfig::small().build(&topo, 13);
            let ep_cfg = EpisodeConfig::new(13).with_faults(FaultConfig::intensity(0.0));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 10)
        };
        let bits = |r: &EpisodeReport| -> Vec<(u64, usize)> {
            r.slots
                .iter()
                .map(|s| (s.avg_delay_ms.to_bits(), s.remote_count))
                .collect()
        };
        assert_eq!(bits(&plain), bits(&with_disabled_faults));
        assert_eq!(with_disabled_faults.total_rerouted(), 0);
        assert_eq!(with_disabled_faults.total_dropped(), 0);
    }

    #[test]
    fn faulty_episodes_are_deterministic() {
        let run = || {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 21);
            let scenario = ScenarioConfig::small().build(&topo, 21);
            let ep_cfg = EpisodeConfig::new(21).with_faults(FaultConfig::intensity(0.1));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 15)
        };
        let a = run();
        let b = run();
        let bits = |r: &EpisodeReport| -> Vec<(u64, usize, usize, usize)> {
            r.slots
                .iter()
                .map(|s| {
                    (
                        s.avg_delay_ms.to_bits(),
                        s.remote_count,
                        s.rerouted_count,
                        s.dropped_count,
                    )
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed, same faults, same run");
    }

    #[test]
    fn repair_pass_moves_requests_off_down_stations() {
        let ep = episode(17);
        let n = ep.topology().len();
        let n_req = ep.scenario().requests().len();
        let demands = vec![1.0; n_req];
        let mut station_up = vec![true; n];
        station_up[0] = false;
        let capacity_factor = vec![1.0; n];
        // A pathological policy output: everything on the down station.
        let broken = crate::Assignment::new(vec![Target::Edge(mec_net::BsId(0)); n_req]);
        let drain = vec![mec_net::DrainState::Up; n];
        let (repaired, rerouted, dropped, proactive) = ep.repair_faulted_assignment(
            broken,
            &demands,
            ep.transfer(),
            &station_up,
            &capacity_factor,
            &drain,
        );
        assert_eq!(rerouted + dropped, n_req, "every request was touched");
        assert_eq!(proactive, 0, "nothing drains in this scenario");
        let mut load = vec![0.0; n];
        for (l, t) in repaired.targets().iter().enumerate() {
            if let Target::Edge(bs) = t {
                assert_ne!(bs.index(), 0, "request {l} still on the down station");
                load[bs.index()] += demands[l];
            }
        }
        for (i, &l) in load.iter().enumerate() {
            let cap = ep.topology().stations()[i].capacity_mhz() / ep.scenario().c_unit_mhz();
            assert!(l <= cap + 1e-6, "station {i} overloaded after repair: {l}");
        }
    }

    #[test]
    fn faulted_runs_reroute_a_fault_oblivious_policy() {
        // A policy that ignores `station_up` entirely: the simulator's
        // repair pass must still keep its requests off down stations.
        struct StickToZero;
        impl CachingPolicy for StickToZero {
            fn name(&self) -> &'static str {
                "Stick0"
            }
            fn decide(&mut self, ctx: &SlotContext<'_>) -> crate::Assignment {
                let n_req = ctx.scenario.requests().len();
                crate::Assignment::new(vec![Target::Edge(mec_net::BsId(0)); n_req])
            }
            fn observe(&mut self, _fb: &SlotFeedback<'_>) {}
        }
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(10, &cfg, 23);
        let scenario = ScenarioConfig::small().build(&topo, 23);
        let faults = FaultConfig {
            outage_rate: 0.9,
            repair_rate: 0.1,
            ..FaultConfig::none()
        };
        let ep_cfg = EpisodeConfig::new(23).with_faults(faults);
        let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
        let report = ep.run(&mut StickToZero, 30);
        assert!(
            report.total_rerouted() + report.total_dropped() > 0,
            "station 0 was down at some point; repairs must show up"
        );
    }

    #[test]
    fn policies_avoid_down_stations_and_reduced_capacity_under_faults() {
        // Audit every decision *before* the simulator's repair pass:
        // fault-aware policies must keep clear of down stations and obey
        // the brown-out-reduced capacities on their own.
        struct Audit(Box<dyn CachingPolicy>, bool);
        impl CachingPolicy for Audit {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn decide(&mut self, ctx: &SlotContext<'_>) -> crate::Assignment {
                let a = self.0.decide(ctx);
                let demands = ctx.given_demands.unwrap();
                let n = ctx.topo.len();
                let mut load = vec![0.0; n];
                for (l, t) in a.targets().iter().enumerate() {
                    if let Target::Edge(bs) = t {
                        assert!(
                            ctx.station_up[bs.index()],
                            "request {l} assigned to down station {}",
                            bs.index()
                        );
                        load[bs.index()] += demands[l];
                    }
                }
                for (i, &l) in load.iter().enumerate() {
                    let cap = (ctx.topo.stations()[i].capacity_mhz() / ctx.scenario.c_unit_mhz())
                        * ctx.capacity_factor[i];
                    assert!(l <= cap + 1e-6, "station {i} over effective capacity: {l}");
                }
                if ctx.station_up.iter().any(|&u| !u) {
                    self.1 = true;
                }
                a
            }
            fn observe(&mut self, fb: &SlotFeedback<'_>) {
                self.0.observe(fb);
            }
        }
        for (policy, label) in [
            (
                Box::new(OlGd::new(PolicyConfig::default())) as Box<dyn CachingPolicy>,
                "OL_GD",
            ),
            (
                Box::new(GreedyGd::new()) as Box<dyn CachingPolicy>,
                "greedy",
            ),
        ] {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 29);
            let scenario = ScenarioConfig::small().build(&topo, 29);
            let ep_cfg = EpisodeConfig::new(29).with_faults(FaultConfig::intensity(0.2));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            let mut audit = Audit(policy, false);
            let _ = ep.run(&mut audit, 25);
            assert!(audit.1, "{label}: no slot ever had a down station");
        }
    }

    #[test]
    fn capacity_is_never_violated() {
        // Use a scenario with heavy demand against a tiny network to
        // force the repair path, then audit loads per station.
        struct Audit<P>(P, Vec<Vec<f64>>);
        impl<P: CachingPolicy> CachingPolicy for Audit<P> {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn decide(&mut self, ctx: &SlotContext<'_>) -> crate::Assignment {
                let a = self.0.decide(ctx);
                let demands = ctx.given_demands.unwrap();
                let mut load = vec![0.0; ctx.topo.len()];
                for (l, t) in a.targets().iter().enumerate() {
                    if let Target::Edge(bs) = t {
                        load[bs.index()] += demands[l];
                    }
                }
                self.1.push(load);
                a
            }
            fn observe(&mut self, fb: &SlotFeedback<'_>) {
                self.0.observe(fb);
            }
        }
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(8, &cfg, 9);
        let scenario = ScenarioConfig::small().with_requests(40).build(&topo, 9);
        let caps: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| b.capacity_mhz() / scenario.c_unit_mhz())
            .collect();
        let mut audit = Audit(OlGd::new(PolicyConfig::default()), Vec::new());
        let mut ep = Episode::new(topo, cfg, scenario, 9);
        let _ = ep.run(&mut audit, 10);
        for loads in &audit.1 {
            for (i, &l) in loads.iter().enumerate() {
                assert!(l <= caps[i] + 1e-6, "station {i} overloaded: {l}");
            }
        }
    }

    /// Tentpole pin at the episode level: preemption with a zero-slot
    /// notice window is the unannounced-outage pipeline bit-for-bit —
    /// same kills, same repairs, same delays, and none of the
    /// drain-path metrics ever fire.
    #[test]
    fn preempt_notice_zero_episode_matches_unannounced_outage_episode() {
        let build = |faults: FaultConfig| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 43);
            let scenario = ScenarioConfig::small().build(&topo, 43);
            let ep_cfg = EpisodeConfig::new(43)
                .with_faults(faults)
                .with_amortized_instantiation();
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 25)
        };
        let preempt = build(FaultConfig::preempt(0.15, 0));
        let outage = build(FaultConfig {
            outage_rate: 0.15,
            repair_rate: 0.3,
            correlation_radius_m: 100.0,
            correlation_probability: 0.5,
            ..FaultConfig::none()
        });
        let bits = |r: &EpisodeReport| -> Vec<(u64, usize, usize, usize)> {
            r.slots
                .iter()
                .map(|s| {
                    (
                        s.avg_delay_ms.to_bits(),
                        s.remote_count,
                        s.rerouted_count,
                        s.dropped_count,
                    )
                })
                .collect()
        };
        assert_eq!(bits(&preempt), bits(&outage));
        assert_eq!(preempt.total_drained(), 0, "no warnings at notice zero");
        assert_eq!(preempt.total_migrated(), 0);
        assert_eq!(preempt.total_proactive_reroutes(), 0);
    }

    #[test]
    fn preemptive_episodes_are_deterministic() {
        let run = || {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 47);
            let scenario = ScenarioConfig::small().build(&topo, 47);
            let ep_cfg = EpisodeConfig::new(47)
                .with_faults(FaultConfig::preempt(0.2, 3))
                .with_amortized_instantiation();
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 30)
        };
        let a = run();
        let b = run();
        let bits = |r: &EpisodeReport| -> Vec<(u64, usize, usize, usize)> {
            r.slots
                .iter()
                .map(|s| {
                    (
                        s.avg_delay_ms.to_bits(),
                        s.drained_count,
                        s.migrated_entries,
                        s.proactive_reroutes,
                    )
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed, same preemptions");
        assert!(
            a.total_drained() > 0,
            "a 0.2 preempt rate over 30 slots must warn at least once"
        );
    }

    /// Slot-by-slot audit of the drain pipeline: drain states stay
    /// consistent with liveness as the policy sees them, and the warm
    /// cache never holds an entry on a down station — kills evict, and
    /// neither `apply` nor drain migration may repopulate one.
    #[test]
    fn preemption_invariants_hold_slot_by_slot() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &cfg, 53);
        let scenario = ScenarioConfig::small().build(&topo, 53);
        let ep_cfg = EpisodeConfig::new(53)
            .with_faults(FaultConfig::preempt(0.3, 2))
            .with_amortized_instantiation();
        let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
        let n = ep.topology().len();
        let mut saw_drain = false;
        for _ in 0..40 {
            let _ = ep.run(&mut GreedyGd::new(), 1);
            for i in 0..n {
                match ep.drain[i] {
                    DrainState::Draining(k) => {
                        saw_drain = true;
                        assert!(k >= 1, "a zero-countdown station must be dead already");
                        assert!(ep.station_up[i], "draining station {i} must be up");
                    }
                    DrainState::Preempted => {
                        assert!(!ep.station_up[i], "preempted station {i} must be down");
                    }
                    DrainState::Returning | DrainState::Up => {}
                }
                if !ep.station_up[i] {
                    assert_eq!(
                        ep.cache.live_at(mec_net::BsId(i)),
                        0,
                        "down station {i} still holds warm cache entries"
                    );
                }
            }
        }
        assert!(saw_drain, "a 0.3 preempt rate must drain at least once");
    }

    /// The robustness headline: with a usable notice window the pipeline
    /// (cache migration + pre-emptive reroute + warning-aware learners)
    /// keeps the learner competitive with — and typically ahead of — the
    /// warning-blind greedy baseline under the same preemption stream.
    #[test]
    fn warned_learner_is_competitive_with_blind_baseline_under_preemption() {
        let horizon = 50;
        let mut blind_total = 0.0;
        let mut warned_total = 0.0;
        for seed in 0..3 {
            let build = || {
                let cfg = NetworkConfig::paper_defaults();
                let topo = gtitm::generate(20, &cfg, 61 + seed);
                let scenario = ScenarioConfig::small().build(&topo, 61 + seed);
                let ep_cfg = EpisodeConfig::new(61 + seed)
                    .with_faults(FaultConfig::preempt(0.15, 3))
                    .with_amortized_instantiation();
                Episode::with_config(topo, cfg, scenario, ep_cfg)
            };
            blind_total += build()
                .run(&mut GreedyGd::new(), horizon)
                .mean_avg_delay_ms();
            warned_total += build()
                .run(
                    &mut OlGd::new(PolicyConfig::default().with_seed(61 + seed)),
                    horizon,
                )
                .mean_avg_delay_ms();
        }
        assert!(
            warned_total < blind_total * 1.05,
            "warned OL_GD {warned_total} should be competitive with blind greedy {blind_total}"
        );
    }

    /// Drain migration pays for itself: with the same policy, seed and
    /// fault stream (migration never touches the fault RNG), a non-zero
    /// migration budget preserves warm entries that a zero budget loses
    /// with the killed station.
    #[test]
    fn drain_migration_preserves_warm_cache_value() {
        let run = |budget: usize| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 67);
            let scenario = ScenarioConfig::small().build(&topo, 67);
            let ep_cfg = EpisodeConfig::new(67)
                .with_faults(FaultConfig::preempt(0.2, 3))
                .with_amortized_instantiation()
                .with_migration_budget(budget);
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 40)
        };
        let with_budget = run(8);
        let without = run(0);
        assert!(with_budget.total_migrated() > 0, "the budget must be used");
        assert_eq!(without.total_migrated(), 0, "budget 0 disables migration");
        // Identical decisions and fault streams: only instantiation
        // accounting differs, and keeping entries warm can only help.
        assert!(
            with_budget.mean_avg_delay_ms() <= without.mean_avg_delay_ms() * 1.02,
            "migration should not cost delay: {} vs {}",
            with_budget.mean_avg_delay_ms(),
            without.mean_avg_delay_ms()
        );
        assert_eq!(
            with_budget.total_rerouted(),
            without.total_rerouted(),
            "migration must not perturb the fault stream"
        );
    }

    /// Satellite pin for the drain edge case PR 8 left untested at the
    /// episode level: when *every* candidate target is itself draining
    /// or down (preempt rate 1 warns all live stations at once), the
    /// drain pass finds no alive non-draining station, migrates
    /// nothing, and the episode completes gracefully — entries die
    /// with their stations instead of leaking onto doomed ones.
    #[test]
    fn drain_with_no_alive_target_migrates_nothing() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(6, &cfg, 71);
        let scenario = ScenarioConfig::small().build(&topo, 71);
        let ep_cfg = EpisodeConfig::new(71)
            .with_faults(FaultConfig::preempt(1.0, 3))
            .with_amortized_instantiation();
        let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
        let report = ep.run(&mut GreedyGd::new(), 12);
        assert!(
            report.total_drained() > 0,
            "rate-1 preemption must warn every live station"
        );
        assert_eq!(
            report.total_migrated(),
            0,
            "with every station draining there is never a migration target"
        );
        for s in &report.slots {
            assert!(s.avg_delay_ms.is_finite() && s.avg_delay_ms >= 0.0);
        }
    }

    /// Tentpole golden: the queue core in equivalence mode (zero
    /// service time, infinite waiting rooms) reproduces the
    /// slot-synchronous path bit for bit — the *entire* serialized
    /// report, sojourn fields included, is byte-identical to a run
    /// with no queue layer at all, with and without faults.
    #[test]
    fn zero_service_queue_episode_matches_slot_synchronous_bit_for_bit() {
        let run = |queue: Option<QueueConfig>, faults: FaultConfig| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(20, &cfg, 73);
            let scenario = ScenarioConfig::small().build(&topo, 73);
            let mut ep_cfg = EpisodeConfig::new(73).with_amortized_instantiation();
            if faults.is_enabled() {
                ep_cfg = ep_cfg.with_faults(faults);
            }
            if let Some(q) = queue {
                ep_cfg = ep_cfg.with_queue(q);
            }
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 15);
            // decide_us is the one wall-clock (non-deterministic) field.
            lexcache_obs::json::to_string(&report.with_zeroed_timings()).unwrap()
        };
        for faults in [FaultConfig::none(), FaultConfig::preempt(0.2, 3)] {
            let plain = run(None, faults);
            let equivalent = run(Some(QueueConfig::equivalence()), faults);
            assert_eq!(
                plain,
                equivalent,
                "equivalence-mode queue must be byte-invisible (faults: {})",
                faults.is_enabled()
            );
        }
    }

    #[test]
    fn queued_episodes_are_deterministic() {
        let run = || {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 79);
            let scenario = ScenarioConfig::small().build(&topo, 79);
            let ep_cfg = EpisodeConfig::new(79)
                .with_faults(FaultConfig::intensity(0.1))
                .with_queue(QueueConfig::open_loop(0.95));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 12)
        };
        let (a, b) = (run(), run());
        let bits = |r: &EpisodeReport| -> Vec<(u64, u64, usize)> {
            r.slots
                .iter()
                .map(|s| {
                    (
                        s.p50_sojourn_ms.to_bits(),
                        s.p99_sojourn_ms.to_bits(),
                        s.queue_dropped_count,
                    )
                })
                .collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed, same sojourns");
        assert!(
            a.slots.iter().any(|s| s.p99_sojourn_ms > 0.0),
            "a loaded queue must measure non-zero sojourns"
        );
    }

    /// A lossless queue is pure measurement: with infinite waiting
    /// rooms and no resilience knobs nothing is ever dropped or shed,
    /// so enabling the layer at any load leaves the paper's delay
    /// proxy (and every fault metric) untouched — it draws from its
    /// own hash stream and the loss penalty never fires.
    #[test]
    fn queue_layer_never_perturbs_the_delay_proxy() {
        let run = |queue: Option<QueueConfig>| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 83);
            let scenario = ScenarioConfig::small().build(&topo, 83);
            let mut ep_cfg = EpisodeConfig::new(83).with_faults(FaultConfig::intensity(0.1));
            if let Some(q) = queue {
                ep_cfg = ep_cfg.with_queue(q);
            }
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 10)
        };
        let plain = run(None);
        let queued = run(Some(QueueConfig::open_loop(1.1)));
        let bits = |r: &EpisodeReport| -> Vec<(u64, usize, usize)> {
            r.slots
                .iter()
                .map(|s| (s.avg_delay_ms.to_bits(), s.remote_count, s.rerouted_count))
                .collect()
        };
        assert_eq!(bits(&plain), bits(&queued));
    }

    /// The regime the paper cannot express: past saturation the open-
    /// loop backlog compounds, so tail sojourns grow across the
    /// horizon and dwarf the sub-critical run's.
    #[test]
    fn overload_grows_the_sojourn_tail() {
        let run = |rho: f64| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 89);
            let scenario = ScenarioConfig::small().build(&topo, 89);
            let ep_cfg = EpisodeConfig::new(89).with_queue(QueueConfig::open_loop(rho));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 15)
        };
        let calm = run(0.3);
        let overloaded = run(1.2);
        for r in [&calm, &overloaded] {
            for s in &r.slots {
                assert!(s.p99_sojourn_ms.is_finite() && s.p99_sojourn_ms >= s.p50_sojourn_ms);
            }
        }
        assert!(
            overloaded.mean_p99_sojourn_ms() > calm.mean_p99_sojourn_ms(),
            "ρ=1.2 tail {} must exceed ρ=0.3 tail {}",
            overloaded.mean_p99_sojourn_ms(),
            calm.mean_p99_sojourn_ms()
        );
        // Collapse signature: the backlog compounds, so the worst slot
        // tail dwarfs the first slot's (service scaling alone is 4×;
        // demand 10× guards against burst-shape luck).
        let first = overloaded.slots.first().unwrap().p99_sojourn_ms;
        let worst = overloaded.max_p99_sojourn_ms();
        assert!(
            worst > first,
            "open-loop overload must grow the tail across the horizon: {worst} vs {first}"
        );
    }

    #[test]
    fn finite_waiting_rooms_drop_and_count() {
        let run = |cap: usize| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(10, &cfg, 97);
            let scenario = ScenarioConfig::small().with_requests(30).build(&topo, 97);
            let ep_cfg = EpisodeConfig::new(97)
                .with_queue(QueueConfig::open_loop(1.2).with_queue_capacity(cap));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 12)
        };
        let bounded = run(2);
        assert!(
            bounded.total_queue_dropped() > 0,
            "2-deep waiting rooms at ρ=1.2 must overflow"
        );
        let unbounded = run(usize::MAX);
        assert_eq!(
            unbounded.total_queue_dropped(),
            0,
            "infinite waiting rooms never drop"
        );
    }

    /// Tentpole golden: a [`ResilConfig::disabled`] queue constructs no
    /// resilience runtime at all, so the *entire* serialized report —
    /// sojourns, drops, every new counter — is byte-identical to the
    /// same queue config without the resilience field, faults included.
    #[test]
    fn disabled_resilience_episode_is_byte_invisible() {
        use lexcache_queue::ResilConfig;
        let run = |resil: Option<ResilConfig>| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 79);
            let scenario = ScenarioConfig::small().build(&topo, 79);
            let mut q = QueueConfig::open_loop(0.95);
            if let Some(r) = resil {
                q = q.with_resilience(r);
            }
            let ep_cfg = EpisodeConfig::new(79)
                .with_faults(FaultConfig::intensity(0.1))
                .with_queue(q);
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 12);
            lexcache_obs::json::to_string(&report.with_zeroed_timings()).unwrap()
        };
        assert_eq!(
            run(None),
            run(Some(ResilConfig::disabled())),
            "a disabled resilience layer must be byte-invisible"
        );
    }

    /// Satellite bugfix pin: waiting-room drops now charge the cost
    /// objective — each lost request pays its demand at the realized
    /// remote unit delay, consistent with the fault path's
    /// `dropped_count` — while lossless slots stay bit-identical to
    /// the infinite-room run.
    #[test]
    fn queue_drops_charge_the_cost_objective() {
        let run = |cap: usize| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(10, &cfg, 97);
            let scenario = ScenarioConfig::small().with_requests(30).build(&topo, 97);
            let ep_cfg = EpisodeConfig::new(97)
                .with_queue(QueueConfig::open_loop(1.2).with_queue_capacity(cap));
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 12)
        };
        let bounded = run(2);
        let unbounded = run(usize::MAX);
        assert!(bounded.total_queue_dropped() > 0, "cap 2 at ρ=1.2 drops");
        // Greedy is static, so the two runs share every decision and
        // every realization; only the loss penalty can differ.
        for (b, u) in bounded.slots.iter().zip(&unbounded.slots) {
            if b.queue_dropped_count == 0 {
                assert_eq!(
                    b.avg_delay_ms.to_bits(),
                    u.avg_delay_ms.to_bits(),
                    "slot {} lost nothing and must stay bit-identical",
                    b.slot
                );
            } else {
                assert!(
                    b.avg_delay_ms > u.avg_delay_ms,
                    "slot {} dropped {} jobs and must pay for them",
                    b.slot,
                    b.queue_dropped_count
                );
            }
        }
    }

    /// Deadlines, deterministic retries and the loss penalty are all
    /// hash-stream driven: two identical overloaded runs serialize to
    /// the same bytes, and the retry stream genuinely fired.
    #[test]
    fn resilient_episodes_are_deterministic() {
        use lexcache_queue::{Discipline, ResilConfig};
        let run = || {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 103);
            let scenario = ScenarioConfig::small().with_requests(60).build(&topo, 103);
            let q = QueueConfig::open_loop(1.1)
                .with_discipline(Discipline::ProcessorSharing)
                .with_resilience(
                    ResilConfig::slo(300.0)
                        .without_breakers()
                        .without_admission(),
                );
            let ep_cfg = EpisodeConfig::new(103).with_queue(q);
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 15)
        };
        let (a, b) = (run(), run());
        assert_eq!(
            lexcache_obs::json::to_string(&a.with_zeroed_timings()).unwrap(),
            lexcache_obs::json::to_string(&b.with_zeroed_timings()).unwrap(),
            "same seed, same misses, same retries"
        );
        assert!(
            a.total_deadline_missed() > 0,
            "ρ=1.1 under PS must miss a 300 ms deadline at least once"
        );
        assert!(
            a.total_retries_attempted() > 0,
            "misses with a retry budget must re-enqueue"
        );
    }

    /// The resilience headline (tentpole acceptance): at ρ = 1.1 under
    /// processor sharing, turning breakers + admission on over the same
    /// deadline/retry base strictly lowers the deadline-miss rate and
    /// the sojourn tail while completing *more* work — shedding the
    /// hopeless excess early (and steering the LP off tripped stations)
    /// beats burning shared capacity on jobs that die at their deadline
    /// anyway.
    #[test]
    fn breakers_and_admission_degrade_gracefully_at_overload() {
        use lexcache_queue::{Discipline, ResilConfig};
        let run = |resil: ResilConfig| {
            let cfg = NetworkConfig::paper_defaults();
            let topo = gtitm::generate(15, &cfg, 101);
            let scenario = ScenarioConfig::small().with_requests(60).build(&topo, 101);
            let q = QueueConfig::open_loop(1.1)
                .with_discipline(Discipline::ProcessorSharing)
                .with_resilience(resil);
            let ep_cfg = EpisodeConfig::new(101).with_queue(q);
            let mut ep = Episode::with_config(topo, cfg, scenario, ep_cfg);
            ep.run(&mut OlGd::new(PolicyConfig::default()), 30)
        };
        let base = run(ResilConfig::slo(300.0)
            .without_breakers()
            .without_admission());
        let on = run(ResilConfig::slo(300.0).with_admission(3, 0));
        assert!(
            base.total_deadline_missed() > 0,
            "the unprotected run must actually suffer"
        );
        assert!(
            on.total_shed() > 0,
            "overload must trip the shedding machinery"
        );
        assert!(
            on.total_breaker_open_slots() > 0,
            "sustained overload must trip a breaker"
        );
        assert!(
            on.deadline_miss_rate() < base.deadline_miss_rate(),
            "breakers+admission must cut the miss rate: {} vs {}",
            on.deadline_miss_rate(),
            base.deadline_miss_rate()
        );
        assert!(
            on.mean_p99_sojourn_ms() < base.mean_p99_sojourn_ms(),
            "breakers+admission must cut the tail: {} vs {}",
            on.mean_p99_sojourn_ms(),
            base.mean_p99_sojourn_ms()
        );
        assert!(
            on.total_queue_completed() > base.total_queue_completed(),
            "goodput must rise when hopeless work is shed: {} vs {}",
            on.total_queue_completed(),
            base.total_queue_completed()
        );
    }
}
