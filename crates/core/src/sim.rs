//! The slot-by-slot simulation engine.

use crate::lowering::{build_caching_lp, TransferCosts};
use crate::metrics::{EpisodeReport, SlotMetrics};
use crate::policy::{CachingPolicy, SlotContext, SlotFeedback};
use lexcache_obs as obs;
use mec_net::delay::{CongestionDelay, DelayProcess, RemoteDcDelay, UniformTierDelay};
use mec_net::{NetworkConfig, Topology};
use mec_workload::demand::DemandProcess as _;
use mec_workload::Scenario;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which hidden unit-delay process drives the episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModelKind {
    /// IID uniform per-slot delays within each tier's range.
    Uniform,
    /// Congestion-modulated delays (two-state Markov chain per station).
    /// This is the default: temporally correlated congestion is the
    /// uncertainty that makes online learning beat static priors.
    Congestion {
        /// P(normal → congested) per slot.
        p_enter: f64,
        /// P(congested → normal) per slot.
        p_exit: f64,
        /// Delay multiplier while congested.
        factor: f64,
    },
}

impl DelayModelKind {
    /// The default congestion parameters used across the benches.
    pub fn default_congestion() -> Self {
        DelayModelKind::Congestion {
            p_enter: 0.10,
            p_exit: 0.25,
            factor: 3.0,
        }
    }
}

/// Episode-level knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// The hidden delay process.
    pub delay_model: DelayModelKind,
    /// Whether to hand the true demand vector to the policy
    /// (`given_demands`): `true` for the §IV `*_GD` regime, `false` for
    /// the §V prediction regime.
    pub reveal_demands: bool,
    /// Whether to solve the clairvoyant LP each slot for regret curves
    /// (roughly doubles runtime).
    pub track_regret: bool,
    /// `false` (default): the paper's per-slot accounting — every
    /// (service, station) instance used in a slot pays `d_ins`.
    /// `true`: instances stay warm across slots ([`crate::CacheState`])
    /// and only newly instantiated ones pay.
    pub amortize_instantiation: bool,
    /// Endogenous load-driven congestion: the realized unit delay of a
    /// station is additionally scaled by `1 + load_sensitivity ·
    /// (load/capacity)` — stations slow down *because* traffic piles
    /// onto them, the bottleneck mechanism of real topologies. `0`
    /// (default) disables it. Both the score and the bandit
    /// observations see the load-scaled delay, so learners can discover
    /// and avoid crowded stations.
    pub load_sensitivity: f64,
    /// Environment seed (delay realizations).
    pub seed: u64,
}

impl EpisodeConfig {
    /// Defaults: congestion delays, demands revealed, no regret tracking.
    pub fn new(seed: u64) -> Self {
        EpisodeConfig {
            delay_model: DelayModelKind::default_congestion(),
            reveal_demands: true,
            track_regret: false,
            amortize_instantiation: false,
            load_sensitivity: 0.0,
            seed,
        }
    }

    /// Switches to the unknown-demand regime.
    pub fn hidden_demands(mut self) -> Self {
        self.reveal_demands = false;
        self
    }

    /// Enables clairvoyant-regret tracking.
    pub fn with_regret(mut self) -> Self {
        self.track_regret = true;
        self
    }

    /// Overrides the delay model.
    pub fn with_delay_model(mut self, model: DelayModelKind) -> Self {
        self.delay_model = model;
        self
    }

    /// Switches to warm-cache instantiation accounting.
    pub fn with_amortized_instantiation(mut self) -> Self {
        self.amortize_instantiation = true;
        self
    }

    /// Enables endogenous load-driven congestion.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is negative.
    pub fn with_load_sensitivity(mut self, sensitivity: f64) -> Self {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        self.load_sensitivity = sensitivity;
        self
    }
}

enum DelayModel {
    Uniform(UniformTierDelay),
    Congestion(CongestionDelay),
}

impl DelayModel {
    fn as_dyn(&self) -> &dyn DelayProcess {
        match self {
            DelayModel::Uniform(p) => p,
            DelayModel::Congestion(p) => p,
        }
    }

    fn advance(&mut self) {
        match self {
            DelayModel::Uniform(p) => p.advance(),
            DelayModel::Congestion(p) => p.advance(),
        }
    }
}

/// A runnable simulation episode: one topology, one workload scenario,
/// one hidden delay realization.
///
/// Reuse the episode across policies by constructing one per policy with
/// the same seed — the environment randomness is identical, so
/// comparisons are paired.
pub struct Episode {
    topo: Topology,
    net_cfg: NetworkConfig,
    scenario: Scenario,
    transfer: TransferCosts,
    prior_delay: Vec<f64>,
    delay: DelayModel,
    remote: RemoteDcDelay,
    cfg: EpisodeConfig,
    cache: crate::CacheState,
}

impl Episode {
    /// Creates an episode with [`EpisodeConfig::new`] defaults.
    pub fn new(topo: Topology, net_cfg: NetworkConfig, scenario: Scenario, seed: u64) -> Self {
        Self::with_config(topo, net_cfg, scenario, EpisodeConfig::new(seed))
    }

    /// Creates an episode with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was built for a different topology size.
    pub fn with_config(
        topo: Topology,
        net_cfg: NetworkConfig,
        scenario: Scenario,
        cfg: EpisodeConfig,
    ) -> Self {
        for r in scenario.requests() {
            assert!(
                r.registered_bs().index() < topo.len(),
                "scenario was built for a different topology"
            );
        }
        let transfer = TransferCosts::compute(&topo, &scenario);
        let prior_delay: Vec<f64> = topo
            .stations()
            .iter()
            .map(|bs| net_cfg.tier(bs.tier()).unit_delay_ms.mid())
            .collect();
        let delay = match cfg.delay_model {
            DelayModelKind::Uniform => {
                DelayModel::Uniform(UniformTierDelay::new(&topo, &net_cfg, cfg.seed))
            }
            DelayModelKind::Congestion {
                p_enter,
                p_exit,
                factor,
            } => DelayModel::Congestion(CongestionDelay::new(
                &topo, &net_cfg, p_enter, p_exit, factor, cfg.seed,
            )),
        };
        let remote = RemoteDcDelay::new(&net_cfg, cfg.seed);
        let cache = crate::CacheState::new(scenario.services().len(), topo.len());
        Episode {
            topo,
            net_cfg,
            scenario,
            transfer,
            prior_delay,
            delay,
            remote,
            cfg,
            cache,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The per-episode transfer-cost matrix.
    pub fn transfer(&self) -> &TransferCosts {
        &self.transfer
    }

    /// Processing + transfer part of objective (3) on an integral
    /// assignment under realized delays, with queueing slowdown on
    /// overloaded stations: a station serving `load > capacity` data
    /// units multiplies its unit delay by `(load / capacity)²` — the
    /// superlinear blow-up of queueing delay near saturation. Also
    /// returns the distinct (service, station) instances used.
    fn score_processing(
        &self,
        assignment: &crate::Assignment,
        demands: &[f64],
        realized: &[f64],
    ) -> (f64, Vec<(usize, usize)>) {
        let n = self.topo.len();
        let c_unit = self.scenario.c_unit_mhz();
        let mut load = vec![0.0; n];
        for (l, t) in assignment.targets().iter().enumerate() {
            if let crate::Target::Edge(bs) = t {
                load[bs.index()] += demands[l];
            }
        }
        let overload: Vec<f64> = (0..n)
            .map(|i| {
                let cap = self.topo.stations()[i].capacity_mhz() / c_unit;
                let ratio = (load[i] / cap).max(1.0);
                ratio * ratio
            })
            .collect();
        let mut total = 0.0;
        let mut used = std::collections::BTreeSet::new();
        for (l, t) in assignment.targets().iter().enumerate() {
            match t {
                crate::Target::Edge(bs) => {
                    let i = bs.index();
                    total += demands[l] * (realized[i] * overload[i] + self.transfer.get(l, *bs));
                    let k = self.scenario.requests()[l].service().index();
                    used.insert((k, i));
                }
                crate::Target::Remote => {
                    total += demands[l] * self.remote.unit_delay();
                }
            }
        }
        (total, used.into_iter().collect())
    }

    /// Runs `policy` for `horizon` slots and collects metrics.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or the policy returns an assignment of
    /// the wrong size.
    pub fn run(&mut self, policy: &mut dyn CachingPolicy, horizon: usize) -> EpisodeReport {
        assert!(horizon > 0, "horizon must be positive");
        let n = self.topo.len();
        let n_requests = self.scenario.requests().len();
        let request_cells: Vec<usize> = self
            .scenario
            .requests()
            .iter()
            .map(|r| r.location_cell())
            .collect();
        let mut slots = Vec::with_capacity(horizon);

        for slot in 1..=horizon {
            obs::gauge("sim/slot", slot as f64);
            // The environment reveals this slot's demands and (hidden)
            // delays.
            let demands = {
                let _span = obs::span("sim/demand");
                self.scenario.demand_mut().advance();
                let demands = self.scenario.demand().demands();
                self.delay.advance();
                self.remote.advance();
                demands
            };

            let ctx = {
                let _span = obs::span("sim/context");
                SlotContext {
                    slot,
                    topo: &self.topo,
                    scenario: &self.scenario,
                    given_demands: self.cfg.reveal_demands.then_some(demands.as_slice()),
                    transfer: &self.transfer,
                    prior_delay: &self.prior_delay,
                    remote_delay: self.net_cfg.remote_dc_delay_ms.mid(),
                    net_cfg: &self.net_cfg,
                }
            };
            let decide_span = obs::span("sim/decide");
            let started = Instant::now();
            let assignment = policy.decide(&ctx);
            let decide_us = started.elapsed().as_secs_f64() * 1e6;
            drop(decide_span);
            assert_eq!(
                assignment.len(),
                n_requests,
                "assignment must cover every request"
            );

            // Score against the realized delays. A station whose
            // realized load exceeds its capacity queues: its unit delay
            // scales with the overload ratio. Policies that under-predict
            // bursty demand therefore pay for it — the physical effect
            // the paper's bursty-demand story hinges on. The clairvoyant
            // optimum below respects capacities exactly and never
            // overloads.
            let realize_span = obs::span("sim/realize");
            let mut realized: Vec<f64> = (0..n)
                .map(|i| self.delay.as_dyn().unit_delay(mec_net::BsId(i)))
                .collect();
            if self.cfg.load_sensitivity > 0.0 {
                // Endogenous congestion: this slot's utilization slows
                // the stations carrying it.
                let c_unit = self.scenario.c_unit_mhz();
                let mut load = vec![0.0; n];
                for (l, t) in assignment.targets().iter().enumerate() {
                    if let crate::Target::Edge(bs) = t {
                        load[bs.index()] += demands[l];
                    }
                }
                for (i, r) in realized.iter_mut().enumerate() {
                    let cap = self.topo.stations()[i].capacity_mhz() / c_unit;
                    *r *= 1.0 + self.cfg.load_sensitivity * (load[i] / cap);
                }
            }
            let (processing, used_instances) =
                self.score_processing(&assignment, &demands, &realized);
            drop(realize_span);
            let inst_cost = {
                let _span = obs::span("sim/cache_apply");
                obs::counter("cache/instances_used", used_instances.len() as u64);
                if self.cfg.amortize_instantiation {
                    self.cache
                        .apply(slot, &used_instances, self.scenario.instantiation())
                } else {
                    used_instances
                        .iter()
                        .map(|&(k, i)| self.scenario.instantiation().get(mec_net::BsId(i), k))
                        .sum()
                }
            };
            let avg_delay_ms = (processing + inst_cost) / n_requests as f64;
            // Clairvoyant reference: the processing-delay LP optimum
            // under the realized delays and true demands. The
            // instantiation term is dropped from the reference — a
            // fractional solution spreads requests over many partial
            // instances, so its summed instantiation cost is *not* a
            // lower bound on integral assignments, while the pure
            // processing optimum is.
            let optimal_avg_delay_ms = if self.cfg.track_regret {
                let _span = obs::span("sim/regret_lp");
                let true_lp = build_caching_lp(
                    &self.topo,
                    &self.scenario,
                    &self.transfer,
                    &realized,
                    &demands,
                    self.remote.unit_delay(),
                );
                true_lp.solve_fast().ok().map(|sol| {
                    let zero_y = vec![vec![0.0; true_lp.n_stations()]; true_lp.n_services()];
                    true_lp.objective_of(&sol.x, &zero_y)
                })
            } else {
                None
            };

            // Bandit feedback: only stations actually played reveal their
            // realized delay.
            let feedback_span = obs::span("sim/feedback");
            let observed: Vec<(usize, f64)> = assignment
                .stations_used()
                .into_iter()
                .map(|bs| (bs.index(), realized[bs.index()]))
                .collect();
            let feedback = SlotFeedback {
                slot,
                observed_unit_delay: &observed,
                realized_demands: &demands,
                request_cells: &request_cells,
            };
            policy.observe(&feedback);
            obs::counter("sim/remote_requests", assignment.remote_count() as u64);
            drop(feedback_span);

            slots.push(SlotMetrics {
                slot,
                avg_delay_ms,
                decide_us,
                optimal_avg_delay_ms,
                remote_count: assignment.remote_count(),
            });
        }
        EpisodeReport {
            policy: policy.name().to_string(),
            topology: self.topo.name().to_string(),
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyGd, OlGd, OlReg, PriGd};
    use crate::assignment::Target;
    use crate::policy::PolicyConfig;
    use mec_net::topology::gtitm;
    use mec_workload::ScenarioConfig;

    fn episode(seed: u64) -> Episode {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(20, &cfg, seed);
        let scenario = ScenarioConfig::small().build(&topo, seed);
        Episode::new(topo, cfg, scenario, seed)
    }

    #[test]
    fn ol_gd_runs_and_reports_every_slot() {
        let mut ep = episode(1);
        let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 12);
        assert_eq!(report.slots.len(), 12);
        assert_eq!(report.policy, "OL_GD");
        for s in &report.slots {
            assert!(s.avg_delay_ms > 0.0 && s.avg_delay_ms.is_finite());
            assert!(s.decide_us >= 0.0);
            assert_eq!(s.optimal_avg_delay_ms, None);
        }
    }

    #[test]
    fn baselines_run() {
        for (policy, name) in [
            (
                Box::new(GreedyGd::new()) as Box<dyn CachingPolicy>,
                "Greedy_GD",
            ),
            (Box::new(PriGd::new()) as Box<dyn CachingPolicy>, "Pri_GD"),
        ] {
            let mut policy = policy;
            let mut ep = episode(2);
            let report = ep.run(policy.as_mut(), 5);
            assert_eq!(report.policy, name);
            assert!(report.mean_avg_delay_ms() > 0.0);
        }
    }

    #[test]
    fn regret_tracking_produces_optimum_per_slot() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &cfg, 3);
        let scenario = ScenarioConfig::small().build(&topo, 3);
        let mut ep = Episode::with_config(topo, cfg, scenario, EpisodeConfig::new(3).with_regret());
        let report = ep.run(&mut OlGd::new(PolicyConfig::default()), 6);
        for s in &report.slots {
            let opt = s.optimal_avg_delay_ms.expect("tracked");
            // The clairvoyant fractional optimum can never beat an
            // integral assignment by a negative margin.
            assert!(
                s.avg_delay_ms >= opt - 1e-6,
                "achieved {} below optimum {opt}",
                s.avg_delay_ms
            );
        }
        assert!(report.cumulative_regret_ms().unwrap() >= -1e-6);
    }

    #[test]
    fn paired_environments_are_identical_across_policies() {
        // Two episodes with the same seed expose the same demand/delay
        // realizations: a policy that ignores feedback sees identical
        // costs in both runs.
        let mut a = episode(7);
        let mut b = episode(7);
        let ra = a.run(&mut GreedyGd::new(), 8);
        let rb = b.run(&mut GreedyGd::new(), 8);
        assert_eq!(ra.delay_series(), rb.delay_series());
    }

    #[test]
    fn learning_beats_static_greedy_under_congestion() {
        // Run long enough for the arms to converge; the learner should
        // be at least competitive with (and typically beat) the static
        // prior-driven greedy under congested delays.
        let horizon = 60;
        let mut greedy_total = 0.0;
        let mut ol_total = 0.0;
        for seed in 0..3 {
            let mut e1 = episode(seed);
            greedy_total += e1.run(&mut GreedyGd::new(), horizon).mean_avg_delay_ms();
            let mut e2 = episode(seed);
            ol_total += e2
                .run(
                    &mut OlGd::new(PolicyConfig::default().with_seed(seed)),
                    horizon,
                )
                .mean_avg_delay_ms();
        }
        assert!(
            ol_total < greedy_total * 1.05,
            "OL_GD {ol_total} should be competitive with greedy {greedy_total}"
        );
    }

    #[test]
    fn hidden_demand_regime_runs_ol_reg() {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &cfg, 5);
        let scenario = ScenarioConfig::small()
            .with_demand(mec_workload::scenario::DemandKind::Flash(
                mec_workload::demand::FlashCrowdConfig::default(),
            ))
            .build(&topo, 5);
        let mut ep =
            Episode::with_config(topo, cfg, scenario, EpisodeConfig::new(5).hidden_demands());
        let report = ep.run(&mut OlReg::new(PolicyConfig::default(), 3), 10);
        assert_eq!(report.slots.len(), 10);
        assert!(report.mean_avg_delay_ms() > 0.0);
    }

    #[test]
    fn amortized_accounting_is_cheaper_and_rank_preserving() {
        let cfg = NetworkConfig::paper_defaults();
        let run = |amortize: bool, seed: u64| {
            let topo = gtitm::generate(20, &cfg, seed);
            let scenario = ScenarioConfig::small().build(&topo, seed);
            let mut ep_cfg = EpisodeConfig::new(seed);
            if amortize {
                ep_cfg = ep_cfg.with_amortized_instantiation();
            }
            let mut ep = Episode::with_config(topo, cfg.clone(), scenario, ep_cfg);
            ep.run(&mut GreedyGd::new(), 12).mean_avg_delay_ms()
        };
        for seed in 0..3 {
            let per_slot = run(false, seed);
            let amortized = run(true, seed);
            assert!(
                amortized < per_slot,
                "warm cache must reduce total delay: {amortized} vs {per_slot}"
            );
        }
    }

    #[test]
    fn load_sensitivity_raises_delays_and_rewards_spreading() {
        let cfg = NetworkConfig::paper_defaults();
        let run = |sensitivity: f64| {
            let topo = gtitm::generate(20, &cfg, 5);
            let scenario = ScenarioConfig::small().with_requests(25).build(&topo, 5);
            let mut ep = Episode::with_config(
                topo,
                cfg.clone(),
                scenario,
                EpisodeConfig::new(5).with_load_sensitivity(sensitivity),
            );
            ep.run(&mut GreedyGd::new(), 10).mean_avg_delay_ms()
        };
        let base = run(0.0);
        let loaded = run(2.0);
        assert!(
            loaded > base,
            "load-driven congestion must raise delays: {loaded} vs {base}"
        );
    }

    #[test]
    #[should_panic(expected = "sensitivity must be non-negative")]
    fn negative_sensitivity_rejected() {
        let _ = EpisodeConfig::new(1).with_load_sensitivity(-1.0);
    }

    #[test]
    fn estimator_variants_run_end_to_end() {
        use crate::policy::EstimatorKind;
        for estimator in [
            EstimatorKind::SampleMean,
            EstimatorKind::Windowed { window: 5 },
            EstimatorKind::Discounted { gamma: 0.8 },
        ] {
            let mut ep = episode(11);
            let report = ep.run(
                &mut OlGd::new(PolicyConfig::default().with_estimator(estimator)),
                8,
            );
            assert_eq!(report.slots.len(), 8, "{estimator:?}");
            assert!(report.mean_avg_delay_ms() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let mut ep = episode(1);
        let _ = ep.run(&mut GreedyGd::new(), 0);
    }

    #[test]
    fn capacity_is_never_violated() {
        // Use a scenario with heavy demand against a tiny network to
        // force the repair path, then audit loads per station.
        struct Audit<P>(P, Vec<Vec<f64>>);
        impl<P: CachingPolicy> CachingPolicy for Audit<P> {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn decide(&mut self, ctx: &SlotContext<'_>) -> crate::Assignment {
                let a = self.0.decide(ctx);
                let demands = ctx.given_demands.unwrap();
                let mut load = vec![0.0; ctx.topo.len()];
                for (l, t) in a.targets().iter().enumerate() {
                    if let Target::Edge(bs) = t {
                        load[bs.index()] += demands[l];
                    }
                }
                self.1.push(load);
                a
            }
            fn observe(&mut self, fb: &SlotFeedback<'_>) {
                self.0.observe(fb);
            }
        }
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(8, &cfg, 9);
        let scenario = ScenarioConfig::small().with_requests(40).build(&topo, 9);
        let caps: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| b.capacity_mhz() / scenario.c_unit_mhz())
            .collect();
        let mut audit = Audit(OlGd::new(PolicyConfig::default()), Vec::new());
        let mut ep = Episode::new(topo, cfg, scenario, 9);
        let _ = ep.run(&mut audit, 10);
        for loads in &audit.1 {
            for (i, &l) in loads.iter().enumerate() {
                assert!(l <= caps[i] + 1e-6, "station {i} overloaded: {l}");
            }
        }
    }
}
