//! Cross-slot cache state: which service instances are live where.
//!
//! The paper's per-slot ILP (3) charges the instantiation delay
//! `d_ins(i,k)` for every instance used in the slot, as if caches were
//! rebuilt from scratch each slot. Real deployments keep instances warm:
//! an instance instantiated in slot `t` serves slot `t+1` for free until
//! it is evicted. This module models that, and
//! [`crate::EpisodeConfig::amortize_instantiation`] switches the
//! simulator's scoring between the two accounting modes (compared by the
//! `ablation_cache` bench).

use lexcache_obs as obs;
use mec_net::delay::InstantiationDelays;
use mec_net::BsId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Live service instances across slots, with idle-eviction and an
/// optional per-station instance limit (LRU within the station).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheState {
    n_services: usize,
    n_stations: usize,
    /// `(service, station) → slot of last use`. A `BTreeMap` so that
    /// iteration (eviction scans, serialization) follows the fixed
    /// `(service, station)` order rather than hasher state — the cache
    /// is on the per-slot decision path (lexlint LX03).
    last_used: BTreeMap<(usize, usize), usize>,
    /// Evict instances idle for more than this many slots (`None` =
    /// never).
    idle_ttl: Option<usize>,
    /// At most this many live instances per station (`None` =
    /// unbounded).
    per_station_limit: Option<usize>,
}

impl CacheState {
    /// An empty cache with no eviction.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_services: usize, n_stations: usize) -> Self {
        assert!(n_services > 0, "need at least one service");
        assert!(n_stations > 0, "need at least one station");
        CacheState {
            n_services,
            n_stations,
            last_used: BTreeMap::new(),
            idle_ttl: None,
            per_station_limit: None,
        }
    }

    /// Evicts instances idle for more than `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn with_idle_ttl(mut self, slots: usize) -> Self {
        assert!(slots > 0, "TTL must be positive");
        self.idle_ttl = Some(slots);
        self
    }

    /// Caps live instances per station, evicting least-recently-used
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_per_station_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "limit must be positive");
        self.per_station_limit = Some(limit);
        self
    }

    /// Whether service `k` currently has a live instance at `bs`.
    pub fn is_cached(&self, service: usize, bs: BsId) -> bool {
        self.last_used.contains_key(&(service, bs.index()))
    }

    /// Number of live instances.
    pub fn live_count(&self) -> usize {
        self.last_used.len()
    }

    /// Live instances at one station.
    pub fn live_at(&self, bs: BsId) -> usize {
        self.last_used
            .keys()
            .filter(|&&(_, i)| i == bs.index())
            .count()
    }

    /// Applies one slot's usage: instances in `used` that are not live
    /// pay their instantiation delay; all used instances are touched;
    /// idle/over-limit instances are evicted afterwards. Returns the
    /// total instantiation delay incurred this slot, in ms.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `inst` has mismatched
    /// dimensions.
    pub fn apply(
        &mut self,
        slot: usize,
        used: &[(usize, usize)],
        inst: &InstantiationDelays,
    ) -> f64 {
        assert_eq!(inst.n_services(), self.n_services, "service count");
        assert!(
            inst.n_stations() >= self.n_stations,
            "instantiation table too small"
        );
        let mut cost = 0.0;
        for &(k, i) in used {
            assert!(k < self.n_services, "service out of range");
            assert!(i < self.n_stations, "station out of range");
            if self.last_used.insert((k, i), slot).is_none() {
                cost += inst.get(BsId(i), k);
                obs::counter("cache/insert", 1);
            } else {
                obs::counter("cache/hit", 1);
            }
        }
        // Idle eviction.
        if let Some(ttl) = self.idle_ttl {
            let before = self.last_used.len();
            self.last_used
                .retain(|_, &mut last| slot.saturating_sub(last) <= ttl);
            obs::counter("cache/evict_ttl", (before - self.last_used.len()) as u64);
        }
        // Per-station LRU cap. Instances used *this* slot are never
        // evicted (limit permitting the used set is assumed).
        if let Some(limit) = self.per_station_limit {
            for station in 0..self.n_stations {
                let mut here: Vec<((usize, usize), usize)> = self
                    .last_used
                    .iter()
                    .filter(|&(&(_, i), _)| i == station)
                    .map(|(&key, &last)| (key, last))
                    .collect();
                if here.len() > limit {
                    // Oldest first; ties broken by service id for
                    // determinism.
                    here.sort_by_key(|&((k, _), last)| (last, k));
                    for &(key, _) in here.iter().take(here.len() - limit) {
                        self.last_used.remove(&key);
                        obs::counter("cache/evict_lru", 1);
                    }
                }
            }
        }
        cost
    }

    /// Evicts every live instance at `bs` — a station outage loses its
    /// warm cloudlet state, so instances there must pay instantiation
    /// again after the station recovers. Returns the number of instances
    /// lost and counts them as `cache/lost_on_failure`.
    pub fn evict_station(&mut self, bs: BsId) -> usize {
        let before = self.last_used.len();
        self.last_used.retain(|&(_, i), _| i != bs.index());
        let lost = before - self.last_used.len();
        obs::counter("cache/lost_on_failure", lost as u64);
        lost
    }

    /// Migrates up to `budget` warm instances from a draining station to
    /// a failover target, most-recently-used first (ties broken by
    /// service id for determinism). Instances whose service is already
    /// warm at `to` are dropped from `from` without consuming budget —
    /// the drain consolidates them, nothing is lost. Entries beyond the
    /// budget stay behind and die with the station. Last-use slots move
    /// with the instance; a later [`apply`](CacheState::apply) enforces
    /// any per-station limit at the target as usual. Returns the number
    /// of instances migrated and counts them as `cache/drained`.
    ///
    /// # Panics
    ///
    /// Panics if either station is out of range or `from == to`.
    pub fn drain_to(&mut self, from: BsId, to: BsId, budget: usize) -> usize {
        assert!(from.index() < self.n_stations, "station out of range");
        assert!(to.index() < self.n_stations, "station out of range");
        assert_ne!(from, to, "cannot drain a station onto itself");
        if budget == 0 {
            return 0;
        }
        let mut here: Vec<((usize, usize), usize)> = self
            .last_used
            .iter()
            .filter(|&(&(_, i), _)| i == from.index())
            .map(|(&key, &last)| (key, last))
            .collect();
        here.sort_by_key(|&((k, _), last)| (std::cmp::Reverse(last), k));
        let mut moved = 0;
        for ((k, _), last) in here {
            if moved == budget {
                break;
            }
            self.last_used.remove(&(k, from.index()));
            if !self.last_used.contains_key(&(k, to.index())) {
                self.last_used.insert((k, to.index()), last);
                moved += 1;
                obs::counter("cache/drained", 1);
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> InstantiationDelays {
        InstantiationDelays::constant(4, 3, 10.0)
    }

    #[test]
    fn first_use_pays_reuse_is_free() {
        let mut cache = CacheState::new(3, 4);
        let cost1 = cache.apply(1, &[(0, 2), (1, 2)], &inst());
        assert_eq!(cost1, 20.0);
        let cost2 = cache.apply(2, &[(0, 2), (1, 2)], &inst());
        assert_eq!(cost2, 0.0, "warm instances are free");
        assert!(cache.is_cached(0, BsId(2)));
        assert_eq!(cache.live_count(), 2);
        assert_eq!(cache.live_at(BsId(2)), 2);
        assert_eq!(cache.live_at(BsId(0)), 0);
    }

    #[test]
    fn idle_ttl_evicts_and_forces_reinstantiation() {
        let mut cache = CacheState::new(3, 4).with_idle_ttl(2);
        let _ = cache.apply(1, &[(0, 0)], &inst());
        // Used at slot 1; still live at slot 3 (idle 2), gone at 4.
        let _ = cache.apply(3, &[(1, 1)], &inst());
        assert!(cache.is_cached(0, BsId(0)));
        let _ = cache.apply(4, &[(1, 1)], &inst());
        assert!(!cache.is_cached(0, BsId(0)), "TTL exceeded");
        let cost = cache.apply(5, &[(0, 0)], &inst());
        assert_eq!(cost, 10.0, "evicted instance pays again");
    }

    #[test]
    fn per_station_limit_evicts_lru() {
        let mut cache = CacheState::new(3, 2).with_per_station_limit(2);
        let _ = cache.apply(1, &[(0, 0)], &inst());
        let _ = cache.apply(2, &[(1, 0)], &inst());
        let _ = cache.apply(3, &[(2, 0)], &inst());
        assert_eq!(cache.live_at(BsId(0)), 2);
        assert!(!cache.is_cached(0, BsId(0)), "oldest evicted");
        assert!(cache.is_cached(1, BsId(0)));
        assert!(cache.is_cached(2, BsId(0)));
    }

    #[test]
    fn limits_are_per_station() {
        let mut cache = CacheState::new(3, 2).with_per_station_limit(1);
        let _ = cache.apply(1, &[(0, 0), (1, 1)], &inst());
        assert_eq!(cache.live_count(), 2, "one per station is fine");
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let mut cache = CacheState::new(3, 2).with_per_station_limit(2);
        let _ = cache.apply(1, &[(0, 0)], &inst());
        let _ = cache.apply(2, &[(1, 0)], &inst());
        let _ = cache.apply(3, &[(0, 0)], &inst()); // refresh service 0
        let _ = cache.apply(4, &[(2, 0)], &inst());
        assert!(cache.is_cached(0, BsId(0)), "recently touched survives");
        assert!(!cache.is_cached(1, BsId(0)), "stale one evicted");
    }

    #[test]
    fn station_eviction_loses_warm_instances() {
        let mut cache = CacheState::new(3, 4);
        let _ = cache.apply(1, &[(0, 2), (1, 2), (0, 3)], &inst());
        assert_eq!(cache.live_count(), 3);
        let lost = cache.evict_station(BsId(2));
        assert_eq!(lost, 2);
        assert!(!cache.is_cached(0, BsId(2)));
        assert!(!cache.is_cached(1, BsId(2)));
        assert!(cache.is_cached(0, BsId(3)), "other stations untouched");
        // Re-use after the outage pays instantiation again.
        let cost = cache.apply(2, &[(0, 2)], &inst());
        assert_eq!(cost, 10.0);
        // Evicting an empty station is a no-op.
        assert_eq!(cache.evict_station(BsId(1)), 0);
    }

    #[test]
    fn drain_moves_mru_first_within_budget() {
        let mut cache = CacheState::new(3, 4);
        let _ = cache.apply(1, &[(0, 0), (1, 0)], &inst());
        let _ = cache.apply(2, &[(2, 0)], &inst());
        let moved = cache.drain_to(BsId(0), BsId(1), 2);
        assert_eq!(moved, 2);
        // MRU first: service 2 (slot 2) then the slot-1 tie broken by
        // service id — service 0 moves, service 1 stays behind.
        assert!(cache.is_cached(2, BsId(1)));
        assert!(cache.is_cached(0, BsId(1)));
        assert!(cache.is_cached(1, BsId(0)), "over-budget entry left behind");
        assert!(!cache.is_cached(2, BsId(0)));
        // Migrated entries keep their warmth: re-use at the target pays
        // nothing.
        let cost = cache.apply(3, &[(2, 1)], &inst());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn drain_consolidates_duplicates_without_spending_budget() {
        let mut cache = CacheState::new(3, 4);
        let _ = cache.apply(1, &[(0, 0), (1, 0), (0, 1)], &inst());
        // Service 0 is already warm at the target: its doomed copy is
        // dropped for free, the budget of one still moves service 1.
        let moved = cache.drain_to(BsId(0), BsId(1), 1);
        assert_eq!(moved, 1);
        assert!(cache.is_cached(1, BsId(1)));
        assert!(cache.is_cached(0, BsId(1)));
        assert_eq!(cache.live_at(BsId(0)), 0);
    }

    #[test]
    fn drain_with_zero_budget_is_a_no_op() {
        let mut cache = CacheState::new(3, 2);
        let _ = cache.apply(1, &[(0, 0)], &inst());
        assert_eq!(cache.drain_to(BsId(0), BsId(1), 0), 0);
        assert!(cache.is_cached(0, BsId(0)));
    }

    #[test]
    fn drain_budget_larger_than_warm_set_moves_everything() {
        let mut cache = CacheState::new(4, 4);
        let _ = cache.apply(1, &[(0, 0), (1, 0), (2, 0)], &inst());
        // Budget far exceeds the three warm instances: all of them
        // move, the surplus budget is simply unused.
        let moved = cache.drain_to(BsId(0), BsId(2), usize::MAX);
        assert_eq!(moved, 3);
        assert_eq!(cache.live_at(BsId(0)), 0);
        assert_eq!(cache.live_at(BsId(2)), 3);
        // And warmth survived the move.
        assert_eq!(cache.apply(2, &[(0, 2), (1, 2), (2, 2)], &inst()), 0.0);
    }

    #[test]
    fn drain_from_a_cold_station_moves_nothing() {
        let mut cache = CacheState::new(3, 4);
        let _ = cache.apply(1, &[(0, 1)], &inst());
        assert_eq!(cache.drain_to(BsId(0), BsId(1), 5), 0);
        assert_eq!(cache.live_count(), 1, "the target keeps its own entries");
    }

    #[test]
    #[should_panic(expected = "cannot drain a station onto itself")]
    fn drain_to_self_rejected() {
        let mut cache = CacheState::new(3, 2);
        let _ = cache.drain_to(BsId(0), BsId(0), 1);
    }

    #[test]
    #[should_panic(expected = "service out of range")]
    fn out_of_range_service_rejected() {
        let mut cache = CacheState::new(2, 2);
        let _ = cache.apply(1, &[(5, 0)], &InstantiationDelays::constant(2, 2, 1.0));
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_rejected() {
        let _ = CacheState::new(1, 1).with_idle_ttl(0);
    }
}
