//! Algorithm 2: `OL_GAN` — the Info-RNN-GAN-guided heuristic.

use crate::algorithms::OlGdCore;
use crate::assignment::Assignment;
use crate::policy::{CachingPolicy, PolicyConfig, SlotContext, SlotFeedback};
use infogan::{InfoGanConfig, InfoRnnGan};
use lexcache_obs as obs;

/// Algorithm 2: per slot, the generator predicts each cell's aggregate
/// bursty demand conditioned on the cell's one-hot latent code and recent
/// history; predictions are shared out to the cell's requests on top of
/// their known basic demands; Algorithm 1's body produces the caching and
/// assignment; and after the slot the discriminator "observes the real
/// data volume of `r_l` and calculates its loss" (one adversarial
/// feedback step per cell).
///
/// The GAN models the *bursty residual* `ρ^bst` per cell — the basic
/// demands `ρ^bsc` are known a priori (Eq. 1), so only the burst
/// component is uncertain and worth learning.
///
/// # Example
///
/// ```
/// use lexcache_core::{OlGan, PolicyConfig, CachingPolicy};
/// use infogan::InfoGanConfig;
/// let policy = OlGan::new(PolicyConfig::default(), InfoGanConfig::small(4), 1);
/// assert_eq!(policy.name(), "OL_GAN");
/// ```
#[derive(Debug)]
pub struct OlGan {
    core: OlGdCore,
    gan: InfoRnnGan,
    /// Realized aggregate *burst residual* history per location cell.
    cell_history: Vec<Vec<f64>>,
    /// Total basic demand per cell, cached on the first decide call.
    cell_basics: Option<Vec<f64>>,
    /// Online adversarial updates per slot (0 disables the Algorithm 2
    /// feedback loop; 1 is the paper's behaviour).
    online_steps: usize,
    /// Monte-Carlo noise draws averaged per prediction — the generator
    /// is stochastic in `z^t`, so the demand estimate is the empirical
    /// mean over several generated trajectories.
    mc_samples: usize,
}

impl OlGan {
    /// Creates the policy; `gan_cfg.n_cells` must match the scenario the
    /// policy will run against.
    pub fn new(cfg: PolicyConfig, gan_cfg: InfoGanConfig, seed: u64) -> Self {
        let n_cells = gan_cfg.n_cells;
        OlGan {
            core: OlGdCore::new(cfg),
            gan: InfoRnnGan::new(gan_cfg, seed),
            cell_history: vec![Vec::new(); n_cells],
            cell_basics: None,
            online_steps: 1,
            mc_samples: 8,
        }
    }

    /// Disables or re-enables the per-slot adversarial update.
    pub fn set_online_steps(&mut self, steps: usize) {
        self.online_steps = steps;
    }

    /// Sets the number of Monte-Carlo noise draws averaged per
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn set_mc_samples(&mut self, samples: usize) {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        self.mc_samples = samples;
    }

    /// Offline pre-training on historical per-cell *burst residual*
    /// series (the small-sample trace of §V with the known basics
    /// subtracted). `series[s]` belongs to cell `cells[s]`.
    ///
    /// # Panics
    ///
    /// Propagates the GAN's validation panics on malformed input.
    pub fn pretrain(&mut self, series: &[Vec<f64>], cells: &[usize], epochs: usize) {
        let _ = self.gan.fit(series, cells, epochs);
    }

    /// The underlying predictor (for audits).
    pub fn gan(&self) -> &InfoRnnGan {
        &self.gan
    }

    fn predicted_demands(&mut self, ctx: &SlotContext<'_>) -> Vec<f64> {
        let requests = ctx.scenario.requests();
        let n_cells = self.cell_history.len();
        let cell_basics = self
            .cell_basics
            .get_or_insert_with(|| {
                let mut basics = vec![0.0; n_cells];
                for r in requests {
                    basics[r.location_cell()] += r.basic_demand();
                }
                basics
            })
            .clone();
        let mut cell_burst = vec![0.0; n_cells];
        for (cell, burst) in cell_burst.iter_mut().enumerate() {
            // lexlint: allow(LX06): a cell with exactly zero basic demand has no burst to scale
            if cell_basics[cell] == 0.0 || self.cell_history[cell].is_empty() {
                continue;
            }
            let mut total = 0.0;
            for _ in 0..self.mc_samples {
                total += self.gan.predict_next(&self.cell_history[cell], cell);
            }
            *burst = (total / self.mc_samples as f64).max(0.0);
        }
        requests
            .iter()
            .map(|r| {
                let cell = r.location_cell();
                // The known basic floor plus this user's proportional
                // share of the predicted cell-level burst.
                let share = r.basic_demand() / cell_basics[cell].max(1e-12);
                r.basic_demand() + cell_burst[cell] * share
            })
            .collect()
    }
}

impl CachingPolicy for OlGan {
    fn name(&self) -> &'static str {
        "OL_GAN"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let predicted = {
            let _span = obs::span("decide/predict");
            self.predicted_demands(ctx)
        };
        self.core.decide_with_demands(ctx, &predicted)
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        self.core.observe_delays(feedback);
        let Some(cell_basics) = self.cell_basics.as_ref() else {
            // observe before any decide: nothing cached yet, skip the
            // GAN update (no basics to subtract).
            return;
        };
        let n_cells = self.cell_history.len();
        let mut aggregate = vec![0.0; n_cells];
        let mut members = vec![0usize; n_cells];
        for (d, &cell) in feedback.realized_demands.iter().zip(feedback.request_cells) {
            aggregate[cell] += d;
            members[cell] += 1;
        }
        let _span = obs::span("feedback/gan_update");
        for cell in 0..n_cells {
            if members[cell] == 0 {
                continue;
            }
            let residual = (aggregate[cell] - cell_basics[cell]).max(0.0);
            self.cell_history[cell].push(residual);
            for _ in 0..self.online_steps {
                let _ = self.gan.online_update(&self.cell_history[cell], cell);
                obs::counter("gan/online_updates", 1);
            }
        }
    }
}
