//! The non-learning baselines: `Greedy_GD` and `Pri_GD`.

use crate::assignment::{Assignment, Target};
use crate::policy::{CachingPolicy, SlotContext, SlotFeedback};
use lexcache_obs as obs;
use mec_net::BsId;

/// Picks, for one request, the cheapest station (by static historical
/// delay + transfer) with enough slack; remote otherwise. Updates `load`.
fn greedy_pick(
    ctx: &SlotContext<'_>,
    l: usize,
    demand: f64,
    load: &mut [f64],
    capacity: &[f64],
) -> Target {
    let n = ctx.topo.len();
    let mut best: Option<usize> = None;
    let mut best_cost = ctx.remote_delay;
    for i in 0..n {
        if ctx.station_up[i] && load[i] + demand <= capacity[i] + 1e-9 {
            let c = ctx.prior_delay[i] + ctx.transfer.get(l, BsId(i));
            if c < best_cost {
                best_cost = c;
                best = Some(i);
            }
        }
    }
    match best {
        Some(i) => {
            load[i] += demand;
            Target::Edge(BsId(i))
        }
        None => Target::Remote,
    }
}

fn capacities(ctx: &SlotContext<'_>) -> Vec<f64> {
    // Brown-outs shrink the usable capacity; `* 1.0` is bit-exact when
    // fault injection is disabled.
    ctx.topo
        .stations()
        .iter()
        .zip(ctx.capacity_factor)
        .map(|(bs, &f)| (bs.capacity_mhz() / ctx.scenario.c_unit_mhz()) * f)
        .collect()
}

fn demands_of(ctx: &SlotContext<'_>) -> Vec<f64> {
    let Some(demands) = ctx.given_demands else {
        panic!("the *_GD baselines run in the given-demands regime; enable reveal_demands")
    };
    demands.to_vec()
}

/// `Greedy_GD`: "each base station greedily selects a service and its
/// tasks that could minimize the delay of each request, assuming that the
/// data volume of each request is given" — delays taken from static
/// historical information (the tier priors), never updated online.
///
/// # Example
///
/// ```
/// use lexcache_core::{GreedyGd, CachingPolicy};
/// assert_eq!(GreedyGd::new().name(), "Greedy_GD");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyGd;

impl GreedyGd {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyGd
    }
}

impl CachingPolicy for GreedyGd {
    fn name(&self) -> &'static str {
        "Greedy_GD"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let _span = obs::span("decide/greedy");
        let demands = demands_of(ctx);
        let capacity = capacities(ctx);
        let mut load = vec![0.0; ctx.topo.len()];
        let targets = (0..demands.len())
            .map(|l| greedy_pick(ctx, l, demands[l], &mut load, &capacity))
            .collect();
        Assignment::new(targets)
    }

    fn observe(&mut self, _feedback: &SlotFeedback<'_>) {}
}

/// `Pri_GD`, the priority-driven caching of [20]: requests get a
/// priority equal to the number of base stations covering them, and
/// stations serve high-priority requests first.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriGd;

impl PriGd {
    /// Creates the policy.
    pub fn new() -> Self {
        PriGd
    }
}

impl CachingPolicy for PriGd {
    fn name(&self) -> &'static str {
        "Pri_GD"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let _span = obs::span("decide/greedy");
        let demands = demands_of(ctx);
        let capacity = capacities(ctx);
        let mut load = vec![0.0; ctx.topo.len()];
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by(|&a, &b| {
            let pa = ctx.scenario.requests()[a].cover_count();
            let pb = ctx.scenario.requests()[b].cover_count();
            pb.cmp(&pa).then(a.cmp(&b))
        });
        let mut targets = vec![Target::Remote; demands.len()];
        for l in order {
            targets[l] = greedy_pick(ctx, l, demands[l], &mut load, &capacity);
        }
        Assignment::new(targets)
    }

    fn observe(&mut self, _feedback: &SlotFeedback<'_>) {}
}
