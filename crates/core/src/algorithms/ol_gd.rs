//! Algorithm 1: `OL_GD` — online learning with given demands.

use crate::assignment::{Assignment, Target};
use crate::lowering::build_caching_lp_resilient;
use crate::policy::{CachingPolicy, EstimatorKind, PolicyConfig, SlotContext, SlotFeedback};
use bandit::{sample_by_weight, ArmSet, DiscountedArmStats, WindowedArmSet};
use lexcache_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Believed-delay estimator bank, one entry per station.
#[derive(Debug)]
enum ArmBank {
    Mean(ArmSet),
    Windowed(WindowedArmSet),
    Discounted(Vec<DiscountedArmStats>),
}

impl ArmBank {
    fn new(kind: EstimatorKind, n: usize) -> ArmBank {
        match kind {
            EstimatorKind::SampleMean => ArmBank::Mean(ArmSet::new(n)),
            EstimatorKind::Windowed { window } => ArmBank::Windowed(WindowedArmSet::new(n, window)),
            EstimatorKind::Discounted { gamma } => {
                ArmBank::Discounted(vec![DiscountedArmStats::new(gamma); n])
            }
        }
    }

    fn observe(&mut self, i: usize, value: f64) {
        match self {
            ArmBank::Mean(a) => a.observe(i, value),
            ArmBank::Windowed(a) => a.observe(i, value),
            ArmBank::Discounted(a) => a[i].observe(value),
        }
    }

    fn means_or(&self, fallback: &[f64]) -> Vec<f64> {
        match self {
            ArmBank::Mean(a) => a.means_or(fallback),
            ArmBank::Windowed(a) => a.means_or(fallback),
            ArmBank::Discounted(a) => a
                .iter()
                .zip(fallback)
                .map(|(arm, &f)| arm.mean().unwrap_or(f))
                .collect(),
        }
    }

    fn mean(&self, i: usize) -> Option<f64> {
        match self {
            ArmBank::Mean(a) => a.mean(i),
            ArmBank::Windowed(a) => {
                let v = a.means_or(&vec![f64::NAN; a.len()]);
                (!v[i].is_nan()).then_some(v[i])
            }
            ArmBank::Discounted(a) => a[i].mean(),
        }
    }
}

/// The shared machinery of `OL_GD`, `OL_Reg` and `OL_GAN`: the per-slot
/// LP relaxation over believed delays, candidate sets, ε-greedy arm
/// selection and capacity repair. The three public policies differ only
/// in where the demand vector comes from.
#[derive(Debug)]
pub(crate) struct OlGdCore {
    cfg: PolicyConfig,
    arms: Option<ArmBank>,
    rng: StdRng,
}

impl OlGdCore {
    pub(crate) fn new(cfg: PolicyConfig) -> Self {
        OlGdCore {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x01_6d),
            cfg,
            arms: None,
        }
    }

    /// The learned mean of station `i`, if any (exposed for audits).
    pub(crate) fn learned_mean(&self, i: usize) -> Option<f64> {
        self.arms.as_ref().and_then(|a| a.mean(i))
    }

    /// Runs Algorithm 1's per-slot body on an explicit demand vector.
    pub(crate) fn decide_with_demands(
        &mut self,
        ctx: &SlotContext<'_>,
        demands: &[f64],
    ) -> Assignment {
        let n = ctx.topo.len();
        let kind = self.cfg.estimator;
        let arms = self.arms.get_or_insert_with(|| ArmBank::new(kind, n));
        // Line 3–4: relax the ILP into an LP over believed delays and
        // extract the fractional solution and candidate sets.
        let believed = {
            let _span = obs::span("decide/estimate");
            arms.means_or(ctx.prior_delay)
        };
        let lp = {
            let _span = obs::span("decide/lp_build");
            // Preemption warnings and breaker verdicts down-weight
            // troubled columns instead of hard-masking them; with
            // nothing draining and every breaker Closed this is the
            // masked builder verbatim.
            build_caching_lp_resilient(
                ctx.topo,
                ctx.scenario,
                ctx.transfer,
                &believed,
                demands,
                ctx.remote_delay,
                ctx.station_up,
                ctx.capacity_factor,
                ctx.drain,
                ctx.breaker_weight,
            )
        };
        let solved = {
            let _span = obs::span("decide/lp_solve");
            lp.solve_fast()
        };
        let columns = match solved {
            Ok(sol) => {
                let candidates = {
                    let _span = obs::span("decide/candidates");
                    sol.candidate_sets(self.cfg.gamma)
                };
                let _span = obs::span("decide/select");
                let eps = self.cfg.epsilon.epsilon(ctx.slot);
                // Down stations are masked out of both exploitation and
                // exploration, and draining arms are frozen early: a
                // station with a scheduled kill is never worth an
                // exploratory pull (its sample stream is about to stop)
                // and leaves the candidate set whenever a safe candidate
                // remains. With every station alive and nothing draining
                // these are the full `0..n` (and `vec![n]` never
                // triggers), so the fault-free path is unchanged.
                let alive_cols: Vec<usize> = (0..n)
                    .filter(|&i| ctx.station_up[i] && !ctx.drain[i].is_draining())
                    .collect();
                (0..demands.len())
                    .map(|l| {
                        // Lines 5–9: exploit the candidate set with
                        // probability 1 − ε_t (weighted by x*), explore a
                        // non-candidate station otherwise.
                        let explore = self.rng.random::<f64>() >= 1.0 - eps;
                        let mut cands = if candidates[l].is_empty() {
                            top_columns(&sol.x[l], 3)
                        } else {
                            candidates[l].clone()
                        };
                        cands.retain(|&c| c == n || ctx.station_up[c]);
                        if cands.iter().any(|&c| c == n || !ctx.drain[c].is_draining()) {
                            cands.retain(|&c| c == n || !ctx.drain[c].is_draining());
                        }
                        if cands.is_empty() {
                            cands = vec![n];
                        }
                        if !explore {
                            obs::counter("bandit/exploit", 1);
                            sample_by_weight(&mut self.rng, &sol.x[l], &cands)
                        } else {
                            obs::counter("bandit/explore", 1);
                            let non_cand: Vec<usize> = alive_cols
                                .iter()
                                .copied()
                                .filter(|c| !cands.contains(c))
                                .collect();
                            if non_cand.is_empty() {
                                if alive_cols.is_empty() {
                                    n
                                } else {
                                    alive_cols[self.rng.random_range(0..alive_cols.len())]
                                }
                            } else {
                                non_cand[self.rng.random_range(0..non_cand.len())]
                            }
                        }
                    })
                    .collect()
            }
            // The remote column keeps the LP feasible, so errors here can
            // only be iteration-limit pathologies; degrade to the static
            // greedy choice instead of crashing mid-episode.
            Err(_) => {
                obs::counter("decide/lp_fallback", 1);
                (0..demands.len())
                    .map(|l| cheapest_column(ctx, l, &believed))
                    .collect()
            }
        };
        let columns = {
            let _span = obs::span("decide/repair");
            repair_capacity(ctx, columns, demands, &believed)
        };
        Assignment::new(
            columns
                .into_iter()
                .map(|c| Target::from_column(c, n))
                .collect(),
        )
    }

    /// Line 10–11: observe the realized unit delay of each played arm.
    /// Arms of down stations are frozen — an outage's delay sample says
    /// nothing about the station's delay when it is serving.
    pub(crate) fn observe_delays(&mut self, feedback: &SlotFeedback<'_>) {
        if let Some(arms) = self.arms.as_mut() {
            for &(i, d) in feedback.observed_unit_delay {
                if feedback.station_up[i] {
                    arms.observe(i, d);
                }
            }
        }
    }
}

/// Indices of the `k` largest entries of `xs`.
fn top_columns(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| crate::float_ord::total_cmp_f64(&xs[b], &xs[a]));
    idx.truncate(k.max(1));
    idx
}

/// The believed-cheapest *alive* column (edge or remote) for request `l`.
fn cheapest_column(ctx: &SlotContext<'_>, l: usize, believed: &[f64]) -> usize {
    let n = ctx.topo.len();
    let mut best = n; // remote
    let mut best_cost = ctx.remote_delay;
    for i in 0..n {
        if !ctx.station_up[i] {
            continue;
        }
        let c = believed[i] + ctx.transfer.get(l, mec_net::BsId(i));
        if c < best_cost {
            best_cost = c;
            best = i;
        }
    }
    best
}

/// Moves requests off overloaded stations (to their cheapest station
/// with slack, or the remote data centre) until every capacity holds.
///
/// Overload is resolved cheapest-victims-first: within an overloaded
/// station the requests with the largest per-unit cost advantage
/// elsewhere move first.
pub(crate) fn repair_capacity(
    ctx: &SlotContext<'_>,
    mut columns: Vec<usize>,
    demands: &[f64],
    believed: &[f64],
) -> Vec<usize> {
    let n = ctx.topo.len();
    // Down stations get zero usable capacity and brown-outs scale it
    // down, so the same overload loop also drains every request off a
    // failed station. With all stations alive the `* 1.0` is bit-exact.
    let capacity: Vec<f64> = ctx
        .topo
        .stations()
        .iter()
        .enumerate()
        .map(|(i, bs)| {
            if ctx.station_up[i] {
                (bs.capacity_mhz() / ctx.scenario.c_unit_mhz()) * ctx.capacity_factor[i]
            } else {
                0.0
            }
        })
        .collect();
    let mut load = vec![0.0; n];
    for (l, &c) in columns.iter().enumerate() {
        if c < n {
            load[c] += demands[l];
        }
    }
    loop {
        let Some(over) = (0..n).find(|&i| {
            load[i] > capacity[i] + 1e-9 || (!ctx.station_up[i] && columns.iter().any(|&c| c == i))
        }) else {
            return columns;
        };
        // Requests currently on the overloaded station, largest demand
        // first (moving one big request restores feasibility fastest).
        let mut here: Vec<usize> = (0..columns.len()).filter(|&l| columns[l] == over).collect();
        here.sort_by(|&a, &b| crate::float_ord::total_cmp_f64(&demands[b], &demands[a]));
        let victim = here[0];
        // Cheapest alternative with slack; remote as last resort.
        let mut best = n;
        let mut best_cost = ctx.remote_delay;
        for i in 0..n {
            if i != over && ctx.station_up[i] && load[i] + demands[victim] <= capacity[i] + 1e-9 {
                let c = believed[i] + ctx.transfer.get(victim, mec_net::BsId(i));
                if c < best_cost {
                    best_cost = c;
                    best = i;
                }
            }
        }
        load[over] -= demands[victim];
        if best < n {
            load[best] += demands[victim];
        }
        columns[victim] = best;
    }
}

/// Algorithm 1: online learning for the dynamic service caching problem
/// with given demands.
///
/// # Example
///
/// ```
/// use lexcache_core::{OlGd, PolicyConfig, CachingPolicy};
/// let policy = OlGd::new(PolicyConfig::default());
/// assert_eq!(policy.name(), "OL_GD");
/// ```
#[derive(Debug)]
pub struct OlGd {
    core: OlGdCore,
}

impl OlGd {
    /// Creates the policy.
    pub fn new(cfg: PolicyConfig) -> Self {
        OlGd {
            core: OlGdCore::new(cfg),
        }
    }

    /// The learned mean unit delay of station `i`, if it was ever
    /// observed.
    pub fn learned_mean(&self, i: usize) -> Option<f64> {
        self.core.learned_mean(i)
    }
}

impl CachingPolicy for OlGd {
    fn name(&self) -> &'static str {
        "OL_GD"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let Some(demands) = ctx.given_demands else {
            panic!("OL_GD runs in the given-demands regime; enable reveal_demands")
        };
        self.core.decide_with_demands(ctx, demands)
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        self.core.observe_delays(feedback);
    }
}
