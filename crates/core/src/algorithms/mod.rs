//! The five algorithms of the paper's evaluation.

mod greedy;
mod ol_gan;
pub(crate) mod ol_gd;
mod ol_reg;
mod ol_ucb;

pub use greedy::{GreedyGd, PriGd};
pub use ol_gan::OlGan;
pub use ol_gd::OlGd;
pub use ol_reg::{ol_ewma, ol_holt, ol_naive, OlForecast, OlReg};
pub use ol_ucb::OlUcb;

pub(crate) use ol_gd::OlGdCore;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::TransferCosts;
    use crate::policy::{CachingPolicy, PolicyConfig, SlotContext, SlotFeedback};
    use crate::Target;
    use mec_net::topology::gtitm;
    use mec_net::NetworkConfig;
    use mec_workload::{Scenario, ScenarioConfig};

    struct Fixture {
        topo: mec_net::Topology,
        net_cfg: NetworkConfig,
        scenario: Scenario,
        transfer: TransferCosts,
        prior: Vec<f64>,
        demands: Vec<f64>,
        up: Vec<bool>,
        factor: Vec<f64>,
        drain: Vec<mec_net::DrainState>,
        breaker_weight: Vec<f64>,
    }

    fn fixture(seed: u64) -> Fixture {
        let net_cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &net_cfg, seed);
        let scenario = ScenarioConfig::small().build(&topo, seed);
        let transfer = TransferCosts::compute(&topo, &scenario);
        let prior: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| net_cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let n = topo.len();
        Fixture {
            topo,
            net_cfg,
            scenario,
            transfer,
            prior,
            demands,
            up: vec![true; n],
            factor: vec![1.0; n],
            drain: vec![mec_net::DrainState::Up; n],
            breaker_weight: vec![1.0; n],
        }
    }

    impl Fixture {
        fn ctx(&self, slot: usize) -> SlotContext<'_> {
            SlotContext {
                slot,
                topo: &self.topo,
                scenario: &self.scenario,
                given_demands: Some(&self.demands),
                transfer: &self.transfer,
                prior_delay: &self.prior,
                remote_delay: 75.0,
                net_cfg: &self.net_cfg,
                station_up: &self.up,
                capacity_factor: &self.factor,
                drain: &self.drain,
                breaker_weight: &self.breaker_weight,
            }
        }
    }

    #[test]
    fn greedy_is_deterministic_and_covers_all_requests() {
        let f = fixture(1);
        let mut g = GreedyGd::new();
        let a = g.decide(&f.ctx(1));
        let b = g.decide(&f.ctx(2));
        assert_eq!(a, b, "static policy must repeat its choice");
        assert_eq!(a.len(), f.demands.len());
    }

    #[test]
    fn greedy_prefers_cheap_local_stations() {
        let f = fixture(2);
        let mut g = GreedyGd::new();
        let a = g.decide(&f.ctx(1));
        // Every chosen edge target must not be dominated by a strictly
        // cheaper station with spare capacity *ignoring* other requests
        // (the greedy invariant for the first-assigned request).
        let first = a.targets()[0];
        if let Target::Edge(bs) = first {
            let cost = f.prior[bs.index()] + f.transfer.get(0, bs);
            for i in 0..f.topo.len() {
                let alt = f.prior[i] + f.transfer.get(0, mec_net::BsId(i));
                assert!(
                    cost <= alt + 1e-9,
                    "request 0 should take the global cheapest station"
                );
            }
        }
    }

    #[test]
    fn priority_serves_high_coverage_requests_first() {
        let f = fixture(3);
        let mut p = PriGd::new();
        let a = p.decide(&f.ctx(1));
        // The highest-priority request gets its unconstrained best
        // station (nothing was assigned before it).
        let best_req = (0..f.demands.len())
            .max_by_key(|&l| (f.scenario.requests()[l].cover_count(), usize::MAX - l))
            .expect("non-empty");
        if let Target::Edge(bs) = a.targets()[best_req] {
            let cost = f.prior[bs.index()] + f.transfer.get(best_req, bs);
            for i in 0..f.topo.len() {
                let alt = f.prior[i] + f.transfer.get(best_req, mec_net::BsId(i));
                assert!(cost <= alt + 1e-9);
            }
        }
    }

    #[test]
    fn ol_gd_requires_given_demands() {
        let f = fixture(4);
        let mut ctx = f.ctx(1);
        ctx.given_demands = None;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            OlGd::new(PolicyConfig::default()).decide(&ctx)
        }));
        assert!(result.is_err(), "OL_GD must reject the hidden regime");
    }

    #[test]
    fn ol_gd_learns_only_played_arms() {
        let f = fixture(5);
        let mut policy = OlGd::new(PolicyConfig::default());
        let a = policy.decide(&f.ctx(1));
        let played: Vec<usize> = a.stations_used().iter().map(|b| b.index()).collect();
        let observed: Vec<(usize, f64)> = played.iter().map(|&i| (i, 9.0)).collect();
        policy.observe(&SlotFeedback {
            slot: 1,
            observed_unit_delay: &observed,
            realized_demands: &f.demands,
            request_cells: &vec![0; f.demands.len()],
            station_up: &f.up,
        });
        for i in 0..f.topo.len() {
            if played.contains(&i) {
                assert_eq!(policy.learned_mean(i), Some(9.0));
            } else {
                assert_eq!(policy.learned_mean(i), None);
            }
        }
    }

    #[test]
    fn ol_ucb_visits_unexplored_stations_early() {
        let f = fixture(6);
        let mut policy = OlUcb::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for slot in 1..=12 {
            let a = policy.decide(&f.ctx(slot));
            let played: Vec<(usize, f64)> = a
                .stations_used()
                .iter()
                .map(|b| {
                    seen.insert(b.index());
                    (b.index(), 10.0)
                })
                .collect();
            policy.observe(&SlotFeedback {
                slot,
                observed_unit_delay: &played,
                realized_demands: &f.demands,
                request_cells: &vec![0; f.demands.len()],
                station_up: &f.up,
            });
        }
        // Optimism should have spread trials across a sizable share of
        // the network by now.
        assert!(
            seen.len() >= f.topo.len() / 3,
            "only {} of {} stations tried",
            seen.len(),
            f.topo.len()
        );
    }

    #[test]
    fn forecast_policies_use_basic_floor_before_history() {
        let f = fixture(7);
        let mut ctx = f.ctx(1);
        ctx.given_demands = None;
        let mut policy = OlReg::new(PolicyConfig::default(), 3);
        // First slot: no history, forecasts fall back to basics; the
        // decision must still cover every request.
        let a = policy.decide(&ctx);
        assert_eq!(a.len(), f.demands.len());
        // lexlint: allow(LX06): asserting the exact zero-initialized fallback
        assert!(policy.forecasts().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ewma_and_naive_variants_have_distinct_names() {
        let e = ol_ewma(PolicyConfig::default());
        let n = ol_naive(PolicyConfig::default());
        assert_eq!(e.name(), "OL_EWMA");
        assert_eq!(n.name(), "OL_Naive");
    }
}
