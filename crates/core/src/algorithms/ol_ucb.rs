//! `OL_UCB`: an optimism-based variant of Algorithm 1 (extension).
//!
//! The paper's related work points at combinatorial bandits with linear
//! rewards (Gai–Krishnamachari–Jain [37]) as the classical alternative to
//! ε-greedy exploration. This policy swaps Algorithm 1's explicit
//! exploration for optimism: the LP is solved over *lower confidence
//! bounds* of the unit delays — `θ̂_i − √(2 ln t / m_i)`, never-pulled
//! arms optimistic at a fraction of the prior — so under-explored
//! stations look attractive exactly until they have been sampled enough.
//! No random exploration step and no candidate threshold are needed; the
//! LP fractions are followed greedily.

use crate::algorithms::ol_gd::repair_capacity;
use crate::assignment::{Assignment, Target};
use crate::lowering::build_caching_lp_resilient;
use crate::policy::{CachingPolicy, SlotContext, SlotFeedback};
use bandit::{sample_by_weight, ArmSet};
use lexcache_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Optimism-in-the-face-of-uncertainty variant of the online caching
/// algorithm.
///
/// # Example
///
/// ```
/// use lexcache_core::{algorithms::OlUcb, CachingPolicy};
/// assert_eq!(OlUcb::new(7).name(), "OL_UCB");
/// ```
#[derive(Debug)]
pub struct OlUcb {
    arms: Option<ArmSet>,
    rng: StdRng,
    slot: u64,
}

impl OlUcb {
    /// Creates the policy.
    pub fn new(seed: u64) -> Self {
        OlUcb {
            arms: None,
            rng: StdRng::seed_from_u64(seed ^ 0x0cb_0cb),
            slot: 0,
        }
    }
}

impl CachingPolicy for OlUcb {
    fn name(&self) -> &'static str {
        "OL_UCB"
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let Some(demands) = ctx.given_demands else {
            panic!("OL_UCB runs in the given-demands regime; enable reveal_demands")
        };
        let n = ctx.topo.len();
        self.slot += 1;
        let t = self.slot;
        let arms = self.arms.get_or_insert_with(|| ArmSet::new(n));
        // Optimistic believed delays: LCB for pulled arms, a fraction of
        // the prior for unpulled ones (so every station gets tried).
        // Draining arms get no optimism — their sample stream is about
        // to stop, so spending exploration on them is wasted; they fall
        // back to the learned mean (or the plain prior if never pulled)
        // and are additionally down-weighted inside the LP.
        let believed: Vec<f64> = {
            let _span = obs::span("decide/estimate");
            (0..n)
                .map(|i| {
                    if ctx.drain[i].is_draining() {
                        arms.mean(i).unwrap_or(ctx.prior_delay[i])
                    } else if arms.pulls(i) == 0 {
                        0.25 * ctx.prior_delay[i]
                    } else {
                        arms.stats()[i].lcb(t).max(0.05 * ctx.prior_delay[i])
                    }
                })
                .collect()
        };
        let lp = {
            let _span = obs::span("decide/lp_build");
            build_caching_lp_resilient(
                ctx.topo,
                ctx.scenario,
                ctx.transfer,
                &believed,
                demands,
                ctx.remote_delay,
                ctx.station_up,
                ctx.capacity_factor,
                ctx.drain,
                ctx.breaker_weight,
            )
        };
        let solved = {
            let _span = obs::span("decide/lp_solve");
            lp.solve_fast()
        };
        let columns: Vec<usize> = match solved {
            Ok(sol) => {
                let _span = obs::span("decide/select");
                // Alive stations plus the remote column; the full `0..=n`
                // (and an unchanged RNG stream) when nothing is down.
                let all: Vec<usize> = (0..n)
                    .filter(|&i| ctx.station_up[i])
                    .chain(std::iter::once(n))
                    .collect();
                (0..demands.len())
                    .map(|l| sample_by_weight(&mut self.rng, &sol.x[l], &all))
                    .collect()
            }
            Err(_) => {
                obs::counter("decide/lp_fallback", 1);
                let alive: Vec<usize> = (0..n).filter(|&i| ctx.station_up[i]).collect();
                (0..demands.len())
                    .map(|_| {
                        if alive.is_empty() {
                            n
                        } else {
                            alive[self.rng.random_range(0..alive.len())]
                        }
                    })
                    .collect()
            }
        };
        let columns = {
            let _span = obs::span("decide/repair");
            repair_capacity(ctx, columns, demands, &believed)
        };
        Assignment::new(
            columns
                .into_iter()
                .map(|c| Target::from_column(c, n))
                .collect(),
        )
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        if let Some(arms) = self.arms.as_mut() {
            for &(i, d) in feedback.observed_unit_delay {
                // Freeze the arms of down stations (see `OlGdCore`).
                if feedback.station_up[i] {
                    arms.observe(i, d);
                }
            }
        }
    }
}
