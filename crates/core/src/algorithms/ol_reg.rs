//! `OL_Reg` and friends: the online algorithm driven by classical
//! per-request forecasters.

use crate::algorithms::OlGdCore;
use crate::assignment::Assignment;
use crate::policy::{CachingPolicy, PolicyConfig, SlotContext, SlotFeedback};
use forecast::{Ewma, Holt, MultiSeries, NaiveLast, PaperArma, Predictor};
use lexcache_obs as obs;

/// Algorithm 1's body driven by a bank of per-request scalar
/// forecasters: each slot the bank predicts every request's demand, the
/// LP/bandit machinery assigns on the forecast, and the realized demands
/// feed the bank afterwards.
///
/// [`OlReg`] (the paper's ARMA baseline) is `OlForecast<PaperArma>`;
/// the predictor-family ablation also instantiates EWMA and naive
/// last-value banks.
#[derive(Debug)]
pub struct OlForecast<P> {
    core: OlGdCore,
    name: &'static str,
    make: fn() -> P,
    predictors: Option<MultiSeries<P>>,
}

impl<P: Predictor> OlForecast<P> {
    /// Creates the policy from a predictor factory.
    pub fn with_factory(cfg: PolicyConfig, name: &'static str, make: fn() -> P) -> Self {
        OlForecast {
            core: OlGdCore::new(cfg),
            name,
            make,
            predictors: None,
        }
    }

    /// Current one-step forecasts (empty before the first slot).
    pub fn forecasts(&self) -> Vec<f64> {
        self.predictors
            .as_ref()
            .map(|p| p.predict_all())
            .unwrap_or_default()
    }
}

impl<P: Predictor + std::fmt::Debug> CachingPolicy for OlForecast<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        let requests = ctx.scenario.requests();
        let make = self.make;
        let predictors = self
            .predictors
            .get_or_insert_with(|| MultiSeries::from_fn(requests.len(), make));
        // Until history accumulates the forecast degenerates to 0; fall
        // back to the known basic-demand floor.
        let predicted: Vec<f64> = {
            let _span = obs::span("decide/forecast");
            predictors
                .predict_all()
                .into_iter()
                .zip(requests)
                .map(|(p, r)| p.max(r.basic_demand()))
                .collect()
        };
        self.core.decide_with_demands(ctx, &predicted)
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        self.core.observe_delays(feedback);
        if let Some(p) = self.predictors.as_mut() {
            let _span = obs::span("feedback/forecast");
            p.observe_all(feedback.realized_demands);
        }
    }
}

/// `OL_Reg` — the paper's regression baseline for the unknown-demand
/// regime: per-request demand is forecast with the Eq. 27 ARMA model
/// (order `p`, linearly decreasing weights), then Algorithm 1's body
/// runs on the forecast.
///
/// # Example
///
/// ```
/// use lexcache_core::{OlReg, PolicyConfig, CachingPolicy};
/// let policy = OlReg::new(PolicyConfig::default(), 3);
/// assert_eq!(policy.name(), "OL_Reg");
/// ```
#[derive(Debug)]
pub struct OlReg {
    inner: OlForecast<PaperArma>,
}

impl OlReg {
    /// Creates the policy with ARMA order `p`.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(cfg: PolicyConfig, order: usize) -> Self {
        assert!(order > 0, "ARMA order must be positive");
        let make: fn() -> PaperArma = match order {
            1 => || PaperArma::with_linear_weights(1),
            2 => || PaperArma::with_linear_weights(2),
            3 => || PaperArma::with_linear_weights(3),
            4 => || PaperArma::with_linear_weights(4),
            _ => || PaperArma::with_linear_weights(5),
        };
        OlReg {
            inner: OlForecast::with_factory(cfg, "OL_Reg", make),
        }
    }

    /// Current one-step forecasts.
    pub fn forecasts(&self) -> Vec<f64> {
        self.inner.forecasts()
    }
}

impl CachingPolicy for OlReg {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment {
        self.inner.decide(ctx)
    }

    fn observe(&mut self, feedback: &SlotFeedback<'_>) {
        self.inner.observe(feedback);
    }
}

/// `OL_EWMA`: the same online body on an exponentially-weighted moving
/// average forecaster (ablation).
pub fn ol_ewma(cfg: PolicyConfig) -> OlForecast<Ewma> {
    OlForecast::with_factory(cfg, "OL_EWMA", || Ewma::new(0.4))
}

/// `OL_Naive`: last-value forecaster (ablation).
pub fn ol_naive(cfg: PolicyConfig) -> OlForecast<NaiveLast> {
    OlForecast::with_factory(cfg, "OL_Naive", NaiveLast::new)
}

/// `OL_Holt`: Holt double-exponential smoothing — tracks burst decay
/// trends that the fixed-weight ARMA lags (ablation).
pub fn ol_holt(cfg: PolicyConfig) -> OlForecast<Holt> {
    OlForecast::with_factory(cfg, "OL_Holt", || Holt::new(0.5, 0.3))
}
