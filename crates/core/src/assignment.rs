//! Per-slot assignment of requests to serving locations.

use mec_net::BsId;
use serde::{Deserialize, Serialize};

/// Where one request's data is processed in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// A cached service instance at an edge base station.
    Edge(BsId),
    /// The origin deployment in the remote data centre (the fallback the
    /// paper's motivation contrasts against; used when no edge capacity
    /// is available).
    Remote,
}

impl Target {
    /// The LP column of this target given `n_stations` edge stations
    /// (remote is the extra last column).
    pub fn column(self, n_stations: usize) -> usize {
        match self {
            Target::Edge(bs) => {
                assert!(bs.index() < n_stations, "station out of range");
                bs.index()
            }
            Target::Remote => n_stations,
        }
    }

    /// Builds a target from an LP column.
    ///
    /// # Panics
    ///
    /// Panics if `column > n_stations`.
    pub fn from_column(column: usize, n_stations: usize) -> Self {
        if column == n_stations {
            Target::Remote
        } else {
            assert!(column < n_stations, "column out of range");
            Target::Edge(BsId(column))
        }
    }

    /// Whether the target is an edge station.
    pub fn is_edge(self) -> bool {
        matches!(self, Target::Edge(_))
    }
}

/// One slot's assignment: `targets()[l]` serves request `l`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    targets: Vec<Target>,
}

impl Assignment {
    /// Wraps a target vector.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<Target>) -> Self {
        assert!(!targets.is_empty(), "assignment must cover requests");
        Assignment { targets }
    }

    /// Target per request.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// Number of requests covered.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the assignment is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Edge stations used by at least one request, deduplicated.
    pub fn stations_used(&self) -> Vec<BsId> {
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.targets {
            if let Target::Edge(bs) = t {
                seen.insert(*bs);
            }
        }
        seen.into_iter().collect()
    }

    /// Number of requests sent to the remote data centre.
    pub fn remote_count(&self) -> usize {
        self.targets.iter().filter(|t| !t.is_edge()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_round_trip() {
        assert_eq!(Target::Edge(BsId(3)).column(5), 3);
        assert_eq!(Target::Remote.column(5), 5);
        assert_eq!(Target::from_column(3, 5), Target::Edge(BsId(3)));
        assert_eq!(Target::from_column(5, 5), Target::Remote);
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn bad_column_rejected() {
        let _ = Target::from_column(6, 5);
    }

    #[test]
    fn stations_used_dedups_and_sorts() {
        let a = Assignment::new(vec![
            Target::Edge(BsId(2)),
            Target::Remote,
            Target::Edge(BsId(0)),
            Target::Edge(BsId(2)),
        ]);
        assert_eq!(a.stations_used(), vec![BsId(0), BsId(2)]);
        assert_eq!(a.remote_count(), 1);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "must cover requests")]
    fn empty_assignment_rejected() {
        let _ = Assignment::new(vec![]);
    }
}
