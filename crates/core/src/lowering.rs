//! Lowering topology + scenario + believed delays into the caching LP.

use mec_net::{BsId, DrainState, Topology};
use mec_workload::Scenario;
use simplex::CachingLp;

/// Per-unit-data transfer delay from each request's registered station to
/// every candidate serving station, computed once per episode over the
/// weighted shortest paths of the topology.
///
/// The paper's delay model (2) multiplies the data volume by a per-unit
/// delay; serving a request away from its registered station additionally
/// drags its data across backhaul links, which is what makes real
/// (bottlenecked) topologies harder than synthetic ones in Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferCosts {
    /// `cost[l][i]`: ms per data unit from request `l`'s registered
    /// station to station `i`.
    cost: Vec<Vec<f64>>,
}

impl TransferCosts {
    /// Computes the transfer matrix with Dijkstra over link delays from
    /// every distinct registered station.
    pub fn compute(topo: &Topology, scenario: &Scenario) -> Self {
        Self::compute_masked(topo, scenario, &vec![true; topo.edge_count()])
    }

    /// Like [`TransferCosts::compute`] but skipping dead links:
    /// `link_up[e]` mirrors `topo.edges()[e]`. Stations reachable only
    /// through dead links get the same large-but-finite unreachable
    /// penalty as disconnected ones, keeping the LP well-posed.
    ///
    /// # Panics
    ///
    /// Panics if `link_up.len() != topo.edge_count()`.
    pub fn compute_masked(topo: &Topology, scenario: &Scenario, link_up: &[bool]) -> Self {
        assert_eq!(link_up.len(), topo.edge_count(), "one flag per edge");
        // BTreeMap, not HashMap: this cache is keyed by station index
        // on the per-episode decision path, and same-seed runs must
        // not depend on hasher state (lexlint LX03).
        let mut by_source: std::collections::BTreeMap<usize, Vec<f64>> =
            std::collections::BTreeMap::new();
        let cost = scenario
            .requests()
            .iter()
            .map(|r| {
                let src = r.registered_bs().index();
                by_source
                    .entry(src)
                    .or_insert_with(|| dijkstra(topo, src, link_up))
                    .clone()
            })
            .collect();
        TransferCosts { cost }
    }

    /// Transfer cost of serving request `l` at station `bs`, ms/unit.
    pub fn get(&self, l: usize, bs: BsId) -> f64 {
        self.cost[l][bs.index()]
    }

    /// The full matrix.
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.cost
    }
}

/// Shortest-path delays (ms) from `src` to every station over the alive
/// link delays; unreachable stations get a large-but-finite penalty so
/// the LP stays well-posed.
fn dijkstra(topo: &Topology, src: usize, link_up: &[bool]) -> Vec<f64> {
    const UNREACHABLE_MS: f64 = 1_000.0;
    let n = topo.len();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    // Edge lookup: adjacency with delays, dead links excluded.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (e, &(u, v)) in topo.edges().iter().enumerate() {
        if !link_up[e] {
            continue;
        }
        let d = topo.edge_delay_ms(e);
        adj[u].push((v, d));
        adj[v].push((u, d));
    }
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((ordered(0.0), src)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        let d = d.0;
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(std::cmp::Reverse((ordered(nd), v)));
            }
        }
    }
    dist.into_iter()
        .map(|d| if d.is_finite() { d } else { UNREACHABLE_MS })
        .collect()
}

/// Total-ordered wrapper for f64 keys in the heap, ordered by
/// [`f64::total_cmp`] so even a NaN delay has a definite position
/// instead of breaking the heap invariant.
#[derive(PartialEq)]
struct Ordered(f64);
impl Eq for Ordered {}
impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        crate::float_ord::total_cmp_f64(&self.0, &other.0)
    }
}
fn ordered(v: f64) -> Ordered {
    Ordered(v)
}

/// Builds the per-slot caching LP over `n_stations + 1` columns — the
/// extra column is the remote data centre (unbounded capacity, no
/// instantiation cost, `remote_delay` ms/unit).
///
/// `believed_delay[i]` is the unit delay the caller attributes to
/// station `i`: a policy passes its learned means / tier priors, the
/// simulator passes the *realized* delays to score assignments and
/// compute the clairvoyant optimum.
///
/// # Panics
///
/// Panics if vector lengths are inconsistent or `remote_delay` is not
/// positive.
pub fn build_caching_lp(
    topo: &Topology,
    scenario: &Scenario,
    transfer: &TransferCosts,
    believed_delay: &[f64],
    demands: &[f64],
    remote_delay: f64,
) -> CachingLp {
    build_caching_lp_masked(
        topo,
        scenario,
        transfer,
        believed_delay,
        demands,
        remote_delay,
        &vec![true; topo.len()],
        &vec![1.0; topo.len()],
    )
}

/// Fault-aware variant of [`build_caching_lp`]: down stations get zero
/// capacity (the balanced transportation solver then routes zero flow to
/// them), and alive stations' capacities are scaled by their brown-out
/// factor. With every station up at factor 1 this is value-identical to
/// the unmasked builder.
///
/// # Panics
///
/// Panics on the same inconsistencies as [`build_caching_lp`], or if the
/// mask vectors do not have one entry per station.
// lexlint: why the two mask slices belong next to the five LP inputs; a params struct would be ceremony for one internal call site
#[allow(clippy::too_many_arguments)]
pub fn build_caching_lp_masked(
    topo: &Topology,
    scenario: &Scenario,
    transfer: &TransferCosts,
    believed_delay: &[f64],
    demands: &[f64],
    remote_delay: f64,
    station_up: &[bool],
    capacity_factor: &[f64],
) -> CachingLp {
    build_weighted(
        topo,
        scenario,
        transfer,
        believed_delay,
        demands,
        remote_delay,
        station_up,
        capacity_factor,
        None,
    )
}

/// The per-column cost multiplier a draining station carries in the
/// drain-aware LP: `1 + 1/k` with `k` slots left before the kill.
/// `Draining(1)` doubles its columns' costs (work placed there is all
/// but lost), a long notice barely penalizes; non-draining states weigh
/// `1.0` exactly.
pub fn drain_cost_weight(state: DrainState) -> f64 {
    match state {
        DrainState::Draining(k) => 1.0 + 1.0 / (k.max(1) as f64),
        _ => 1.0,
    }
}

/// Preemption-aware variant of [`build_caching_lp_masked`]: instead of
/// hard-masking draining stations (they are still alive and serving),
/// their columns' unit costs are scaled by [`drain_cost_weight`], so the
/// LP sheds load from doomed stations in proportion to how imminent the
/// kill is. With no station draining this delegates to the masked
/// builder and is bit-identical to it — the fault-free and notice-zero
/// paths never see a weighted cost.
///
/// # Panics
///
/// Panics on the same inconsistencies as [`build_caching_lp_masked`], or
/// if `drain` does not have one entry per station.
// lexlint: why the drain slice rides with the mask slices; same one-call-site ceremony trade-off as the masked builder
#[allow(clippy::too_many_arguments)]
pub fn build_caching_lp_drain_aware(
    topo: &Topology,
    scenario: &Scenario,
    transfer: &TransferCosts,
    believed_delay: &[f64],
    demands: &[f64],
    remote_delay: f64,
    station_up: &[bool],
    capacity_factor: &[f64],
    drain: &[DrainState],
) -> CachingLp {
    assert_eq!(drain.len(), topo.len(), "one drain state per station");
    if drain.iter().any(|d| d.is_draining()) {
        let weights: Vec<f64> = drain.iter().map(|&d| drain_cost_weight(d)).collect();
        build_weighted(
            topo,
            scenario,
            transfer,
            believed_delay,
            demands,
            remote_delay,
            station_up,
            capacity_factor,
            Some(&weights),
        )
    } else {
        build_caching_lp_masked(
            topo,
            scenario,
            transfer,
            believed_delay,
            demands,
            remote_delay,
            station_up,
            capacity_factor,
        )
    }
}

/// Resilience-aware variant of [`build_caching_lp_drain_aware`]: on top
/// of the drain down-weights, each station's columns are multiplied by
/// its circuit-breaker weight (Closed 1.0, HalfOpen 1.5, Open 2.0), so
/// the LP steers work away from stations the breakers have judged
/// unhealthy *before* their arrivals shed. With every breaker weight at
/// exactly 1.0 this delegates to the drain-aware builder and is
/// bit-identical to it — breaker-free and resilience-off paths never
/// see a combined weight.
///
/// # Panics
///
/// Panics on the same inconsistencies as
/// [`build_caching_lp_drain_aware`], or if `breaker_weight` does not
/// have one entry per station.
// lexlint: why the breaker weights ride with the drain slice; same one-call-site ceremony trade-off as the drain-aware builder
#[allow(clippy::too_many_arguments)]
pub fn build_caching_lp_resilient(
    topo: &Topology,
    scenario: &Scenario,
    transfer: &TransferCosts,
    believed_delay: &[f64],
    demands: &[f64],
    remote_delay: f64,
    station_up: &[bool],
    capacity_factor: &[f64],
    drain: &[DrainState],
    breaker_weight: &[f64],
) -> CachingLp {
    assert_eq!(
        breaker_weight.len(),
        topo.len(),
        "one breaker weight per station"
    );
    // Exact-bit check against 1.0: the delegation below is a
    // bit-identity guarantee, so no tolerance applies.
    if breaker_weight
        .iter()
        // lexlint: allow(LX06): u64 bit-pattern compare via to_bits, not float equality
        .all(|w| w.to_bits() == 1.0f64.to_bits())
    {
        return build_caching_lp_drain_aware(
            topo,
            scenario,
            transfer,
            believed_delay,
            demands,
            remote_delay,
            station_up,
            capacity_factor,
            drain,
        );
    }
    assert_eq!(drain.len(), topo.len(), "one drain state per station");
    let weights: Vec<f64> = drain
        .iter()
        .zip(breaker_weight)
        .map(|(&d, &b)| drain_cost_weight(d) * b)
        .collect();
    build_weighted(
        topo,
        scenario,
        transfer,
        believed_delay,
        demands,
        remote_delay,
        station_up,
        capacity_factor,
        Some(&weights),
    )
}

// lexlint: why private trunk shared by the masked and drain-aware builders; it inherits their full argument lists plus the weight option
#[allow(clippy::too_many_arguments)]
fn build_weighted(
    topo: &Topology,
    scenario: &Scenario,
    transfer: &TransferCosts,
    believed_delay: &[f64],
    demands: &[f64],
    remote_delay: f64,
    station_up: &[bool],
    capacity_factor: &[f64],
    cost_weight: Option<&[f64]>,
) -> CachingLp {
    let n = topo.len();
    assert_eq!(believed_delay.len(), n, "one believed delay per station");
    assert_eq!(
        demands.len(),
        scenario.requests().len(),
        "one demand per request"
    );
    assert!(remote_delay > 0.0, "remote delay must be positive");
    assert_eq!(station_up.len(), n, "one up flag per station");
    assert_eq!(capacity_factor.len(), n, "one capacity factor per station");
    let total_demand: f64 = demands.iter().sum();

    let unit_cost: Vec<Vec<f64>> = scenario
        .requests()
        .iter()
        .enumerate()
        .map(|(l, _)| {
            let mut row: Vec<f64> = (0..n)
                .map(|i| {
                    let base = believed_delay[i] + transfer.get(l, BsId(i));
                    match cost_weight {
                        Some(w) => base * w[i],
                        None => base,
                    }
                })
                .collect();
            row.push(remote_delay);
            row
        })
        .collect();

    let mut capacity_units: Vec<f64> = topo
        .stations()
        .iter()
        .enumerate()
        .map(|(i, bs)| {
            if station_up[i] {
                (bs.capacity_mhz() / scenario.c_unit_mhz()) * capacity_factor[i]
            } else {
                0.0
            }
        })
        .collect();
    capacity_units.push(total_demand.max(1.0));

    let n_services = scenario.services().len();
    let inst_delay: Vec<Vec<f64>> = (0..=n)
        .map(|i| {
            (0..n_services)
                .map(|k| {
                    if i < n {
                        scenario.instantiation().get(BsId(i), k)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let service_of: Vec<usize> = scenario
        .requests()
        .iter()
        .map(|r| r.service().index())
        .collect();

    CachingLp::new(
        demands.to_vec(),
        service_of,
        unit_cost,
        capacity_units,
        inst_delay,
        n_services,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_net::topology::gtitm;
    use mec_net::NetworkConfig;
    use mec_workload::ScenarioConfig;

    fn setup() -> (Topology, NetworkConfig, Scenario) {
        let cfg = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(25, &cfg, 3);
        let scenario = ScenarioConfig::small().build(&topo, 3);
        (topo, cfg, scenario)
    }

    #[test]
    fn transfer_to_registered_station_is_zero() {
        let (topo, _, scenario) = setup();
        let t = TransferCosts::compute(&topo, &scenario);
        for (l, r) in scenario.requests().iter().enumerate() {
            assert_eq!(t.get(l, r.registered_bs()), 0.0);
        }
    }

    #[test]
    fn transfer_is_positive_to_other_stations() {
        let (topo, _, scenario) = setup();
        let t = TransferCosts::compute(&topo, &scenario);
        let r0 = &scenario.requests()[0];
        let other = (0..topo.len())
            .map(BsId)
            .find(|&b| b != r0.registered_bs())
            .unwrap();
        assert!(t.get(0, other) > 0.0);
    }

    #[test]
    fn transfer_satisfies_triangle_inequality_to_neighbors() {
        let (topo, _, scenario) = setup();
        let t = TransferCosts::compute(&topo, &scenario);
        let src = scenario.requests()[0].registered_bs();
        for nb in topo.neighbors(src) {
            // Direct edge must not beat the shortest path.
            let e = topo
                .edges()
                .iter()
                .position(|&(u, v)| {
                    (u == src.index() && v == nb.index()) || (v == src.index() && u == nb.index())
                })
                .unwrap();
            assert!(t.get(0, nb) <= topo.edge_delay_ms(e) + 1e-9);
        }
    }

    #[test]
    fn lp_has_remote_column() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let lp = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        assert_eq!(lp.n_stations(), topo.len() + 1);
        // Remote unit cost is the configured mean for every request.
        for l in 0..lp.n_requests() {
            assert_eq!(lp.unit_cost()[l][topo.len()], 75.0);
        }
        // Remote capacity swallows all demand.
        let total: f64 = demands.iter().sum();
        assert!(lp.capacity_units()[topo.len()] >= total);
    }

    #[test]
    fn lp_is_always_feasible_even_under_extreme_demand() {
        let (topo, _cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = vec![10.0; topo.len()];
        // Demand far above the whole edge capacity.
        let demands: Vec<f64> = vec![1e6; scenario.requests().len()];
        let lp = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        let sol = lp.solve_fast().expect("remote column keeps LP feasible");
        assert!(sol.is_feasible(&lp, 1e-4));
    }

    #[test]
    fn all_alive_mask_matches_unmasked_builder_exactly() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let masked_transfer =
            TransferCosts::compute_masked(&topo, &scenario, &vec![true; topo.edge_count()]);
        assert_eq!(transfer, masked_transfer);
        let plain = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        let masked = build_caching_lp_masked(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
        );
        assert_eq!(plain.capacity_units(), masked.capacity_units());
        assert_eq!(plain.unit_cost(), masked.unit_cost());
    }

    #[test]
    fn dead_links_raise_transfer_costs() {
        let (topo, _, scenario) = setup();
        let alive = TransferCosts::compute(&topo, &scenario);
        // Kill every link: every off-registered station becomes
        // unreachable (cost 1000), registered stations stay at 0.
        let dead = TransferCosts::compute_masked(&topo, &scenario, &vec![false; topo.edge_count()]);
        for (l, r) in scenario.requests().iter().enumerate() {
            for i in 0..topo.len() {
                let bs = BsId(i);
                if bs == r.registered_bs() {
                    assert_eq!(dead.get(l, bs), 0.0);
                } else {
                    assert_eq!(dead.get(l, bs), 1_000.0);
                    assert!(alive.get(l, bs) <= dead.get(l, bs));
                }
            }
        }
    }

    #[test]
    fn down_station_receives_no_lp_flow() {
        let (topo, _cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        // Station 0 is believed nearly free but down: mass must go
        // elsewhere even though its column is by far the cheapest.
        let mut believed = vec![500.0; topo.len()];
        believed[0] = 0.1;
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let mut station_up = vec![true; topo.len()];
        station_up[0] = false;
        let lp = build_caching_lp_masked(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &station_up,
            &vec![1.0; topo.len()],
        );
        assert_eq!(lp.capacity_units()[0], 0.0);
        let sol = lp.solve_fast().unwrap();
        let mass_at_0: f64 = (0..lp.n_requests()).map(|l| sol.x[l][0]).sum();
        assert!(mass_at_0.abs() < 1e-9, "down station attracted {mass_at_0}");
    }

    #[test]
    fn brownout_factor_scales_lp_capacity() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let lp = build_caching_lp_masked(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![0.5; topo.len()],
        );
        for (i, bs) in topo.stations().iter().enumerate() {
            let full = bs.capacity_mhz() / scenario.c_unit_mhz();
            assert!((lp.capacity_units()[i] - full * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn drain_cost_weight_shape() {
        assert_eq!(drain_cost_weight(DrainState::Up), 1.0);
        assert_eq!(drain_cost_weight(DrainState::Preempted), 1.0);
        assert_eq!(drain_cost_weight(DrainState::Returning), 1.0);
        assert_eq!(drain_cost_weight(DrainState::Draining(1)), 2.0);
        assert!((drain_cost_weight(DrainState::Draining(10)) - 1.1).abs() < 1e-12);
        // Imminence orders the penalty.
        assert!(
            drain_cost_weight(DrainState::Draining(1)) > drain_cost_weight(DrainState::Draining(3))
        );
    }

    #[test]
    fn all_up_drain_states_match_masked_builder_exactly() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let masked = build_caching_lp_masked(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
        );
        let drained = build_caching_lp_drain_aware(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
            &vec![DrainState::Up; topo.len()],
        );
        assert_eq!(masked.unit_cost(), drained.unit_cost());
        assert_eq!(masked.capacity_units(), drained.capacity_units());
    }

    #[test]
    fn draining_columns_are_down_weighted_not_masked() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let mut drain = vec![DrainState::Up; topo.len()];
        drain[0] = DrainState::Draining(1);
        drain[1] = DrainState::Draining(3);
        let plain = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        let weighted = build_caching_lp_drain_aware(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
            &drain,
        );
        for l in 0..plain.n_requests() {
            let base0 = plain.unit_cost()[l][0];
            let base1 = plain.unit_cost()[l][1];
            assert!((weighted.unit_cost()[l][0] - base0 * 2.0).abs() < 1e-12);
            assert!((weighted.unit_cost()[l][1] - base1 * (1.0 + 1.0 / 3.0)).abs() < 1e-12);
            // Untouched columns and the remote column keep their costs.
            for i in 2..topo.len() {
                assert_eq!(weighted.unit_cost()[l][i], plain.unit_cost()[l][i]);
            }
            assert_eq!(weighted.unit_cost()[l][topo.len()], 75.0);
        }
        // Draining stations keep their capacity: they still serve.
        assert_eq!(weighted.capacity_units(), plain.capacity_units());
    }

    #[test]
    fn all_ones_breaker_weights_match_drain_aware_builder_exactly() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let mut drain = vec![DrainState::Up; topo.len()];
        drain[2] = DrainState::Draining(2);
        let drained = build_caching_lp_drain_aware(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
            &drain,
        );
        let resilient = build_caching_lp_resilient(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
            &drain,
            &vec![1.0; topo.len()],
        );
        assert_eq!(drained.unit_cost(), resilient.unit_cost());
        assert_eq!(drained.capacity_units(), resilient.capacity_units());
    }

    #[test]
    fn breaker_weights_compose_with_drain_down_weights() {
        let (topo, cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        let believed: Vec<f64> = topo
            .stations()
            .iter()
            .map(|b| cfg.tier(b.tier()).unit_delay_ms.mid())
            .collect();
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let mut drain = vec![DrainState::Up; topo.len()];
        drain[0] = DrainState::Draining(1); // drain weight 2.0
        let mut breaker = vec![1.0; topo.len()];
        breaker[0] = 1.5; // HalfOpen on the draining station
        breaker[1] = 2.0; // Open elsewhere
        let plain = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        let resilient = build_caching_lp_resilient(
            &topo,
            &scenario,
            &transfer,
            &believed,
            &demands,
            75.0,
            &vec![true; topo.len()],
            &vec![1.0; topo.len()],
            &drain,
            &breaker,
        );
        for l in 0..plain.n_requests() {
            let base0 = plain.unit_cost()[l][0];
            let base1 = plain.unit_cost()[l][1];
            // Station 0: drain 2.0 × breaker 1.5 = 3.0.
            assert!((resilient.unit_cost()[l][0] - base0 * 3.0).abs() < 1e-12);
            // Station 1: breaker alone.
            assert!((resilient.unit_cost()[l][1] - base1 * 2.0).abs() < 1e-12);
            for i in 2..topo.len() {
                assert_eq!(resilient.unit_cost()[l][i], plain.unit_cost()[l][i]);
            }
            assert_eq!(resilient.unit_cost()[l][topo.len()], 75.0);
        }
        // Gated stations keep their capacity — the weights only steer.
        assert_eq!(resilient.capacity_units(), plain.capacity_units());
    }

    #[test]
    fn cheap_believed_stations_attract_flow() {
        let (topo, _cfg, scenario) = setup();
        let transfer = TransferCosts::compute(&topo, &scenario);
        // Station 0 is believed nearly free; everything else is awful.
        let mut believed = vec![500.0; topo.len()];
        believed[0] = 0.1;
        let demands: Vec<f64> = scenario
            .requests()
            .iter()
            .map(|r| r.basic_demand())
            .collect();
        let lp = build_caching_lp(&topo, &scenario, &transfer, &believed, &demands, 75.0);
        let sol = lp.solve_fast().unwrap();
        let mass_at_0: f64 = (0..lp.n_requests()).map(|l| sol.x[l][0]).sum();
        assert!(mass_at_0 > 0.5, "cheap station attracted {mass_at_0}");
    }
}
