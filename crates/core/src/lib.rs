//! The paper's contribution: online-learning service caching and task
//! offloading in a 5G-enabled MEC.
//!
//! This crate wires the substrates together into the five algorithms the
//! paper evaluates plus the slot-by-slot simulation engine:
//!
//! * [`OlGd`] — **Algorithm 1** (`OL_GD`): per slot, relax the caching
//!   ILP (3)–(7) into an LP using the *believed* unit delays `θ̂_i`
//!   learned under bandit feedback, build candidate sets
//!   `BS_l^candi = {bs_i : x*_li ≥ γ}`, exploit candidates with
//!   probability `1 − ε_t` (sampling by `x*_li`) and explore a random
//!   non-candidate station otherwise, then observe the realized delays of
//!   the stations actually used.
//! * [`GreedyGd`] — the `Greedy_GD` baseline: static historical (tier
//!   prior) delays, every request greedily takes its cheapest station
//!   with remaining capacity.
//! * [`PriGd`] — the priority baseline of [20]: like greedy but requests
//!   covered by more base stations are served first.
//! * [`OlReg`] — `OL_GD` driven by ARMA-predicted demands (Eq. 27).
//! * [`OlGan`] — **Algorithm 2** (`OL_GAN`): per-cell demand predictions
//!   from the Info-RNN-GAN, plus the per-slot adversarial feedback step.
//!
//! [`Episode`] runs any [`CachingPolicy`] against a topology, a bursty
//! workload and a hidden delay process, recording average delay, decision
//! runtime and (optionally) per-slot regret against the clairvoyant LP
//! optimum. With [`FaultConfig`] enabled it also injects seeded station
//! outages, link failures and capacity brown-outs: failed stations lose
//! their warm cache, policies see per-slot liveness through
//! [`SlotContext`], and a repair pass re-routes anything still assigned
//! to a down station.
//!
//! # Example
//!
//! ```
//! use mec_net::{NetworkConfig, topology::gtitm};
//! use mec_workload::ScenarioConfig;
//! use lexcache_core::{Episode, OlGd, PolicyConfig};
//!
//! let cfg = NetworkConfig::paper_defaults();
//! let topo = gtitm::generate(20, &cfg, 1);
//! let scenario = ScenarioConfig::small().build(&topo, 1);
//! let mut episode = Episode::new(topo, cfg, scenario, 1);
//! let report = episode.run(&mut OlGd::new(PolicyConfig::default()), 5);
//! assert_eq!(report.slots.len(), 5);
//! assert!(report.mean_avg_delay_ms() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod assignment;
pub mod cache;
pub mod float_ord;
pub mod lowering;
pub mod metrics;
pub mod policy;
pub mod sim;

pub use algorithms::{
    ol_ewma, ol_holt, ol_naive, GreedyGd, OlForecast, OlGan, OlGd, OlReg, OlUcb, PriGd,
};
pub use assignment::{Assignment, Target};
pub use cache::CacheState;
pub use lexcache_queue::{Discipline as QueueDiscipline, QueueConfig, ResilConfig};
pub use lowering::TransferCosts;
pub use mec_net::{DrainState, FaultConfig, PreemptNotice};
pub use metrics::{EpisodeReport, SlotMetrics};
pub use policy::{CachingPolicy, PolicyConfig, SlotContext, SlotFeedback};
pub use sim::{DelayModelKind, Episode, EpisodeConfig};
