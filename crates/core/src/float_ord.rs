//! Deterministic float ordering.
//!
//! `partial_cmp(..).unwrap_or(Ordering::Equal)` silently treats a NaN
//! as equal to everything, so one NaN sneaking into a reward vector
//! reorders caching decisions differently from run to run instead of
//! failing loudly. These helpers wrap [`f64::total_cmp`] — the IEEE 754
//! `totalOrder` predicate — which gives every bit pattern, NaNs
//! included, one fixed position: `-NaN < -∞ < … < -0.0 < +0.0 < … <
//! +∞ < +NaN`. Same-seed episodes therefore sort identically even in
//! the presence of pathological values, and a NaN surfaces at the
//! extreme of the order where it is visible, rather than vanishing
//! into an arbitrary mid-sequence position.
//!
//! The `lexlint` rule LX02 bans the NaN-swallowing pattern
//! workspace-wide; crates below `lexcache-core` in the dependency
//! graph (`simplex`, `mec-workload`, …) use `f64::total_cmp` directly,
//! everything above uses these helpers.

use std::cmp::Ordering;

/// Total order on `f64` — [`f64::total_cmp`] as a named function, so
/// call sites read `sort_by(total_cmp_f64)` and comparator closures
/// don't re-derive NaN handling each time.
///
/// # Example
///
/// ```
/// use lexcache_core::float_ord::total_cmp_f64;
/// use std::cmp::Ordering;
/// assert_eq!(total_cmp_f64(&1.0, &2.0), Ordering::Less);
/// // NaN has a definite position instead of comparing "equal".
/// assert_eq!(total_cmp_f64(&f64::NAN, &f64::INFINITY), Ordering::Greater);
/// ```
pub fn total_cmp_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Sorts a float slice ascending under the total order. NaNs sort to
/// the ends (−NaN first, +NaN last) instead of poisoning the
/// comparison sort's transitivity assumptions.
///
/// # Example
///
/// ```
/// use lexcache_core::float_ord::sort_floats;
/// let mut v = vec![2.0, f64::NAN, 1.0];
/// sort_floats(&mut v);
/// assert_eq!(v[0], 1.0);
/// assert_eq!(v[1], 2.0);
/// assert!(v[2].is_nan());
/// ```
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(total_cmp_f64);
}

/// Index of the maximum under the total order; ties keep the **last**
/// maximal element, matching `Iterator::max_by`, so migrated argmax
/// call sites keep their tie-breaking behaviour bit-for-bit. Returns
/// `None` on an empty slice.
pub fn argmax_f64(xs: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, x) in xs.iter().enumerate() {
        match best {
            Some(b) if x.total_cmp(&xs[b]).is_lt() => {}
            _ => best = Some(i),
        }
    }
    best
}

/// Index of the minimum under the total order; ties keep the **first**
/// minimal element, matching `Iterator::min_by`. Returns `None` on an
/// empty slice.
pub fn argmin_f64(xs: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, x) in xs.iter().enumerate() {
        match best {
            Some(b) if x.total_cmp(&xs[b]).is_lt() => best = Some(i),
            None => best = Some(i),
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_places_nan_deterministically() {
        let mut v = vec![f64::NAN, 1.0, -f64::NAN, f64::NEG_INFINITY, 0.0];
        sort_floats(&mut v);
        assert!(v[0].is_nan() && v[0].is_sign_negative());
        assert_eq!(v[1], f64::NEG_INFINITY);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 1.0);
        assert!(v[4].is_nan() && v[4].is_sign_positive());
    }

    #[test]
    fn sorting_is_reproducible_with_nans() {
        let base = vec![3.0, f64::NAN, 1.0, 2.0, f64::NAN];
        let mut a = base.clone();
        let mut b = base;
        sort_floats(&mut a);
        sort_floats(&mut b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn argmax_matches_iterator_max_by_tie_breaking() {
        let xs = [1.0, 3.0, 3.0, 2.0];
        let reference = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(argmax_f64(&xs), reference);
        assert_eq!(argmax_f64(&xs), Some(2), "ties keep the last maximum");
    }

    #[test]
    fn argmin_matches_iterator_min_by_tie_breaking() {
        let xs = [2.0, 1.0, 1.0, 3.0];
        let reference = xs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(argmin_f64(&xs), reference);
        assert_eq!(argmin_f64(&xs), Some(1), "ties keep the first minimum");
    }

    #[test]
    fn empty_slices_yield_none() {
        assert_eq!(argmax_f64(&[]), None);
        assert_eq!(argmin_f64(&[]), None);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        let mut v = vec![0.0, -0.0];
        sort_floats(&mut v);
        assert!(v[0].is_sign_negative());
        assert!(v[1].is_sign_positive());
    }
}
