//! The policy interface every caching algorithm implements.

use crate::assignment::Assignment;
use crate::lowering::TransferCosts;
use bandit::EpsilonSchedule;
use mec_net::{DrainState, Topology};
use mec_workload::Scenario;
use serde::{Deserialize, Serialize};

/// Everything a policy may look at when deciding one slot.
///
/// `given_demands` carries the true demand vector in the §IV "given
/// demands" regime (`*_GD` algorithms) and is `None` in the §V regime
/// where demand must be predicted.
#[derive(Debug)]
pub struct SlotContext<'a> {
    /// 1-based slot index.
    pub slot: usize,
    /// The network.
    pub topo: &'a Topology,
    /// The workload (services, requests, capacities).
    pub scenario: &'a Scenario,
    /// True demands if the regime gives them to the algorithm.
    pub given_demands: Option<&'a [f64]>,
    /// Per-unit transfer delays request → station.
    pub transfer: &'a TransferCosts,
    /// Historical (tier-prior) unit delays per station, used by the
    /// baselines and as the belief for never-pulled arms.
    pub prior_delay: &'a [f64],
    /// Mean remote-data-centre unit delay.
    pub remote_delay: f64,
    /// The network configuration reference.
    pub net_cfg: &'a mec_net::NetworkConfig,
    /// `station_up[i]` — whether `BsId(i)` is alive this slot. Policies
    /// must not assign requests to down stations; all-true when fault
    /// injection is disabled.
    pub station_up: &'a [bool],
    /// Per-station usable-capacity multiplier in `(0, 1]` (capacity
    /// brown-outs); all-ones when fault injection is disabled.
    pub capacity_factor: &'a [f64],
    /// `drain[i]` — where `BsId(i)` sits in the preemption drain
    /// lifecycle. Draining stations are still alive (`station_up` true)
    /// but will be killed in `slots_until_kill` slots; warning-aware
    /// policies shift work off them early, warning-blind baselines may
    /// ignore this field entirely. All-`Up` when fault injection is
    /// disabled.
    pub drain: &'a [DrainState],
    /// `breaker_weight[i]` — the soft LP cost multiplier contributed by
    /// `BsId(i)`'s circuit breaker (1.0 Closed, 1.5 HalfOpen, 2.0
    /// Open), mirroring the `Draining(k)` down-weight. All-ones when
    /// the resilience layer or its breakers are disabled.
    pub breaker_weight: &'a [f64],
}

/// End-of-slot feedback: what the environment revealed.
#[derive(Debug)]
pub struct SlotFeedback<'a> {
    /// 1-based slot index.
    pub slot: usize,
    /// `(station index, realized unit delay)` for every edge station the
    /// policy actually used — the bandit observation of Algorithm 1
    /// line 11.
    pub observed_unit_delay: &'a [(usize, f64)],
    /// The realized demand of every request this slot.
    pub realized_demands: &'a [f64],
    /// The location cell of every request (constant, repeated for
    /// convenience).
    pub request_cells: &'a [usize],
    /// `station_up[i]` — whether `BsId(i)` was alive this slot. Learners
    /// should freeze the bandit arms of down stations rather than feed
    /// them spurious samples.
    pub station_up: &'a [bool],
}

/// A per-slot service caching and task offloading algorithm.
pub trait CachingPolicy {
    /// Short name used in reports (`"OL_GD"`, `"Greedy_GD"`, …).
    fn name(&self) -> &'static str;

    /// Chooses this slot's assignment (and implicitly the cache set).
    fn decide(&mut self, ctx: &SlotContext<'_>) -> Assignment;

    /// Receives the end-of-slot observations.
    fn observe(&mut self, feedback: &SlotFeedback<'_>);
}

/// How the believed unit delay `θ̂_i` is estimated from observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// The paper's plain sample mean.
    SampleMean,
    /// Mean over the last `window` observations (drift-aware).
    Windowed {
        /// Observations kept per arm.
        window: usize,
    },
    /// Exponentially discounted mean with factor `gamma` per
    /// observation (drift-aware).
    Discounted {
        /// Discount per observation, in `(0, 1]`.
        gamma: f64,
    },
}

/// Shared knobs of the learning policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Candidate threshold `γ` of Eq. (9).
    pub gamma: f64,
    /// Exploration schedule `ε_t`.
    pub epsilon: EpsilonSchedule,
    /// Believed-delay estimator.
    pub estimator: EstimatorKind,
    /// RNG seed for the policy's own randomness.
    pub seed: u64,
}

impl PolicyConfig {
    /// Defaults: `γ = 0.1` and the decaying exploration `ε_t = c/t`
    /// (`c = 0.5`) that Theorem 1's regret analysis assumes. Algorithm 1
    /// line 2 instead pins `ε_t = 1/4`; pass
    /// [`EpsilonSchedule::paper_default`] through
    /// [`PolicyConfig::with_epsilon`] to reproduce that variant (the
    /// `ablation_epsilon` bench compares the two).
    pub fn paper_defaults() -> Self {
        PolicyConfig {
            gamma: 0.1,
            epsilon: EpsilonSchedule::Decay { c: 0.5 },
            estimator: EstimatorKind::SampleMean,
            seed: 0,
        }
    }

    /// Overrides `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ (0, 1]`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        self.gamma = gamma;
        self
    }

    /// Overrides the exploration schedule.
    pub fn with_epsilon(mut self, epsilon: EpsilonSchedule) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the believed-delay estimator.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.gamma, 0.1);
        assert_eq!(cfg.epsilon, EpsilonSchedule::Decay { c: 0.5 });
        assert_eq!(cfg.estimator, EstimatorKind::SampleMean);
        assert_eq!(cfg.seed, 0);
    }

    #[test]
    fn estimator_override() {
        let cfg = PolicyConfig::default().with_estimator(EstimatorKind::Windowed { window: 8 });
        assert_eq!(cfg.estimator, EstimatorKind::Windowed { window: 8 });
    }

    #[test]
    fn builders_override() {
        let cfg = PolicyConfig::paper_defaults()
            .with_gamma(0.3)
            .with_epsilon(EpsilonSchedule::Decay { c: 0.5 })
            .with_seed(9);
        assert_eq!(cfg.gamma, 0.3);
        assert_eq!(cfg.epsilon.epsilon(2), 0.25);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn bad_gamma_rejected() {
        let _ = PolicyConfig::default().with_gamma(1.5);
    }
}
