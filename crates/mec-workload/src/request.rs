//! User requests `r_l = ⟨ρ_l(t), S_k⟩`.

use crate::service::ServiceId;
use mec_net::station::Position;
use mec_net::BsId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a request inside one [`crate::Scenario`] (dense `0..|R|`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub usize);

impl RequestId {
    /// Dense index of this request.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

impl From<usize> for RequestId {
    fn from(i: usize) -> Self {
        RequestId(i)
    }
}

/// A user request: which service it needs, where the user sits, which
/// station it is registered with, and its basic demand `ρ_l^bsc`.
///
/// The user's *location cell* is the hidden feature the Info-RNN-GAN
/// conditions on (latent code `c^t`): users in the same cell share demand
/// bursts ("users in the same location may have similar distributions of
/// their data volumes", §V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    id: RequestId,
    service: ServiceId,
    position: Position,
    registered_bs: BsId,
    location_cell: usize,
    basic_demand: f64,
    cover_count: usize,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `basic_demand` is negative or not finite — the basic
    /// demand is the *smallest* data volume over the monitoring period and
    /// must be a real non-negative quantity.
    pub fn new(
        id: RequestId,
        service: ServiceId,
        position: Position,
        registered_bs: BsId,
        location_cell: usize,
        basic_demand: f64,
        cover_count: usize,
    ) -> Self {
        assert!(
            basic_demand.is_finite() && basic_demand >= 0.0,
            "basic demand must be a finite non-negative value"
        );
        Request {
            id,
            service,
            position,
            registered_bs,
            location_cell,
            basic_demand,
            cover_count,
        }
    }

    /// The request identifier.
    #[inline]
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The service `S_k` this request must be executed by.
    #[inline]
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The user's position in metres.
    #[inline]
    pub fn position(&self) -> Position {
        self.position
    }

    /// The base station the user is registered with (its access point;
    /// data travels from here to wherever the service instance runs).
    #[inline]
    pub fn registered_bs(&self) -> BsId {
        self.registered_bs
    }

    /// Discrete location cell (index into the one-hot latent coding).
    #[inline]
    pub fn location_cell(&self) -> usize {
        self.location_cell
    }

    /// Basic demand `ρ_l^bsc` in data units — known a priori.
    #[inline]
    pub fn basic_demand(&self) -> f64 {
        self.basic_demand
    }

    /// Number of base stations whose coverage disc contains the user.
    /// `Pri_GD` [20] prioritizes requests by this count.
    #[inline]
    pub fn cover_count(&self) -> usize {
        self.cover_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request::new(
            RequestId(3),
            ServiceId(1),
            Position::new(1.0, 2.0),
            BsId(5),
            2,
            4.0,
            3,
        )
    }

    #[test]
    fn id_display() {
        assert_eq!(RequestId(9).to_string(), "req9");
        assert_eq!(RequestId::from(9), RequestId(9));
    }

    #[test]
    fn getters_round_trip() {
        let r = sample();
        assert_eq!(r.id(), RequestId(3));
        assert_eq!(r.service(), ServiceId(1));
        assert_eq!(r.position(), Position::new(1.0, 2.0));
        assert_eq!(r.registered_bs(), BsId(5));
        assert_eq!(r.location_cell(), 2);
        assert_eq!(r.basic_demand(), 4.0);
        assert_eq!(r.cover_count(), 3);
    }

    #[test]
    fn zero_basic_demand_is_allowed() {
        let r = Request::new(
            RequestId(0),
            ServiceId(0),
            Position::default(),
            BsId(0),
            0,
            0.0,
            1,
        );
        assert_eq!(r.basic_demand(), 0.0);
    }

    #[test]
    #[should_panic(expected = "basic demand")]
    fn negative_basic_demand_rejected() {
        let _ = Request::new(
            RequestId(0),
            ServiceId(0),
            Position::default(),
            BsId(0),
            0,
            -1.0,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "basic demand")]
    fn nan_basic_demand_rejected() {
        let _ = Request::new(
            RequestId(0),
            ServiceId(0),
            Position::default(),
            BsId(0),
            0,
            f64::NAN,
            1,
        );
    }
}
