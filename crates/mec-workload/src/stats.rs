//! Burstiness statistics for demand series.
//!
//! The paper's premise is that real multimedia traffic "shows a bursty
//! pattern" [24] and self-similar behaviour [40]. These estimators let a
//! user (and our tests) verify that a generated workload actually has
//! the claimed properties: the index of dispersion, the peak-to-mean
//! ratio, lag autocorrelation, and a rescaled-range (R/S) Hurst exponent
//! estimate — `H > 0.5` indicates long-range dependence / self-similar
//! bursts.

/// Mean of a series.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "series must not be empty");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Index of dispersion (variance-to-mean ratio). Poisson-like traffic
/// gives ≈ 1; bursty traffic ≫ 1. Returns 0 for an all-zero series.
///
/// # Panics
///
/// Panics if `xs` is empty or contains negative values.
pub fn index_of_dispersion(xs: &[f64]) -> f64 {
    assert!(xs.iter().all(|&x| x >= 0.0), "demand must be non-negative");
    let m = mean(xs);
    // lexlint: allow(LX06): exact-zero divisor guard; only true zero is degenerate
    if m == 0.0 {
        0.0
    } else {
        variance(xs) / m
    }
}

/// Peak-to-mean ratio. Returns 0 for an all-zero series.
///
/// # Panics
///
/// Panics if `xs` is empty or contains negative values.
pub fn peak_to_mean(xs: &[f64]) -> f64 {
    assert!(xs.iter().all(|&x| x >= 0.0), "demand must be non-negative");
    let m = mean(xs);
    // lexlint: allow(LX06): exact-zero divisor guard; only true zero is degenerate
    if m == 0.0 {
        0.0
    } else {
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / m
    }
}

/// Lag-`k` autocorrelation. Returns 0 when the series has no variance.
///
/// # Panics
///
/// Panics if `k == 0` or `k >= xs.len()`.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    assert!(k > 0, "lag must be positive");
    assert!(k < xs.len(), "lag must be shorter than the series");
    let m = mean(xs);
    let var = variance(xs);
    // lexlint: allow(LX06): exact-zero divisor guard; only true zero is degenerate
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..xs.len() - k)
        .map(|t| (xs[t] - m) * (xs[t + k] - m))
        .sum::<f64>()
        / (xs.len() - k) as f64;
    cov / var
}

/// Rescaled-range (R/S) Hurst-exponent estimate.
///
/// The series is cut into blocks at several sizes; `log(R/S)` is
/// regressed on `log(block size)`. Values near 0.5 mean memoryless,
/// values toward 1.0 mean long-range-dependent (self-similar) bursts.
/// Returns 0.5 when the series is too short or degenerate for a slope.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn hurst_rs(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "series must not be empty");
    if xs.len() < 16 {
        return 0.5;
    }
    let mut points = Vec::new();
    let mut size = 8usize;
    while size <= xs.len() / 2 {
        let mut rs_values = Vec::new();
        for block in xs.chunks_exact(size) {
            if let Some(rs) = rescaled_range(block) {
                rs_values.push(rs);
            }
        }
        if !rs_values.is_empty() {
            let avg = mean(&rs_values);
            if avg > 0.0 {
                points.push(((size as f64).ln(), avg.ln()));
            }
        }
        size *= 2;
    }
    if points.len() < 2 {
        return 0.5;
    }
    slope(&points).clamp(0.0, 1.0)
}

/// R/S of one block: range of the mean-adjusted cumulative sum over the
/// standard deviation. `None` when the block has zero variance.
fn rescaled_range(block: &[f64]) -> Option<f64> {
    let m = mean(block);
    let sd = variance(block).sqrt();
    // lexlint: allow(LX06): exact-zero divisor guard; only true zero is degenerate
    if sd == 0.0 {
        return None;
    }
    let mut acc = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in block {
        acc += x - m;
        min = min.min(acc);
        max = max.max(acc);
    }
    Some((max - min) / sd)
}

/// Least-squares slope of `(x, y)` points.
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.5
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{DemandProcess as _, FlashCrowd, FlashCrowdConfig, OnOffHeavyTail};
    use crate::request::{Request, RequestId};
    use crate::service::ServiceId;
    use mec_net::station::Position;
    use mec_net::BsId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(variance(&[1.0, 3.0]), 1.0);
    }

    #[test]
    fn dispersion_of_constant_series_is_zero() {
        assert_eq!(index_of_dispersion(&[5.0; 20]), 0.0);
        assert_eq!(index_of_dispersion(&[0.0; 5]), 0.0);
    }

    #[test]
    fn bursty_series_has_high_dispersion_and_peak_ratio() {
        let mut xs = vec![1.0; 50];
        xs[10] = 100.0;
        xs[11] = 60.0;
        assert!(index_of_dispersion(&xs) > 10.0);
        assert!(peak_to_mean(&xs) > 10.0);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let xs: Vec<f64> = (0..40)
            .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn hurst_of_iid_noise_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..2048).map(|_| rng.random_range(0.0..1.0)).collect();
        let h = hurst_rs(&xs);
        assert!(
            (0.35..=0.68).contains(&h),
            "iid noise should estimate near 0.5, got {h}"
        );
    }

    #[test]
    fn hurst_of_trending_series_is_high() {
        // A random walk (integrated noise) is strongly persistent.
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        let xs: Vec<f64> = (0..2048)
            .map(|_| {
                acc += rng.random_range(-0.5..0.6);
                acc
            })
            .collect();
        let h = hurst_rs(&xs);
        assert!(h > 0.75, "random walk should look persistent, got {h}");
    }

    #[test]
    fn hurst_short_series_degrades_gracefully() {
        assert_eq!(hurst_rs(&[1.0; 8]), 0.5);
    }

    fn reqs(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    ServiceId(0),
                    Position::default(),
                    BsId(0),
                    i % 2,
                    2.0,
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn flash_crowd_is_measurably_bursty() {
        let reqs = reqs(10);
        let mut p = FlashCrowd::new(&reqs, FlashCrowdConfig::default(), 3);
        let mut series = Vec::new();
        for _ in 0..400 {
            p.advance();
            series.push((0..10).map(|i| p.demand(RequestId(i))).sum::<f64>());
        }
        assert!(
            index_of_dispersion(&series) > 3.0,
            "flash crowd dispersion {}",
            index_of_dispersion(&series)
        );
        // Bursts decay over a few slots → positive short-lag correlation.
        assert!(autocorrelation(&series, 1) > 0.2);
    }

    #[test]
    fn heavy_tail_beats_poisson_like_dispersion() {
        let reqs = reqs(10);
        let mut p = OnOffHeavyTail::new(&reqs, 0.3, 2.0, 1.2, 200.0, 3);
        let mut series = Vec::new();
        for _ in 0..400 {
            p.advance();
            series.push((0..10).map(|i| p.demand(RequestId(i))).sum::<f64>());
        }
        assert!(index_of_dispersion(&series) > 1.5);
        assert!(peak_to_mean(&series) > 2.0);
    }

    #[test]
    #[should_panic(expected = "lag must be shorter")]
    fn autocorrelation_rejects_long_lag() {
        let _ = autocorrelation(&[1.0, 2.0], 2);
    }
}
