//! Services, user requests and bursty demand processes.
//!
//! This crate models the demand side of the paper: each user request `r_l`
//! asks for one network service `S_k` and carries a per-slot data volume
//! `ρ_l(t) = ρ_l^bsc + ρ_l^bst(t)` — a *basic* demand known a priori plus
//! an unpredictable *bursty* component (Eq. 1 of the paper).
//!
//! Provided pieces:
//!
//! * [`Service`] / [`Request`] — the static description of services and
//!   the users requesting them, including each user's location (the hidden
//!   feature the Info-RNN-GAN conditions on).
//! * [`demand`] — demand processes: [`demand::FixedDemand`] (the "given
//!   demands" regime of §IV), [`demand::FlashCrowd`] (location-correlated
//!   sudden events, the paper's museum-VR example), [`demand::Mmpp`]
//!   (Markov-modulated) and [`demand::OnOffHeavyTail`] (self-similar
//!   on/off bursts).
//! * [`trace`] — a synthetic small-sample "hotspot" trace with the same
//!   schema as the NYC Wi-Fi hotspot dataset the paper uses (location,
//!   time, service tag, demand), plus one-hot location coding.
//! * [`Scenario`] / [`ScenarioConfig`] — bundles everything a simulation
//!   episode needs.
//!
//! # Example
//!
//! ```
//! use mec_net::{NetworkConfig, topology::gtitm};
//! use mec_workload::ScenarioConfig;
//!
//! let topo = gtitm::generate(30, &NetworkConfig::paper_defaults(), 3);
//! let scenario = ScenarioConfig::small().build(&topo, 3);
//! assert!(!scenario.requests().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod demand;
pub mod request;
pub mod scenario;
pub mod service;
pub mod stats;
pub mod trace;

pub use arrivals::{arrival_offset_ms, expand_slot, Arrival};
pub use demand::{DemandModel, DemandProcess};
pub use request::{Request, RequestId};
pub use scenario::{Scenario, ScenarioConfig};
pub use service::{Service, ServiceId, ServiceKind};
pub use trace::{HotspotTrace, OneHot, TraceRow};
