//! Synthetic small-sample "hotspot" user trace.
//!
//! The paper trains its Info-RNN-GAN on "a sample of user information from
//! the dataset of NYC Wi-Fi hotspot locations [26]", whose relevant
//! property is that it consists of *many small-sample data features*:
//! location, time, service status and per-session demand. That dataset is
//! an external artefact, so this module ships a deterministic synthetic
//! generator with the same schema and the same small-sample regime, driven
//! by the location-correlated [`crate::demand::FlashCrowd`] process — the
//! hidden feature (location cell) genuinely modulates demand, which is
//! exactly what the GAN's latent code is supposed to recover.

use crate::demand::{DemandProcess, FlashCrowd, FlashCrowdConfig};
use crate::request::{Request, RequestId};
use crate::service::ServiceId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mec_net::station::Position;
use mec_net::BsId;
use serde::{Deserialize, Serialize};

/// One-hot encoder for discrete features (the paper "preprocess[es] the
/// location of the data with one-hot encoding and then treat[s] it as the
/// value of C").
///
/// # Example
///
/// ```
/// use mec_workload::OneHot;
/// let enc = OneHot::new(4);
/// let code = enc.encode(2);
/// assert_eq!(code, vec![0.0, 0.0, 1.0, 0.0]);
/// assert_eq!(enc.decode(&code), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneHot {
    n_classes: usize,
}

impl OneHot {
    /// Creates an encoder over `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "one-hot needs at least one class");
        OneHot { n_classes }
    }

    /// Number of classes (= code length).
    pub fn n_classes(self) -> usize {
        self.n_classes
    }

    /// Encodes `class` as a one-hot vector.
    ///
    /// # Panics
    ///
    /// Panics if `class >= n_classes`.
    pub fn encode(self, class: usize) -> Vec<f64> {
        assert!(class < self.n_classes, "class out of range");
        let mut v = vec![0.0; self.n_classes];
        v[class] = 1.0;
        v
    }

    /// Decodes by argmax (tolerant of soft codes such as softmax output).
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != n_classes` or `code` is empty.
    pub fn decode(self, code: &[f64]) -> usize {
        assert_eq!(code.len(), self.n_classes, "code length mismatch");
        assert!(!code.is_empty(), "code must not be empty");
        // Argmax under f64::total_cmp (last max on ties, matching the
        // old max_by) so a NaN logit orders deterministically instead
        // of collapsing the comparison to Equal.
        let mut best = 0;
        for i in 1..code.len() {
            if code[i].total_cmp(&code[best]).is_ge() {
                best = i;
            }
        }
        best
    }
}

/// One observation row of the hotspot trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Time slot of the observation.
    pub slot: u32,
    /// Which synthetic user produced it.
    pub user: u32,
    /// Discrete location cell (hotspot id).
    pub location_cell: u32,
    /// Service tag requested in the session.
    pub service_tag: u32,
    /// Observed data volume, in data units.
    pub demand: f64,
}

/// A small-sample trace of user sessions at discrete hotspots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotTrace {
    n_users: usize,
    n_cells: usize,
    n_services: usize,
    n_slots: usize,
    rows: Vec<TraceRow>,
}

impl HotspotTrace {
    /// Synthesizes a trace of `n_users` users over `n_slots` slots at
    /// `n_cells` hotspots, with location-correlated flash-crowd demand.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn synthesize(
        n_users: usize,
        n_cells: usize,
        n_services: usize,
        n_slots: usize,
        seed: u64,
    ) -> Self {
        assert!(n_users > 0, "n_users must be positive");
        assert!(n_cells > 0, "n_cells must be positive");
        assert!(n_services > 0, "n_services must be positive");
        assert!(n_slots > 0, "n_slots must be positive");
        // Synthetic users: round-robin over cells and services, basic
        // demand varying with the user index.
        let users: Vec<Request> = (0..n_users)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    ServiceId(i % n_services),
                    Position::new(i as f64, 0.0),
                    BsId(0),
                    i % n_cells,
                    1.0 + (i % 5) as f64,
                    1,
                )
            })
            .collect();
        let mut process = FlashCrowd::new(&users, FlashCrowdConfig::default(), seed);
        let mut rows = Vec::with_capacity(n_users * n_slots);
        for slot in 0..n_slots {
            process.advance();
            for u in &users {
                rows.push(TraceRow {
                    slot: slot as u32,
                    user: u.id().index() as u32,
                    location_cell: u.location_cell() as u32,
                    service_tag: u.service().index() as u32,
                    demand: process.demand(u.id()),
                });
            }
        }
        HotspotTrace {
            n_users,
            n_cells,
            n_services,
            n_slots,
            rows,
        }
    }

    /// Records a trace from an arbitrary demand process over the given
    /// requests for `n_slots` slots (advances the process).
    pub fn record<P: DemandProcess>(requests: &[Request], process: &mut P, n_slots: usize) -> Self {
        assert!(n_slots > 0, "n_slots must be positive");
        assert_eq!(
            requests.len(),
            process.n_requests(),
            "request count mismatch"
        );
        let n_cells = requests
            .iter()
            .map(|r| r.location_cell())
            .max()
            .map_or(1, |m| m + 1);
        let n_services = requests
            .iter()
            .map(|r| r.service().index())
            .max()
            .map_or(1, |m| m + 1);
        let mut rows = Vec::with_capacity(requests.len() * n_slots);
        for slot in 0..n_slots {
            process.advance();
            for r in requests {
                rows.push(TraceRow {
                    slot: slot as u32,
                    user: r.id().index() as u32,
                    location_cell: r.location_cell() as u32,
                    service_tag: r.service().index() as u32,
                    demand: process.demand(r.id()),
                });
            }
        }
        HotspotTrace {
            n_users: requests.len(),
            n_cells,
            n_services,
            n_slots,
            rows,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of hotspot cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of service tags.
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// All rows in slot-major order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Per-user demand time series: `series[u][t]`.
    pub fn user_demand_series(&self) -> Vec<Vec<f64>> {
        let mut series = vec![vec![0.0; self.n_slots]; self.n_users];
        for row in &self.rows {
            series[row.user as usize][row.slot as usize] = row.demand;
        }
        series
    }

    /// Per-cell aggregate demand series: `series[c][t]` sums the demand of
    /// every user in cell `c` at slot `t`. This is the sequence the GAN
    /// learns, conditioned on the cell's one-hot code.
    pub fn cell_demand_series(&self) -> Vec<Vec<f64>> {
        let mut series = vec![vec![0.0; self.n_slots]; self.n_cells];
        for row in &self.rows {
            series[row.location_cell as usize][row.slot as usize] += row.demand;
        }
        series
    }

    /// The location cell of each user.
    pub fn user_cells(&self) -> Vec<usize> {
        let mut cells = vec![0usize; self.n_users];
        for row in &self.rows {
            cells[row.user as usize] = row.location_cell as usize;
        }
        cells
    }

    /// Splits the trace along the time axis: first `frac` of slots for
    /// training, the rest held out.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1)` or a side would be empty.
    pub fn split_time(&self, frac: f64) -> (HotspotTrace, HotspotTrace) {
        assert!(frac > 0.0 && frac < 1.0, "fraction must be in (0, 1)");
        let cut = ((self.n_slots as f64) * frac).round() as usize;
        assert!(
            cut > 0 && cut < self.n_slots,
            "split would leave an empty side"
        );
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for row in &self.rows {
            if (row.slot as usize) < cut {
                a.push(*row);
            } else {
                let mut shifted = *row;
                shifted.slot -= cut as u32;
                b.push(shifted);
            }
        }
        (
            HotspotTrace {
                n_users: self.n_users,
                n_cells: self.n_cells,
                n_services: self.n_services,
                n_slots: cut,
                rows: a,
            },
            HotspotTrace {
                n_users: self.n_users,
                n_cells: self.n_cells,
                n_services: self.n_services,
                n_slots: self.n_slots - cut,
                rows: b,
            },
        )
    }

    /// Renders the trace as CSV (`slot,user,location_cell,service_tag,demand`),
    /// the interchange format for external plotting tools.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 * self.rows.len());
        out.push_str("slot,user,location_cell,service_tag,demand\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                r.slot, r.user, r.location_cell, r.service_tag, r.demand
            );
        }
        out
    }

    /// Parses a trace written by [`HotspotTrace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line on
    /// malformed input.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty input")?;
        if header.trim() != "slot,user,location_cell,service_tag,demand" {
            return Err(format!("unexpected header `{header}`"));
        }
        let mut rows = Vec::new();
        for (idx, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(format!("line {}: expected 5 fields", idx + 2));
            }
            let parse_u32 = |v: &str, what: &str| -> Result<u32, String> {
                v.trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad {what} `{v}`", idx + 2))
            };
            let demand: f64 = fields[4]
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad demand `{}`", idx + 2, fields[4]))?;
            if !demand.is_finite() || demand < 0.0 {
                return Err(format!("line {}: demand out of range", idx + 2));
            }
            rows.push(TraceRow {
                slot: parse_u32(fields[0], "slot")?,
                user: parse_u32(fields[1], "user")?,
                location_cell: parse_u32(fields[2], "cell")?,
                service_tag: parse_u32(fields[3], "service")?,
                demand,
            });
        }
        if rows.is_empty() {
            return Err("no data rows".to_string());
        }
        let n_users = rows.iter().map(|r| r.user).max().unwrap_or(0) as usize + 1;
        let n_cells = rows.iter().map(|r| r.location_cell).max().unwrap_or(0) as usize + 1;
        let n_services = rows.iter().map(|r| r.service_tag).max().unwrap_or(0) as usize + 1;
        let n_slots = rows.iter().map(|r| r.slot).max().unwrap_or(0) as usize + 1;
        Ok(HotspotTrace {
            n_users,
            n_cells,
            n_services,
            n_slots,
            rows,
        })
    }

    /// Serializes the trace into a compact binary buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + self.rows.len() * 24);
        buf.put_u32(self.n_users as u32);
        buf.put_u32(self.n_cells as u32);
        buf.put_u32(self.n_services as u32);
        buf.put_u32(self.n_slots as u32);
        buf.put_u64(self.rows.len() as u64);
        for row in &self.rows {
            buf.put_u32(row.slot);
            buf.put_u32(row.user);
            buf.put_u32(row.location_cell);
            buf.put_u32(row.service_tag);
            buf.put_f64(row.demand);
        }
        buf.freeze()
    }

    /// Deserializes a trace written by [`HotspotTrace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceDecodeError`] if the buffer is truncated.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, TraceDecodeError> {
        if bytes.remaining() < 24 {
            return Err(TraceDecodeError::Truncated);
        }
        let n_users = bytes.get_u32() as usize;
        let n_cells = bytes.get_u32() as usize;
        let n_services = bytes.get_u32() as usize;
        let n_slots = bytes.get_u32() as usize;
        let n_rows = bytes.get_u64() as usize;
        if bytes.remaining() < n_rows * 24 {
            return Err(TraceDecodeError::Truncated);
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            rows.push(TraceRow {
                slot: bytes.get_u32(),
                user: bytes.get_u32(),
                location_cell: bytes.get_u32(),
                service_tag: bytes.get_u32(),
                demand: bytes.get_f64(),
            });
        }
        Ok(HotspotTrace {
            n_users,
            n_cells,
            n_services,
            n_slots,
            rows,
        })
    }
}

/// Error decoding a binary trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The buffer ended before the declared number of rows.
    Truncated,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated => f.write_str("trace buffer was truncated"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_round_trip_all_classes() {
        let enc = OneHot::new(5);
        for c in 0..5 {
            assert_eq!(enc.decode(&enc.encode(c)), c);
        }
    }

    #[test]
    fn one_hot_decodes_soft_codes() {
        let enc = OneHot::new(3);
        assert_eq!(enc.decode(&[0.2, 0.5, 0.3]), 1);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn one_hot_rejects_overflow() {
        let _ = OneHot::new(3).encode(3);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn one_hot_rejects_zero_classes() {
        let _ = OneHot::new(0);
    }

    #[test]
    fn synthesize_shape() {
        let t = HotspotTrace::synthesize(12, 4, 3, 50, 1);
        assert_eq!(t.n_users(), 12);
        assert_eq!(t.n_cells(), 4);
        assert_eq!(t.n_services(), 3);
        assert_eq!(t.n_slots(), 50);
        assert_eq!(t.rows().len(), 12 * 50);
    }

    #[test]
    fn synthesize_is_deterministic() {
        assert_eq!(
            HotspotTrace::synthesize(5, 2, 2, 10, 7),
            HotspotTrace::synthesize(5, 2, 2, 10, 7)
        );
    }

    #[test]
    fn user_series_has_positive_demand() {
        let t = HotspotTrace::synthesize(6, 2, 2, 30, 3);
        for series in t.user_demand_series() {
            assert_eq!(series.len(), 30);
            assert!(series.iter().all(|&d| d > 0.0));
        }
    }

    #[test]
    fn cell_series_sums_members() {
        let t = HotspotTrace::synthesize(6, 2, 2, 10, 3);
        let cells = t.cell_demand_series();
        let users = t.user_demand_series();
        let user_cells = t.user_cells();
        for slot in 0..10 {
            for c in 0..2 {
                let expect: f64 = (0..6)
                    .filter(|&u| user_cells[u] == c)
                    .map(|u| users[u][slot])
                    .sum();
                assert!((cells[c][slot] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn split_time_partitions_slots() {
        let t = HotspotTrace::synthesize(4, 2, 2, 20, 3);
        let (train, test) = t.split_time(0.75);
        assert_eq!(train.n_slots(), 15);
        assert_eq!(test.n_slots(), 5);
        assert_eq!(train.rows().len() + test.rows().len(), t.rows().len());
        // Test slots are re-based to zero.
        assert!(test.rows().iter().all(|r| (r.slot as usize) < 5));
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1)")]
    fn split_rejects_bad_fraction() {
        let t = HotspotTrace::synthesize(2, 2, 2, 10, 3);
        let _ = t.split_time(1.0);
    }

    #[test]
    fn binary_round_trip() {
        let t = HotspotTrace::synthesize(5, 3, 2, 15, 9);
        let decoded = HotspotTrace::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn truncated_buffer_is_error() {
        let t = HotspotTrace::synthesize(5, 3, 2, 15, 9);
        let bytes = t.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 8);
        assert_eq!(
            HotspotTrace::from_bytes(cut),
            Err(TraceDecodeError::Truncated)
        );
        assert_eq!(
            TraceDecodeError::Truncated.to_string(),
            "trace buffer was truncated"
        );
    }

    #[test]
    fn csv_round_trip() {
        let t = HotspotTrace::synthesize(4, 2, 2, 6, 3);
        let csv = t.to_csv();
        let back = HotspotTrace::from_csv(&csv).expect("self-written CSV");
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(HotspotTrace::from_csv("").is_err());
        assert!(HotspotTrace::from_csv("bad,header\n1,2").is_err());
        let good_header = "slot,user,location_cell,service_tag,demand\n";
        assert!(HotspotTrace::from_csv(good_header).is_err(), "no rows");
        let short = format!("{good_header}1,2,3\n");
        assert!(HotspotTrace::from_csv(&short).is_err());
        let nan = format!("{good_header}0,0,0,0,NaN\n");
        assert!(HotspotTrace::from_csv(&nan).is_err());
        let neg = format!("{good_header}0,0,0,0,-1.0\n");
        assert!(HotspotTrace::from_csv(&neg).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let t = HotspotTrace::synthesize(2, 1, 1, 2, 1);
        let csv = format!("{}\n\n", t.to_csv());
        assert_eq!(HotspotTrace::from_csv(&csv).expect("blank ok"), t);
    }

    #[test]
    fn record_matches_process_output() {
        use crate::demand::FixedDemand;
        let reqs: Vec<Request> = (0..3)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    ServiceId(0),
                    Position::default(),
                    BsId(0),
                    0,
                    (i + 1) as f64,
                    1,
                )
            })
            .collect();
        let mut p = FixedDemand::from_requests(&reqs);
        let t = HotspotTrace::record(&reqs, &mut p, 4);
        assert_eq!(t.n_slots(), 4);
        for row in t.rows() {
            assert_eq!(row.demand, (row.user + 1) as f64);
        }
    }
}
