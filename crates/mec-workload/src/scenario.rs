//! Scenario assembly: services + requests + demand process for one episode.

use crate::demand::{DemandModel, FixedDemand, FlashCrowd, FlashCrowdConfig, Mmpp, OnOffHeavyTail};
use crate::request::{Request, RequestId};
use crate::service::{Service, ServiceId, ServiceKind};
use mec_net::delay::InstantiationDelays;
use mec_net::station::Position;
use mec_net::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which demand process a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DemandKind {
    /// Constant demands at the basic level (§IV "given demands").
    Fixed,
    /// Location-correlated flash crowds (default for §V experiments).
    Flash(FlashCrowdConfig),
    /// Markov-modulated per-cell bursts.
    Mmpp {
        /// P(calm → busy) per slot.
        p_busy: f64,
        /// P(busy → calm) per slot.
        p_calm: f64,
        /// Mean extra demand while busy, in data units.
        busy_extra: f64,
    },
    /// Independent heavy-tailed on/off bursts.
    OnOff {
        /// Probability a request bursts in a slot.
        p_on: f64,
        /// Pareto scale of the burst size.
        scale: f64,
        /// Pareto shape (tail index).
        shape: f64,
        /// Truncation cap on burst size.
        cap: f64,
    },
}

/// Configuration for building a [`Scenario`] on top of a topology.
///
/// # Example
///
/// ```
/// use mec_workload::ScenarioConfig;
/// let cfg = ScenarioConfig::paper_defaults().with_requests(80);
/// assert_eq!(cfg.n_requests, 80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of distinct services `|S|`.
    pub n_services: usize,
    /// Number of user requests `|R|`.
    pub n_requests: usize,
    /// Computing resource assigned per unit of data, `C_unit`, in MHz.
    pub c_unit_mhz: f64,
    /// Basic-demand range `ρ_l^bsc` in data units.
    pub basic_demand: (f64, f64),
    /// The demand process family.
    pub demand: DemandKind,
    /// Instantiation-delay range in ms for `d_ins(i, k)`.
    pub instantiation_range_ms: (f64, f64),
}

impl ScenarioConfig {
    /// Defaults matching the paper's evaluation scale: 10 services,
    /// 150 requests, flash-crowd bursts.
    pub fn paper_defaults() -> Self {
        ScenarioConfig {
            n_services: 10,
            n_requests: 150,
            c_unit_mhz: 50.0,
            basic_demand: (1.0, 5.0),
            demand: DemandKind::Flash(FlashCrowdConfig::default()),
            instantiation_range_ms: InstantiationDelays::DEFAULT_RANGE_MS,
        }
    }

    /// A small configuration for unit tests and doc examples.
    pub fn small() -> Self {
        ScenarioConfig {
            n_services: 3,
            n_requests: 12,
            c_unit_mhz: 50.0,
            basic_demand: (1.0, 4.0),
            demand: DemandKind::Fixed,
            instantiation_range_ms: (10.0, 20.0),
        }
    }

    /// Overrides the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.n_requests = n;
        self
    }

    /// Overrides the service count.
    pub fn with_services(mut self, n: usize) -> Self {
        self.n_services = n;
        self
    }

    /// Overrides the demand model.
    pub fn with_demand(mut self, demand: DemandKind) -> Self {
        self.demand = demand;
        self
    }

    /// Builds a [`Scenario`] on the given topology.
    ///
    /// Users are attached to uniformly chosen base stations and placed
    /// inside their coverage disc; the user's location cell is the index
    /// of the nearest macro cell, which acts as the hidden user-group tag.
    ///
    /// # Panics
    ///
    /// Panics if `n_services == 0`, `n_requests == 0`, `c_unit_mhz <= 0`,
    /// the topology is empty, or the basic-demand range is invalid.
    pub fn build(self, topo: &Topology, seed: u64) -> Scenario {
        assert!(self.n_services > 0, "need at least one service");
        assert!(self.n_requests > 0, "need at least one request");
        assert!(self.c_unit_mhz > 0.0, "C_unit must be positive");
        assert!(!topo.is_empty(), "topology must not be empty");
        assert!(
            self.basic_demand.0 >= 0.0 && self.basic_demand.0 <= self.basic_demand.1,
            "invalid basic-demand range"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce_a410);

        let services: Vec<Service> = (0..self.n_services)
            .map(|k| Service::new(ServiceId(k), ServiceKind::ALL[k % ServiceKind::ALL.len()]))
            .collect();

        let macros: Vec<usize> = topo
            .stations()
            .iter()
            .filter(|b| b.tier().is_macro())
            .map(|b| b.id().index())
            .collect();

        let requests: Vec<Request> = (0..self.n_requests)
            .map(|l| {
                let host = &topo.stations()[rng.random_range(0..topo.len())];
                let r = host.radius_m() * rng.random::<f64>().sqrt();
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                let position = Position::new(
                    host.position().x + r * theta.cos(),
                    host.position().y + r * theta.sin(),
                );
                let location_cell = nearest_macro(topo, &macros, position);
                let cover_count = topo.stations_covering(position).len().max(1);
                let basic = if self.basic_demand.0 == self.basic_demand.1 {
                    self.basic_demand.0
                } else {
                    rng.random_range(self.basic_demand.0..=self.basic_demand.1)
                };
                Request::new(
                    RequestId(l),
                    services[rng.random_range(0..self.n_services)].id(),
                    position,
                    host.id(),
                    location_cell,
                    basic,
                    cover_count,
                )
            })
            .collect();

        let demand = match self.demand {
            DemandKind::Fixed => DemandModel::Fixed(FixedDemand::from_requests(&requests)),
            DemandKind::Flash(cfg) => DemandModel::Flash(FlashCrowd::new(&requests, cfg, seed)),
            DemandKind::Mmpp {
                p_busy,
                p_calm,
                busy_extra,
            } => DemandModel::Mmpp(Mmpp::new(&requests, p_busy, p_calm, busy_extra, seed)),
            DemandKind::OnOff {
                p_on,
                scale,
                shape,
                cap,
            } => DemandModel::OnOff(OnOffHeavyTail::new(
                &requests, p_on, scale, shape, cap, seed,
            )),
        };

        let instantiation = InstantiationDelays::generate(
            topo.len(),
            self.n_services,
            self.instantiation_range_ms,
            seed,
        );

        Scenario {
            services,
            requests,
            c_unit_mhz: self.c_unit_mhz,
            n_cells: macros.len().max(1),
            demand,
            instantiation,
        }
    }
}

/// Index (within the macro list) of the macro cell nearest to `p`.
fn nearest_macro(topo: &Topology, macros: &[usize], p: Position) -> usize {
    if macros.is_empty() {
        return 0;
    }
    macros
        .iter()
        .enumerate()
        .min_by(|(_, &a), (_, &b)| {
            let da = topo.stations()[a].position().distance(p);
            let db = topo.stations()[b].position().distance(p);
            da.total_cmp(&db)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// A fully assembled workload scenario: the inputs of Algorithms 1 and 2
/// besides the network itself.
#[derive(Debug, Clone)]
pub struct Scenario {
    services: Vec<Service>,
    requests: Vec<Request>,
    c_unit_mhz: f64,
    n_cells: usize,
    demand: DemandModel,
    instantiation: InstantiationDelays,
}

impl Scenario {
    /// The service catalogue `S`.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// The request set `R`.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// `C_unit` in MHz per data unit.
    pub fn c_unit_mhz(&self) -> f64 {
        self.c_unit_mhz
    }

    /// Number of location cells (macro regions).
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// The demand process (mutable so the simulator can advance it).
    pub fn demand_mut(&mut self) -> &mut DemandModel {
        &mut self.demand
    }

    /// The demand process.
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// Instantiation delays `d_ins(i, k)`.
    pub fn instantiation(&self) -> &InstantiationDelays {
        &self.instantiation
    }

    /// Replaces the demand model (used by ablations that re-run one
    /// scenario under several processes).
    pub fn set_demand(&mut self, demand: DemandModel) {
        use crate::demand::DemandProcess as _;
        assert_eq!(
            demand.n_requests(),
            self.requests.len(),
            "demand process must cover every request"
        );
        self.demand = demand;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandProcess;
    use mec_net::topology::gtitm;
    use mec_net::NetworkConfig;

    fn topo() -> Topology {
        gtitm::generate(40, &NetworkConfig::paper_defaults(), 5)
    }

    #[test]
    fn build_produces_configured_counts() {
        let s = ScenarioConfig::paper_defaults().build(&topo(), 1);
        assert_eq!(s.services().len(), 10);
        assert_eq!(s.requests().len(), 150);
        assert_eq!(s.c_unit_mhz(), 50.0);
        assert_eq!(s.instantiation().n_services(), 10);
        assert_eq!(s.instantiation().n_stations(), 40);
    }

    #[test]
    fn build_is_deterministic() {
        let t = topo();
        let a = ScenarioConfig::small().build(&t, 9);
        let b = ScenarioConfig::small().build(&t, 9);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn requests_reference_valid_services_and_stations() {
        let t = topo();
        let s = ScenarioConfig::paper_defaults().build(&t, 2);
        for r in s.requests() {
            assert!(r.service().index() < s.services().len());
            assert!(r.registered_bs().index() < t.len());
            assert!(r.location_cell() < s.n_cells());
            assert!(r.basic_demand() >= 1.0 && r.basic_demand() <= 5.0);
        }
    }

    #[test]
    fn registered_station_covers_user() {
        let t = topo();
        let s = ScenarioConfig::paper_defaults().build(&t, 3);
        for r in s.requests() {
            let host = t.station(r.registered_bs());
            assert!(
                host.position().distance(r.position()) <= host.radius_m() + 1e-9,
                "user escaped its host's coverage"
            );
        }
    }

    #[test]
    fn fixed_demand_scenario_is_constant() {
        let t = topo();
        let mut s = ScenarioConfig::small().build(&t, 4);
        let before = s.demand().demands();
        s.demand_mut().advance();
        assert_eq!(s.demand().demands(), before);
    }

    #[test]
    fn flash_scenario_respects_floor() {
        let t = topo();
        let cfg =
            ScenarioConfig::small().with_demand(DemandKind::Flash(FlashCrowdConfig::default()));
        let mut s = cfg.build(&t, 4);
        let basics: Vec<f64> = s.requests().iter().map(|r| r.basic_demand()).collect();
        for _ in 0..50 {
            s.demand_mut().advance();
            for (i, d) in s.demand().demands().iter().enumerate() {
                assert!(*d >= basics[i] - 1e-12);
            }
        }
    }

    #[test]
    fn mmpp_and_onoff_kinds_build() {
        let t = topo();
        let mmpp = ScenarioConfig::small()
            .with_demand(DemandKind::Mmpp {
                p_busy: 0.2,
                p_calm: 0.4,
                busy_extra: 8.0,
            })
            .build(&t, 4);
        assert_eq!(mmpp.demand().n_requests(), 12);
        let onoff = ScenarioConfig::small()
            .with_demand(DemandKind::OnOff {
                p_on: 0.3,
                scale: 2.0,
                shape: 1.3,
                cap: 25.0,
            })
            .build(&t, 4);
        assert_eq!(onoff.demand().n_requests(), 12);
    }

    #[test]
    fn set_demand_swaps_process() {
        let t = topo();
        let mut s = ScenarioConfig::small().build(&t, 4);
        let fixed = DemandModel::Fixed(FixedDemand::from_values(vec![9.0; 12]));
        s.set_demand(fixed);
        assert_eq!(s.demand().demand(RequestId(0)), 9.0);
    }

    #[test]
    #[should_panic(expected = "must cover every request")]
    fn set_demand_rejects_wrong_size() {
        let t = topo();
        let mut s = ScenarioConfig::small().build(&t, 4);
        s.set_demand(DemandModel::Fixed(FixedDemand::from_values(vec![1.0])));
    }

    #[test]
    #[should_panic(expected = "need at least one request")]
    fn zero_requests_rejected() {
        let _ = ScenarioConfig::small().with_requests(0).build(&topo(), 1);
    }

    #[test]
    fn builders_override_counts() {
        let cfg = ScenarioConfig::paper_defaults()
            .with_requests(33)
            .with_services(4);
        assert_eq!(cfg.n_requests, 33);
        assert_eq!(cfg.n_services, 4);
    }
}
