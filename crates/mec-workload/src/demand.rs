//! Bursty demand processes `ρ_l(t) = ρ_l^bsc + ρ_l^bst(t)`.
//!
//! Every process guarantees the paper's invariant that the basic demand is
//! the floor: `ρ_l(t) ≥ ρ_l^bsc` for all `t` (the basic demand is defined
//! as "the smallest data volume of each request during a finite-horizon
//! monitoring period").

use crate::request::{Request, RequestId};
use lexcache_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A per-slot stochastic demand process over the requests of a scenario.
pub trait DemandProcess: std::fmt::Debug {
    /// Number of requests covered.
    fn n_requests(&self) -> usize;

    /// Total demand `ρ_l(t)` of request `req` in the current slot, in
    /// data units.
    ///
    /// # Panics
    ///
    /// Implementations panic if `req` is out of range.
    fn demand(&self, req: RequestId) -> f64;

    /// The basic (floor) demand `ρ_l^bsc` of `req`.
    fn basic(&self, req: RequestId) -> f64;

    /// Advances the process to the next time slot.
    fn advance(&mut self);

    /// The demand vector of the current slot.
    fn demands(&self) -> Vec<f64> {
        (0..self.n_requests())
            .map(|i| self.demand(RequestId(i)))
            .collect()
    }
}

/// Constant demands — the "given demands" regime of §IV, where
/// `ρ_l(t)` "does not change as time goes".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedDemand {
    demands: Vec<f64>,
}

impl FixedDemand {
    /// Fixes every request's demand at its basic demand.
    pub fn from_requests(requests: &[Request]) -> Self {
        FixedDemand {
            demands: requests.iter().map(|r| r.basic_demand()).collect(),
        }
    }

    /// Fixes demands at explicit values.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or non-finite.
    pub fn from_values(demands: Vec<f64>) -> Self {
        assert!(
            demands.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be finite and non-negative"
        );
        FixedDemand { demands }
    }
}

impl DemandProcess for FixedDemand {
    fn n_requests(&self) -> usize {
        self.demands.len()
    }

    fn demand(&self, req: RequestId) -> f64 {
        self.demands[req.index()]
    }

    fn basic(&self, req: RequestId) -> f64 {
        self.demands[req.index()]
    }

    fn advance(&mut self) {}
}

/// Configuration of the flash-crowd process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdConfig {
    /// Probability that a new burst event starts in a given slot.
    pub event_probability: f64,
    /// Base peak extra demand per affected request, in data units
    /// (uniform in `[amplitude/2, amplitude]`, then scaled by the cell's
    /// amplitude multiplier).
    pub amplitude: f64,
    /// Base multiplicative decay of an event's intensity per slot
    /// (each cell perturbs it; see [`FlashCrowd`]).
    pub decay: f64,
    /// Fraction of the peak reached in the onset slot (crowds gather
    /// before they peak; this precursor makes imminent bursts learnable).
    pub onset_fraction: f64,
    /// Intensity below which an event is dropped.
    pub cutoff: f64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig {
            event_probability: 0.12,
            amplitude: 20.0,
            decay: 0.6,
            onset_fraction: 0.3,
            cutoff: 0.5,
        }
    }
}

/// One running burst event.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    cell: usize,
    peak: f64,
    /// Slots since onset: 0 = gathering (onset fraction), 1 = peak,
    /// 2+ = geometric decay.
    phase: u32,
}

/// Location-correlated flash crowds: "a sudden event can easily cause a
/// lot of user demand on a femtocell network" (§I).
///
/// Events start at a random location cell with probability
/// `event_probability` per slot and follow a *gather → peak → decay*
/// profile: the onset slot carries `onset_fraction` of the peak (people
/// trickle in before the crowd peaks), then the intensity decays
/// geometrically. Cells are heterogeneous — each draws a persistent
/// amplitude multiplier in `[0.5, 2]` and its own decay in
/// `[0.75·decay, 1.25·decay]` at construction.
///
/// Both properties are the paper's "hidden features": demand is
/// correlated among co-located users, and the *shape* of a cell's bursts
/// (how big, how fast they fade, how they announce themselves) is
/// learnable from small samples by a sequence model conditioned on the
/// cell code, while a fixed-weight ARMA can only average the recent past.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    basics: Vec<f64>,
    cells: Vec<usize>,
    n_cells: usize,
    cfg: FlashCrowdConfig,
    /// Persistent per-cell amplitude multipliers in `[0.5, 2]`.
    cell_amplitude: Vec<f64>,
    /// Persistent per-cell decay factors.
    cell_decay: Vec<f64>,
    events: Vec<Event>,
    current: Vec<f64>,
    rng: StdRng,
}

impl FlashCrowd {
    /// Builds the process over the given requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty, or any config field is out of range
    /// (`event_probability ∉ [0,1]`, `decay ∉ (0,1)`,
    /// `onset_fraction ∉ (0,1]`, non-positive `amplitude`).
    pub fn new(requests: &[Request], cfg: FlashCrowdConfig, seed: u64) -> Self {
        assert!(!requests.is_empty(), "at least one request required");
        assert!(
            (0.0..=1.0).contains(&cfg.event_probability),
            "event probability must be in [0, 1]"
        );
        assert!(
            cfg.decay > 0.0 && cfg.decay < 1.0,
            "decay must be in (0, 1)"
        );
        assert!(
            cfg.onset_fraction > 0.0 && cfg.onset_fraction <= 1.0,
            "onset fraction must be in (0, 1]"
        );
        assert!(cfg.amplitude > 0.0, "amplitude must be positive");
        let basics: Vec<f64> = requests.iter().map(|r| r.basic_demand()).collect();
        let cells: Vec<usize> = requests.iter().map(|r| r.location_cell()).collect();
        let n_cells = cells.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a5_4c40);
        let cell_amplitude = (0..n_cells).map(|_| rng.random_range(0.5..=2.0)).collect();
        let cell_decay = (0..n_cells)
            .map(|_| (cfg.decay * rng.random_range(0.75..=1.25)).clamp(0.05, 0.95))
            .collect();
        let current = basics.clone();
        FlashCrowd {
            basics,
            cells,
            n_cells,
            cfg,
            cell_amplitude,
            cell_decay,
            events: Vec::new(),
            current,
            rng,
        }
    }

    /// Number of distinct location cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of currently active burst events.
    pub fn active_events(&self) -> usize {
        self.events.len()
    }

    /// The persistent amplitude multiplier of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_amplitude(&self, cell: usize) -> f64 {
        self.cell_amplitude[cell]
    }

    /// The persistent decay factor of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_decay(&self, cell: usize) -> f64 {
        self.cell_decay[cell]
    }

    fn intensity(&self, ev: &Event) -> f64 {
        match ev.phase {
            0 => ev.peak * self.cfg.onset_fraction,
            p => ev.peak * self.cell_decay[ev.cell].powi(p as i32 - 1),
        }
    }
}

impl DemandProcess for FlashCrowd {
    fn n_requests(&self) -> usize {
        self.basics.len()
    }

    fn demand(&self, req: RequestId) -> f64 {
        self.current[req.index()]
    }

    fn basic(&self, req: RequestId) -> f64 {
        self.basics[req.index()]
    }

    fn advance(&mut self) {
        // Age running events, drop the exhausted ones.
        for ev in &mut self.events {
            ev.phase += 1;
        }
        let cutoff = self.cfg.cutoff;
        let keep: Vec<bool> = self
            .events
            .iter()
            .map(|ev| self.intensity(ev) >= cutoff)
            .collect();
        let mut idx = 0;
        self.events.retain(|_| {
            let flag = keep[idx];
            idx += 1;
            flag
        });
        // Maybe start a new event in a random cell (onset phase).
        if self.rng.random::<f64>() < self.cfg.event_probability {
            let cell = self.rng.random_range(0..self.n_cells);
            let peak = self
                .rng
                .random_range(self.cfg.amplitude / 2.0..=self.cfg.amplitude)
                * self.cell_amplitude[cell];
            self.events.push(Event {
                cell,
                peak,
                phase: 0,
            });
            obs::mark("workload/burst_onset");
        }
        obs::gauge("workload/active_events", self.events.len() as f64);
        // Realize demands: basic + sum of active bursts in the cell, with
        // small per-user jitter.
        let burst_per_cell: Vec<f64> = (0..self.n_cells)
            .map(|c| {
                self.events
                    .iter()
                    .filter(|ev| ev.cell == c)
                    .map(|ev| self.intensity(ev))
                    .sum()
            })
            .collect();
        for i in 0..self.current.len() {
            let burst = burst_per_cell[self.cells[i]];
            let jitter = if burst > 0.0 {
                self.rng.random_range(0.8..=1.2)
            } else {
                1.0
            };
            self.current[i] = self.basics[i] + burst * jitter;
        }
    }
}

/// Markov-modulated demand: each location cell alternates between a calm
/// and a busy state; busy cells add a uniform bursty volume.
#[derive(Debug, Clone)]
pub struct Mmpp {
    basics: Vec<f64>,
    cells: Vec<usize>,
    n_cells: usize,
    busy: Vec<bool>,
    p_busy: f64,
    p_calm: f64,
    busy_extra: f64,
    current: Vec<f64>,
    rng: StdRng,
}

impl Mmpp {
    /// Number of distinct location cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Builds the process: `p_busy` is P(calm→busy), `p_calm` is
    /// P(busy→calm), `busy_extra` the mean extra demand while busy.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty, probabilities are outside `[0, 1]`
    /// or `busy_extra` is negative.
    pub fn new(requests: &[Request], p_busy: f64, p_calm: f64, busy_extra: f64, seed: u64) -> Self {
        assert!(!requests.is_empty(), "at least one request required");
        assert!((0.0..=1.0).contains(&p_busy), "p_busy must be in [0, 1]");
        assert!((0.0..=1.0).contains(&p_calm), "p_calm must be in [0, 1]");
        assert!(busy_extra >= 0.0, "busy_extra must be non-negative");
        let basics: Vec<f64> = requests.iter().map(|r| r.basic_demand()).collect();
        let cells: Vec<usize> = requests.iter().map(|r| r.location_cell()).collect();
        let n_cells = cells.iter().copied().max().unwrap_or(0) + 1;
        Mmpp {
            current: basics.clone(),
            basics,
            cells,
            n_cells,
            busy: vec![false; n_cells],
            p_busy,
            p_calm,
            busy_extra,
            rng: StdRng::seed_from_u64(seed ^ 0x3333_aaaa),
        }
    }
}

impl DemandProcess for Mmpp {
    fn n_requests(&self) -> usize {
        self.basics.len()
    }

    fn demand(&self, req: RequestId) -> f64 {
        self.current[req.index()]
    }

    fn basic(&self, req: RequestId) -> f64 {
        self.basics[req.index()]
    }

    fn advance(&mut self) {
        for b in self.busy.iter_mut() {
            let flip: f64 = self.rng.random();
            *b = if *b {
                flip >= self.p_calm
            } else {
                flip < self.p_busy
            };
        }
        for i in 0..self.current.len() {
            let extra = if self.busy[self.cells[i]] {
                self.rng.random_range(0.5..=1.5) * self.busy_extra
            } else {
                0.0
            };
            self.current[i] = self.basics[i] + extra;
        }
    }
}

/// Heavy-tailed on/off bursts per request: each request independently
/// turns "on" with Pareto-distributed burst sizes, producing self-similar
/// aggregate traffic (the multimedia burstiness of [24]).
#[derive(Debug, Clone)]
pub struct OnOffHeavyTail {
    basics: Vec<f64>,
    p_on: f64,
    pareto_scale: f64,
    pareto_shape: f64,
    cap: f64,
    current: Vec<f64>,
    rng: StdRng,
}

impl OnOffHeavyTail {
    /// Builds the process. Bursts are `scale / U^(1/shape)` (Pareto),
    /// truncated at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty, `p_on ∉ [0,1]`, or scale/shape/cap
    /// are non-positive.
    pub fn new(
        requests: &[Request],
        p_on: f64,
        pareto_scale: f64,
        pareto_shape: f64,
        cap: f64,
        seed: u64,
    ) -> Self {
        assert!(!requests.is_empty(), "at least one request required");
        assert!((0.0..=1.0).contains(&p_on), "p_on must be in [0, 1]");
        assert!(pareto_scale > 0.0, "pareto scale must be positive");
        assert!(pareto_shape > 0.0, "pareto shape must be positive");
        assert!(cap > 0.0, "cap must be positive");
        let basics: Vec<f64> = requests.iter().map(|r| r.basic_demand()).collect();
        OnOffHeavyTail {
            current: basics.clone(),
            basics,
            p_on,
            pareto_scale,
            pareto_shape,
            cap,
            rng: StdRng::seed_from_u64(seed ^ 0x0a0f_0a0f),
        }
    }
}

impl DemandProcess for OnOffHeavyTail {
    fn n_requests(&self) -> usize {
        self.basics.len()
    }

    fn demand(&self, req: RequestId) -> f64 {
        self.current[req.index()]
    }

    fn basic(&self, req: RequestId) -> f64 {
        self.basics[req.index()]
    }

    fn advance(&mut self) {
        for i in 0..self.current.len() {
            let burst = if self.rng.random::<f64>() < self.p_on {
                let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
                (self.pareto_scale / u.powf(1.0 / self.pareto_shape)).min(self.cap)
            } else {
                0.0
            };
            self.current[i] = self.basics[i] + burst;
        }
    }
}

/// A closed enum over the shipped demand processes, so scenarios stay
/// `Clone` without boxing.
#[derive(Debug, Clone)]
pub enum DemandModel {
    /// Constant demands (§IV "given demands").
    Fixed(FixedDemand),
    /// Location-correlated flash crowds.
    Flash(FlashCrowd),
    /// Markov-modulated per-cell bursts.
    Mmpp(Mmpp),
    /// Heavy-tailed on/off bursts.
    OnOff(OnOffHeavyTail),
}

impl DemandProcess for DemandModel {
    fn n_requests(&self) -> usize {
        match self {
            DemandModel::Fixed(p) => p.n_requests(),
            DemandModel::Flash(p) => p.n_requests(),
            DemandModel::Mmpp(p) => p.n_requests(),
            DemandModel::OnOff(p) => p.n_requests(),
        }
    }

    fn demand(&self, req: RequestId) -> f64 {
        match self {
            DemandModel::Fixed(p) => p.demand(req),
            DemandModel::Flash(p) => p.demand(req),
            DemandModel::Mmpp(p) => p.demand(req),
            DemandModel::OnOff(p) => p.demand(req),
        }
    }

    fn basic(&self, req: RequestId) -> f64 {
        match self {
            DemandModel::Fixed(p) => p.basic(req),
            DemandModel::Flash(p) => p.basic(req),
            DemandModel::Mmpp(p) => p.basic(req),
            DemandModel::OnOff(p) => p.basic(req),
        }
    }

    fn advance(&mut self) {
        match self {
            DemandModel::Fixed(p) => p.advance(),
            DemandModel::Flash(p) => p.advance(),
            DemandModel::Mmpp(p) => p.advance(),
            DemandModel::OnOff(p) => p.advance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceId;
    use mec_net::station::Position;
    use mec_net::BsId;

    fn requests(n: usize, n_cells: usize) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    ServiceId(i % 3),
                    Position::new(i as f64, 0.0),
                    BsId(i % 5),
                    i % n_cells,
                    2.0 + (i % 4) as f64,
                    1 + i % 3,
                )
            })
            .collect()
    }

    #[test]
    fn fixed_demand_never_changes() {
        let reqs = requests(10, 3);
        let mut p = FixedDemand::from_requests(&reqs);
        let before = p.demands();
        for _ in 0..20 {
            p.advance();
        }
        assert_eq!(p.demands(), before);
        assert_eq!(p.n_requests(), 10);
    }

    #[test]
    fn fixed_from_values_round_trips() {
        let p = FixedDemand::from_values(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.demand(RequestId(1)), 2.0);
        assert_eq!(p.basic(RequestId(2)), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn fixed_rejects_negative() {
        let _ = FixedDemand::from_values(vec![1.0, -2.0]);
    }

    #[test]
    fn flash_crowd_respects_basic_floor() {
        let reqs = requests(20, 4);
        let mut p = FlashCrowd::new(&reqs, FlashCrowdConfig::default(), 5);
        for _ in 0..200 {
            p.advance();
            for r in &reqs {
                assert!(
                    p.demand(r.id()) >= r.basic_demand() - 1e-12,
                    "demand below basic floor"
                );
            }
        }
    }

    #[test]
    fn flash_crowd_produces_bursts() {
        let reqs = requests(20, 4);
        let mut p = FlashCrowd::new(&reqs, FlashCrowdConfig::default(), 5);
        let mut max_over_basic: f64 = 0.0;
        for _ in 0..300 {
            p.advance();
            for r in &reqs {
                max_over_basic = max_over_basic.max(p.demand(r.id()) - r.basic_demand());
            }
        }
        assert!(max_over_basic > 5.0, "no bursts observed: {max_over_basic}");
    }

    #[test]
    fn flash_crowd_bursts_are_cell_correlated() {
        let reqs = requests(40, 2);
        let mut p = FlashCrowd::new(
            &reqs,
            FlashCrowdConfig {
                event_probability: 1.0,
                ..FlashCrowdConfig::default()
            },
            5,
        );
        p.advance();
        // With p=1 an event fired in exactly one cell this slot; each
        // member of the affected cell must be elevated.
        let burst_of = |i: usize| p.demand(RequestId(i)) - reqs[i].basic_demand();
        let cell0: Vec<f64> = (0..40).filter(|i| i % 2 == 0).map(burst_of).collect();
        let cell1: Vec<f64> = (0..40).filter(|i| i % 2 == 1).map(burst_of).collect();
        let cell0_hot = cell0.iter().all(|&b| b > 0.0);
        let cell1_hot = cell1.iter().all(|&b| b > 0.0);
        assert!(
            cell0_hot || cell1_hot,
            "one cell should be uniformly bursting"
        );
    }

    #[test]
    fn flash_crowd_decays_events() {
        let reqs = requests(4, 1);
        let cfg = FlashCrowdConfig {
            event_probability: 0.0, // no new events after we inject one
            ..FlashCrowdConfig::default()
        };
        let mut p = FlashCrowd::new(&reqs, cfg, 5);
        p.events.push(Event {
            cell: 0,
            peak: 10.0,
            phase: 1, // already at peak
        });
        let d1 = p.demand(RequestId(0)) + 10.0;
        for _ in 0..30 {
            p.advance();
        }
        let d2 = p.demand(RequestId(0));
        assert!(d1 > d2, "burst should decay: {d1} -> {d2}");
        assert_eq!(p.active_events(), 0, "event should expire below cutoff");
    }

    #[test]
    fn flash_crowd_deterministic_per_seed() {
        let reqs = requests(10, 3);
        let mut a = FlashCrowd::new(&reqs, FlashCrowdConfig::default(), 9);
        let mut b = FlashCrowd::new(&reqs, FlashCrowdConfig::default(), 9);
        for _ in 0..50 {
            a.advance();
            b.advance();
        }
        assert_eq!(a.demands(), b.demands());
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1)")]
    fn flash_crowd_rejects_bad_decay() {
        let reqs = requests(2, 1);
        let _ = FlashCrowd::new(
            &reqs,
            FlashCrowdConfig {
                decay: 1.0,
                ..FlashCrowdConfig::default()
            },
            1,
        );
    }

    #[test]
    fn mmpp_respects_floor_and_bursts() {
        let reqs = requests(10, 2);
        let mut p = Mmpp::new(&reqs, 0.3, 0.3, 10.0, 3);
        let mut saw_burst = false;
        for _ in 0..100 {
            p.advance();
            for r in &reqs {
                let d = p.demand(r.id());
                assert!(d >= r.basic_demand() - 1e-12);
                if d > r.basic_demand() + 1.0 {
                    saw_burst = true;
                }
            }
        }
        assert!(saw_burst);
    }

    #[test]
    fn mmpp_zero_transition_stays_calm() {
        let reqs = requests(6, 2);
        let mut p = Mmpp::new(&reqs, 0.0, 0.5, 10.0, 3);
        for _ in 0..50 {
            p.advance();
            for r in &reqs {
                assert_eq!(p.demand(r.id()), r.basic_demand());
            }
        }
    }

    #[test]
    fn onoff_bursts_are_capped() {
        let reqs = requests(8, 2);
        let mut p = OnOffHeavyTail::new(&reqs, 0.5, 2.0, 1.2, 30.0, 3);
        for _ in 0..500 {
            p.advance();
            for r in &reqs {
                let d = p.demand(r.id());
                assert!(d >= r.basic_demand() - 1e-12);
                assert!(d <= r.basic_demand() + 30.0 + 1e-9);
            }
        }
    }

    #[test]
    fn onoff_heavy_tail_exceeds_scale_sometimes() {
        let reqs = requests(8, 2);
        let mut p = OnOffHeavyTail::new(&reqs, 1.0, 2.0, 1.2, 100.0, 3);
        let mut max_burst: f64 = 0.0;
        for _ in 0..500 {
            p.advance();
            for r in &reqs {
                max_burst = max_burst.max(p.demand(r.id()) - r.basic_demand());
            }
        }
        assert!(max_burst > 10.0, "heavy tail should exceed 5x scale");
    }

    #[test]
    fn demand_model_delegates() {
        let reqs = requests(5, 2);
        let mut m = DemandModel::Fixed(FixedDemand::from_requests(&reqs));
        assert_eq!(m.n_requests(), 5);
        let before = m.demands();
        m.advance();
        assert_eq!(m.demands(), before);
        assert_eq!(m.basic(RequestId(0)), reqs[0].basic_demand());
    }
}
