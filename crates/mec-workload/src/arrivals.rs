//! Deterministic arrival-time expansion of per-slot demand.
//!
//! The workload layer produces *per-slot* demand vectors; the
//! open-loop queue core needs each request to arrive at a concrete
//! instant *inside* the slot. This module derives that instant purely
//! from `(seed, slot, request)` with a SplitMix64 finalizer — no
//! shared RNG stream is consumed, so enabling the queue layer cannot
//! perturb the demand/delay/fault draws of an otherwise identical
//! episode (the property the exact-equivalence golden test pins).

/// One request's arrival instant within a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Index of the request within the slot's demand vector.
    pub request: usize,
    /// Offset from the slot start in ms, in `[0, slot_ms)` (up to
    /// one final-rounding ulp that may land exactly on `slot_ms`).
    pub offset_ms: f64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, the standard
/// seed-stretcher (same constants as `rand`'s `SplitMix64`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic arrival offset of `request` in `slot` (1-based),
/// uniform over `[0, slot_ms)` under the stateless hash of
/// `(seed, slot, request)`.
pub fn arrival_offset_ms(seed: u64, slot: usize, request: usize, slot_ms: f64) -> f64 {
    assert!(
        slot_ms.is_finite() && slot_ms > 0.0,
        "slot length must be positive and finite, got {slot_ms}"
    );
    let mut h = seed ^ splitmix64(slot as u64);
    h = splitmix64(h.wrapping_add((request as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    // Top 53 bits → uniform in [0, 1) at full f64 mantissa precision.
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit * slot_ms
}

/// Expands a slot's `n_requests` into arrival events sorted by
/// arrival time (ties — which the 53-bit draw makes astronomically
/// rare — break by request index). The sort key is the offset's bit
/// pattern, exact and total for non-negative doubles (lexlint LX01:
/// no `partial_cmp`).
pub fn expand_slot(seed: u64, slot: usize, n_requests: usize, slot_ms: f64) -> Vec<Arrival> {
    let mut arrivals: Vec<Arrival> = (0..n_requests)
        .map(|request| Arrival {
            request,
            offset_ms: arrival_offset_ms(seed, slot, request, slot_ms),
        })
        .collect();
    arrivals.sort_by_key(|a| (a.offset_ms.to_bits(), a.request));
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_deterministic_and_inside_the_slot() {
        for slot in 1..=5 {
            for request in 0..50 {
                let a = arrival_offset_ms(42, slot, request, 100.0);
                let b = arrival_offset_ms(42, slot, request, 100.0);
                assert_eq!(a.to_bits(), b.to_bits());
                assert!((0.0..=100.0).contains(&a));
            }
        }
    }

    #[test]
    fn different_coordinates_decorrelate() {
        let base = arrival_offset_ms(42, 1, 0, 100.0);
        assert_ne!(base.to_bits(), arrival_offset_ms(43, 1, 0, 100.0).to_bits());
        assert_ne!(base.to_bits(), arrival_offset_ms(42, 2, 0, 100.0).to_bits());
        assert_ne!(base.to_bits(), arrival_offset_ms(42, 1, 1, 100.0).to_bits());
    }

    #[test]
    fn expansion_is_sorted_and_complete() {
        let arrivals = expand_slot(7, 3, 40, 100.0);
        assert_eq!(arrivals.len(), 40);
        for w in arrivals.windows(2) {
            assert!(
                (w[0].offset_ms.to_bits(), w[0].request) < (w[1].offset_ms.to_bits(), w[1].request)
            );
        }
        let mut seen: Vec<usize> = arrivals.iter().map(|a| a.request).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn offsets_spread_across_the_slot() {
        // Not a statistical test — just a guard against a degenerate
        // hash that parks every arrival at the same instant.
        let arrivals = expand_slot(1, 1, 100, 100.0);
        let lo = arrivals.iter().filter(|a| a.offset_ms < 50.0).count();
        assert!(lo > 20 && lo < 80, "suspiciously skewed split: {lo}/100");
    }
}
