//! Network services cached from remote data centres to base stations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service inside one [`crate::Scenario`] (dense `0..k`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServiceId(pub usize);

impl ServiceId {
    /// Dense index of this service.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

impl From<usize> for ServiceId {
    fn from(i: usize) -> Self {
        ServiceId(i)
    }
}

/// The application family of a service — the paper motivates VR, cloud
/// gaming and IoT data processing as the resource-hungry services worth
/// caching at the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Virtual-reality rendering/inference (the museum example of §III-B).
    VirtualReality,
    /// Cloud gaming.
    CloudGaming,
    /// IoT stream processing.
    IotProcessing,
    /// Video analytics / AI inference.
    VideoAnalytics,
}

impl ServiceKind {
    /// All kinds, in declaration order.
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::VirtualReality,
        ServiceKind::CloudGaming,
        ServiceKind::IotProcessing,
        ServiceKind::VideoAnalytics,
    ];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::VirtualReality => "vr",
            ServiceKind::CloudGaming => "gaming",
            ServiceKind::IotProcessing => "iot",
            ServiceKind::VideoAnalytics => "video",
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cacheable network service `S_k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    id: ServiceId,
    kind: ServiceKind,
}

impl Service {
    /// Creates a service.
    pub fn new(id: ServiceId, kind: ServiceKind) -> Self {
        Service { id, kind }
    }

    /// The service identifier.
    #[inline]
    pub fn id(&self) -> ServiceId {
        self.id
    }

    /// The application family.
    #[inline]
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_conversion() {
        assert_eq!(ServiceId(4).to_string(), "svc4");
        assert_eq!(ServiceId::from(4).index(), 4);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ServiceKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ServiceKind::ALL.len());
    }

    #[test]
    fn service_getters() {
        let s = Service::new(ServiceId(2), ServiceKind::VirtualReality);
        assert_eq!(s.id(), ServiceId(2));
        assert_eq!(s.kind(), ServiceKind::VirtualReality);
        assert_eq!(s.kind().to_string(), "vr");
    }
}
