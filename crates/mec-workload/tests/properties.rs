//! Property-based tests of the workload substrate: every demand process
//! respects the basic-demand floor (the paper's definition of ρ^bsc),
//! traces round-trip through their binary codec, and one-hot coding is
//! lossless.

use mec_net::station::Position;
use mec_net::BsId;
use mec_workload::demand::{DemandProcess, FlashCrowd, FlashCrowdConfig, Mmpp, OnOffHeavyTail};
use mec_workload::{HotspotTrace, OneHot, Request, RequestId, ServiceId};
use proptest::prelude::*;

fn requests(n: usize, n_cells: usize, base: f64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                RequestId(i),
                ServiceId(i % 3),
                Position::new(i as f64, 0.0),
                BsId(i % 4),
                i % n_cells,
                base + (i % 3) as f64,
                1,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flash_crowd_never_dips_below_basics(
        n in 1usize..20,
        n_cells in 1usize..5,
        seed in 0u64..1000,
        event_probability in 0.0..1.0f64,
        amplitude in 0.5..40.0f64,
        decay in 0.05..0.95f64,
    ) {
        let reqs = requests(n, n_cells, 1.0);
        let cfg = FlashCrowdConfig {
            event_probability,
            amplitude,
            decay,
            onset_fraction: 0.3,
            cutoff: 0.5,
        };
        let mut p = FlashCrowd::new(&reqs, cfg, seed);
        for _ in 0..40 {
            p.advance();
            for r in &reqs {
                prop_assert!(p.demand(r.id()) >= r.basic_demand() - 1e-12);
            }
        }
    }

    #[test]
    fn mmpp_never_dips_below_basics(
        n in 1usize..15,
        seed in 0u64..1000,
        p_busy in 0.0..1.0f64,
        p_calm in 0.0..1.0f64,
        extra in 0.0..30.0f64,
    ) {
        let reqs = requests(n, 3.min(n), 2.0);
        let mut p = Mmpp::new(&reqs, p_busy, p_calm, extra, seed);
        for _ in 0..30 {
            p.advance();
            for r in &reqs {
                prop_assert!(p.demand(r.id()) >= r.basic_demand() - 1e-12);
            }
        }
    }

    #[test]
    fn onoff_bursts_bounded_by_cap(
        n in 1usize..15,
        seed in 0u64..1000,
        p_on in 0.0..1.0f64,
        scale in 0.5..5.0f64,
        shape in 0.5..3.0f64,
        cap in 1.0..50.0f64,
    ) {
        let reqs = requests(n, 2.min(n), 1.5);
        let mut p = OnOffHeavyTail::new(&reqs, p_on, scale, shape, cap, seed);
        for _ in 0..30 {
            p.advance();
            for r in &reqs {
                let d = p.demand(r.id());
                prop_assert!(d >= r.basic_demand() - 1e-12);
                prop_assert!(d <= r.basic_demand() + cap + 1e-9);
            }
        }
    }

    #[test]
    fn one_hot_round_trips(n_classes in 1usize..40, class_seed in 0usize..1000) {
        let class = class_seed % n_classes;
        let enc = OneHot::new(n_classes);
        prop_assert_eq!(enc.decode(&enc.encode(class)), class);
    }

    #[test]
    fn trace_binary_codec_round_trips(
        users in 1usize..8,
        cells in 1usize..4,
        services in 1usize..3,
        slots in 1usize..15,
        seed in 0u64..1000,
    ) {
        let t = HotspotTrace::synthesize(users, cells, services, slots, seed);
        let decoded = HotspotTrace::from_bytes(t.to_bytes()).expect("self-encoded");
        prop_assert_eq!(decoded, t);
    }

    #[test]
    fn trace_split_preserves_rows(
        slots in 4usize..30,
        frac_pct in 20usize..80,
        seed in 0u64..500,
    ) {
        let t = HotspotTrace::synthesize(5, 2, 2, slots, seed);
        let (a, b) = t.split_time(frac_pct as f64 / 100.0);
        prop_assert_eq!(a.rows().len() + b.rows().len(), t.rows().len());
        prop_assert_eq!(a.n_slots() + b.n_slots(), t.n_slots());
    }
}
