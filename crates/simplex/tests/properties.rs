//! Property-based tests of the LP substrate: the dense two-phase simplex
//! is checked against first principles (feasibility, local optimality
//! versus random feasible points) and the specialized transportation
//! solver is checked against the dense solver as an oracle.

use proptest::prelude::*;
use simplex::transport::TransportProblem;
use simplex::{CachingLp, LinearProgram, Relation, SolveError};

/// Strategy: a random bounded-feasible minimization LP
/// `min c·x  s.t.  x_j ≤ u_j, Σ x ≥ r`, which is always feasible when
/// `Σ u ≥ r` (we enforce that) and always bounded (costs ≥ 0).
fn bounded_lp() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (2usize..6)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0.0..10.0f64, n),
                proptest::collection::vec(1.0..5.0f64, n),
            )
        })
        .prop_flat_map(|(costs, ubs)| {
            let total: f64 = ubs.iter().sum();
            (Just(costs), Just(ubs), 0.1..(total * 0.9))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_simplex_solution_is_feasible_and_beats_greedy_points(
        (costs, ubs, required) in bounded_lp()
    ) {
        let n = costs.len();
        let mut lp = LinearProgram::minimize(costs.clone());
        for (j, &u) in ubs.iter().enumerate() {
            lp.constrain(vec![(j, 1.0)], Relation::Le, u);
        }
        lp.constrain((0..n).map(|j| (j, 1.0)).collect(), Relation::Ge, required);
        let sol = simplex::dense::solve(&lp).expect("feasible by construction");
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));

        // Oracle: the true optimum fills cheapest variables first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        let mut left = required;
        let mut best = 0.0;
        for &j in &order {
            let take = left.min(ubs[j]);
            best += take * costs[j];
            left -= take;
            if left <= 0.0 {
                break;
            }
        }
        prop_assert!(
            (sol.objective - best).abs() < 1e-6,
            "simplex {} vs greedy-oracle {}",
            sol.objective,
            best
        );
    }

    #[test]
    fn transport_matches_dense_oracle(
        m in 2usize..4,
        n in 2usize..4,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let supply: Vec<f64> = (0..m).map(|_| rng.random_range(1.0..6.0f64).round()).collect();
        let total: f64 = supply.iter().sum();
        let mut capacity: Vec<f64> = (0..n).map(|_| rng.random_range(1.0..6.0f64).round()).collect();
        let cap_total: f64 = capacity.iter().sum();
        if cap_total < total {
            capacity[0] += total - cap_total;
        }
        let cost: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.random_range(1.0..9.0f64).round()).collect())
            .collect();
        let fast = TransportProblem::new(supply.clone(), capacity.clone(), cost.clone())
            .solve()
            .expect("balanced by construction");

        let mut flat = Vec::new();
        for row in &cost {
            flat.extend_from_slice(row);
        }
        let mut lp = LinearProgram::minimize(flat);
        for i in 0..m {
            lp.constrain((0..n).map(|j| (i * n + j, 1.0)).collect(), Relation::Eq, supply[i]);
        }
        for j in 0..n {
            lp.constrain((0..m).map(|i| (i * n + j, 1.0)).collect(), Relation::Le, capacity[j]);
        }
        let exact = simplex::dense::solve(&lp).expect("feasible");
        prop_assert!(
            (fast.objective - exact.objective).abs() < 1e-5,
            "transport {} vs dense {}",
            fast.objective,
            exact.objective
        );
    }

    #[test]
    fn caching_lp_fast_solution_is_always_feasible(
        nr in 2usize..6,
        ns in 2usize..5,
        seed in 0u64..500,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let demand: Vec<f64> = (0..nr).map(|_| rng.random_range(0.5..4.0)).collect();
        let total: f64 = demand.iter().sum();
        let mut capacity: Vec<f64> = (0..ns).map(|_| rng.random_range(1.0..5.0)).collect();
        let cap_total: f64 = capacity.iter().sum();
        if cap_total < total {
            capacity[0] += total - cap_total + 0.5;
        }
        let unit_cost: Vec<Vec<f64>> = (0..nr)
            .map(|_| (0..ns).map(|_| rng.random_range(1.0..30.0)).collect())
            .collect();
        let inst: Vec<Vec<f64>> = (0..ns)
            .map(|_| (0..2).map(|_| rng.random_range(0.0..3.0)).collect())
            .collect();
        let service_of: Vec<usize> = (0..nr).map(|_| rng.random_range(0..2)).collect();
        let lp = CachingLp::new(demand, service_of, unit_cost, capacity, inst, 2);
        let sol = lp.solve_fast().expect("capacity fits");
        prop_assert!(sol.is_feasible(&lp, 1e-6));
        // Candidate sets shrink monotonically in gamma.
        let loose = sol.candidate_sets(0.05);
        let tight = sol.candidate_sets(0.5);
        for (a, b) in loose.iter().zip(&tight) {
            for i in b {
                prop_assert!(a.contains(i), "tight candidate missing from loose set");
            }
        }
    }

    #[test]
    fn over_demand_is_reported_not_mangled(
        ns in 1usize..4,
        seed in 0u64..100,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let capacity: Vec<f64> = (0..ns).map(|_| rng.random_range(0.5..2.0)).collect();
        let total: f64 = capacity.iter().sum();
        let lp = CachingLp::new(
            vec![total + 1.0],
            vec![0],
            vec![vec![1.0; ns]],
            capacity,
            vec![vec![0.0]; ns],
            1,
        );
        prop_assert_eq!(lp.solve_fast(), Err(SolveError::Infeasible));
    }
}
