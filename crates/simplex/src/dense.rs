//! Two-phase dense primal simplex.
//!
//! A textbook tableau implementation: phase 1 drives artificial variables
//! to zero, phase 2 optimizes the real objective. The entering rule is
//! Dantzig's (most negative reduced cost) for speed, switching to Bland's
//! rule after a pivot budget to guarantee termination under degeneracy.
//!
//! The solver is exact up to floating-point tolerance and is used directly
//! for small caching LPs and as the oracle in property tests of the
//! specialized transportation solver.

use crate::problem::{LinearProgram, Relation, Solution, SolveError};
use lexcache_obs as obs;

const TOL: f64 = 1e-9;

/// Solves `lp` with a default pivot limit proportional to its size.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when no point satisfies the
/// constraints, [`SolveError::Unbounded`] when the objective can decrease
/// without bound, and [`SolveError::IterationLimit`] if the pivot budget
/// is exhausted.
///
/// # Example
///
/// ```
/// use simplex::{LinearProgram, Relation};
/// // min x0 + x1  s.t. x0 + x1 >= 2
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0);
/// let sol = simplex::dense::solve(&lp)?;
/// assert!((sol.objective - 2.0).abs() < 1e-9);
/// # Ok::<(), simplex::SolveError>(())
/// ```
pub fn solve(lp: &LinearProgram) -> Result<Solution, SolveError> {
    let budget = 200 * (lp.n_vars() + lp.n_constraints() + 10);
    solve_with_limit(lp, budget)
}

/// Solves `lp` with an explicit pivot limit.
///
/// # Errors
///
/// As for [`solve`].
pub fn solve_with_limit(lp: &LinearProgram, max_pivots: usize) -> Result<Solution, SolveError> {
    let mut pivots = 0usize;
    let mut bland = 0usize;
    let result = run_two_phase(lp, max_pivots, &mut pivots, &mut bland);
    if obs::is_enabled() {
        obs::counter("simplex/pivots", pivots as u64);
        obs::counter("simplex/bland_pivots", bland as u64);
        obs::gauge("simplex/rows", lp.n_constraints() as f64);
        obs::gauge("simplex/cols", lp.n_vars() as f64);
    }
    result
}

fn run_two_phase(
    lp: &LinearProgram,
    max_pivots: usize,
    pivots: &mut usize,
    bland: &mut usize,
) -> Result<Solution, SolveError> {
    let mut t = Tableau::build(lp);

    // Phase 1: minimize the sum of artificials.
    if t.n_artificial > 0 {
        let mut c1 = vec![0.0; t.n_cols];
        for j in t.artificial_cols() {
            c1[j] = 1.0;
        }
        t.reset_cost_row(&c1);
        t.optimize(pivots, max_pivots, None, bland)?;
        if t.objective() > 1e-7 {
            return Err(SolveError::Infeasible);
        }
        t.expel_artificials();
    }

    // Phase 2: minimize the real objective (artificials barred).
    let mut c2 = vec![0.0; t.n_cols];
    c2[..lp.n_vars()].copy_from_slice(lp.objective());
    t.reset_cost_row(&c2);
    let bar_from = t.first_artificial_col();
    t.optimize(pivots, max_pivots, bar_from, bland)?;

    let mut x = vec![0.0; lp.n_vars()];
    for (i, &b) in t.basis.iter().enumerate() {
        if b < lp.n_vars() {
            x[b] = t.rhs(i).max(0.0);
        }
    }
    Ok(Solution {
        objective: lp.objective_value(&x),
        x,
        iterations: *pivots,
    })
}

struct Tableau {
    /// `rows[i]` holds the m tableau rows, each of length `n_cols + 1`
    /// with the rhs in the last slot.
    rows: Vec<Vec<f64>>,
    /// Reduced-cost row, length `n_cols + 1` (last slot = -objective).
    cost: Vec<f64>,
    /// Current cost vector the cost row corresponds to.
    c: Vec<f64>,
    basis: Vec<usize>,
    n_cols: usize,
    n_structural: usize,
    n_artificial: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.n_constraints();
        let n = lp.n_vars();
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for con in lp.constraints() {
            let rhs_neg = con.rhs < 0.0;
            let rel = effective_relation(con.relation, rhs_neg);
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let n_cols = n + n_slack + n_art;
        let mut rows = vec![vec![0.0; n_cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = n;
        let mut art_at = n + n_slack;
        for (i, con) in lp.constraints().iter().enumerate() {
            let sign = if con.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(j, a) in &con.terms {
                rows[i][j] = sign * a;
            }
            rows[i][n_cols] = sign * con.rhs;
            let rel = effective_relation(con.relation, con.rhs < 0.0);
            match rel {
                Relation::Le => {
                    rows[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Relation::Ge => {
                    rows[i][slack_at] = -1.0;
                    slack_at += 1;
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
                Relation::Eq => {
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }
        Tableau {
            rows,
            cost: vec![0.0; n_cols + 1],
            c: vec![0.0; n_cols],
            basis,
            n_cols,
            n_structural: n + n_slack,
            n_artificial: n_art,
        }
    }

    fn artificial_cols(&self) -> std::ops::Range<usize> {
        self.n_structural..self.n_cols
    }

    fn first_artificial_col(&self) -> Option<usize> {
        (self.n_artificial > 0).then_some(self.n_structural)
    }

    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.n_cols]
    }

    fn objective(&self) -> f64 {
        -self.cost[self.n_cols]
    }

    /// Recomputes the reduced-cost row for cost vector `c` under the
    /// current basis: `r = c − c_B·(B⁻¹A)` (the rows already hold
    /// `B⁻¹A | B⁻¹b`).
    fn reset_cost_row(&mut self, c: &[f64]) {
        self.c = c.to_vec();
        let n_cols = self.n_cols;
        let mut row = vec![0.0; n_cols + 1];
        row[..n_cols].copy_from_slice(c);
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = c[b];
            // lexlint: allow(LX06): exact-zero sparsity skip — an eps band would change the pivot arithmetic
            if cb != 0.0 {
                for j in 0..=n_cols {
                    row[j] -= cb * self.rows[i][j];
                }
            }
        }
        self.cost = row;
    }

    /// Primal simplex iterations until optimal. `barred_from` bars
    /// entering columns at or beyond the given index (artificials in
    /// phase 2). `bland` counts the degenerate-regime pivots taken under
    /// Bland's rule.
    fn optimize(
        &mut self,
        pivots: &mut usize,
        max_pivots: usize,
        barred_from: Option<usize>,
        bland: &mut usize,
    ) -> Result<(), SolveError> {
        let bar = barred_from.unwrap_or(self.n_cols);
        let bland_after = max_pivots / 2;
        loop {
            let use_bland = *pivots >= bland_after;
            let enter = self.entering(bar, use_bland);
            let Some(j) = enter else {
                return Ok(());
            };
            let Some(i) = self.leaving(j, use_bland) else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(i, j);
            *pivots += 1;
            if use_bland {
                *bland += 1;
            }
            if *pivots >= max_pivots {
                return Err(SolveError::IterationLimit);
            }
        }
    }

    fn entering(&self, bar: usize, bland: bool) -> Option<usize> {
        if bland {
            (0..bar.min(self.n_cols)).find(|&j| self.cost[j] < -TOL)
        } else {
            let mut best = None;
            let mut best_val = -TOL;
            for j in 0..bar.min(self.n_cols) {
                if self.cost[j] < best_val {
                    best_val = self.cost[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    fn leaving(&self, j: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][j];
            if a > TOL {
                let ratio = self.rhs(i) / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        let better = ratio < br - TOL
                            || (ratio < br + TOL
                                && if bland {
                                    self.basis[i] < self.basis[bi]
                                } else {
                                    self.rows[i][j] > self.rows[bi][j]
                                });
                        if better {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    fn pivot(&mut self, i: usize, j: usize) {
        let n_cols = self.n_cols;
        let piv = self.rows[i][j];
        debug_assert!(piv.abs() > TOL, "pivot on a near-zero element");
        let inv = 1.0 / piv;
        for v in self.rows[i].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[i].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r != i {
                let factor = row[j];
                // lexlint: allow(LX06): exact-zero sparsity skip — an eps band would change the pivot arithmetic
                if factor != 0.0 {
                    for (v, p) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        let factor = self.cost[j];
        // lexlint: allow(LX06): exact-zero sparsity skip — an eps band would change the pivot arithmetic
        if factor != 0.0 {
            for (v, p) in self.cost.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
        }
        let _ = n_cols;
        self.basis[i] = j;
    }

    /// After phase 1, pivots any artificial still in the basis (at zero
    /// level) out onto a structural column when possible.
    fn expel_artificials(&mut self) {
        for i in 0..self.basis.len() {
            if self.basis[i] >= self.n_structural {
                if let Some(j) = (0..self.n_structural).find(|&j| self.rows[i][j].abs() > 1e-7) {
                    self.pivot(i, j);
                }
                // If the whole row is zero the constraint was redundant;
                // the artificial stays basic at level 0, which is
                // harmless because phase 2 bars artificial columns from
                // entering and its rhs is 0.
            }
        }
    }
}

/// A negative rhs flips the row sign, which mirrors `Le ↔ Ge`.
fn effective_relation(rel: Relation, rhs_negative: bool) -> Relation {
    if !rhs_negative {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, Relation};

    fn assert_optimal(lp: &LinearProgram, expect_obj: f64) -> Solution {
        let sol = solve(lp).expect("solvable");
        assert!(
            lp.is_feasible(&sol.x, 1e-6),
            "solution infeasible: {:?}",
            sol.x
        );
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} expected {expect_obj}",
            sol.objective
        );
        sol
    }

    #[test]
    fn maximization_via_negated_costs() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 → x=2, y=6, obj 36.
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 4.0);
        lp.constrain(vec![(1, 2.0)], Relation::Le, 12.0);
        lp.constrain(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = assert_optimal(&lp, -36.0);
        assert!((sol.x[0] - 2.0).abs() < 1e-7);
        assert!((sol.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 → (8, 2)? cost 2*8+3*2=22;
        // actually all mass on x: x=10,y=0 infeasible? x>=2 ok, so x=10 →
        // cost 20.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        lp.constrain(vec![(0, 1.0)], Relation::Ge, 2.0);
        let sol = assert_optimal(&lp, 20.0);
        assert!((sol.x[0] - 10.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 5, y >= 1 → x=4, y=1, obj 6.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        lp.constrain(vec![(1, 1.0)], Relation::Ge, 1.0);
        assert_optimal(&lp, 6.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -3  ⟺  x >= 3.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, -1.0)], Relation::Le, -3.0);
        let sol = assert_optimal(&lp, 3.0);
        assert!((sol.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.constrain(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&lp), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let lp = LinearProgram::minimize(vec![-1.0]);
        assert_eq!(solve(&lp), Err(SolveError::Unbounded));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple rows tie in the ratio test.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.constrain(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.constrain(vec![(2, 1.0)], Relation::Le, 1.0);
        let sol = solve(&lp).expect("Beale's example must terminate");
        assert!((sol.objective - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        lp.constrain(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 4.0);
        assert_optimal(&lp, 2.0);
    }

    #[test]
    fn zero_rhs_equality() {
        let mut lp = LinearProgram::minimize(vec![1.0, -1.0]);
        lp.constrain(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 0.0);
        lp.constrain(vec![(1, 1.0)], Relation::Le, 7.0);
        let sol = assert_optimal(&lp, 0.0);
        assert!((sol.x[0] - sol.x[1]).abs() < 1e-7);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        assert_eq!(solve_with_limit(&lp, 0), Err(SolveError::IterationLimit));
    }

    #[test]
    fn transportation_shaped_lp() {
        // 2 supplies (3, 4), 2 capacities (5, 5), costs [[1,4],[2,1]].
        // Optimal: z00=3, z11=4 → cost 7.
        let mut lp = LinearProgram::minimize(vec![1.0, 4.0, 2.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0);
        lp.constrain(vec![(2, 1.0), (3, 1.0)], Relation::Eq, 4.0);
        lp.constrain(vec![(0, 1.0), (2, 1.0)], Relation::Le, 5.0);
        lp.constrain(vec![(1, 1.0), (3, 1.0)], Relation::Le, 5.0);
        assert_optimal(&lp, 7.0);
    }

    #[test]
    fn fractional_optimum_is_found() {
        // min -x - y s.t. 2x + y <= 3, x + 2y <= 3 → x=y=1 obj -2 at
        // fractional-free vertex; perturb: 2x+y<=2, x+2y<=2 → x=y=2/3.
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![(0, 2.0), (1, 1.0)], Relation::Le, 2.0);
        lp.constrain(vec![(0, 1.0), (1, 2.0)], Relation::Le, 2.0);
        let sol = assert_optimal(&lp, -4.0 / 3.0);
        assert!((sol.x[0] - 2.0 / 3.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounded_variables_via_rows() {
        // Caching-LP style: min c·x with Σx = 1 and x ≤ 0.6 per var.
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0, 3.0]);
        lp.constrain(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Eq, 1.0);
        for j in 0..3 {
            lp.constrain(vec![(j, 1.0)], Relation::Le, 0.6);
        }
        let sol = assert_optimal(&lp, 0.6 + 0.8);
        assert!((sol.x[0] - 0.6).abs() < 1e-7);
        assert!((sol.x[1] - 0.4).abs() < 1e-7);
    }
}
