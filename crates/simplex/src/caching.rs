//! The paper's service-caching LP: ILP (3)–(7) relaxed via (8).
//!
//! Variables: `x[l][i]` — fraction of request `l` served at station `i`;
//! `y[k][i]` — fraction of an instance of service `k` cached at `i`.
//!
//! Objective (3): `min (1/|R|)·(Σ_l Σ_i x_li·ρ_l·θ_i + Σ_k Σ_i y_ki·d_ins(i,k))`
//! subject to (4) every request fully assigned, (5) station capacities,
//! (6) `y_ki ≥ x_li` for the request's own service, and (8) `0 ≤ x, y ≤ 1`.
//!
//! Two solve paths:
//!
//! * [`CachingLp::solve_exact`] — the full LP through the dense two-phase
//!   simplex. Exact but `O((|R|·|BS|)³)`-ish; used for small instances and
//!   as the property-test oracle.
//! * [`CachingLp::solve_fast`] — exploits the structure: without the
//!   (small, bounded) instantiation term the LP is a transportation
//!   problem over data units, solved by the MODI network simplex in
//!   near-linear practice time; `y` is then set to its LP-optimal value
//!   `y_ki = max_{l: k(l)=k} x_li`. This is what Algorithm 1 calls every
//!   time slot.

use crate::dense;
use crate::problem::{LinearProgram, Relation, SolveError};
use crate::transport::TransportProblem;
use serde::{Deserialize, Serialize};

/// An instance of the per-slot caching LP in plain-vector form (the core
/// crate lowers topology + scenario into this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachingLp {
    n_requests: usize,
    n_stations: usize,
    n_services: usize,
    /// `ρ_l`, data units per request.
    demand: Vec<f64>,
    /// `k(l)`, the service of each request.
    service_of: Vec<usize>,
    /// `c[l][i]`, per-unit-data delay of serving request `l` at station
    /// `i` (the believed `θ_i`, plus any transfer delay from the user's
    /// registered station).
    unit_cost: Vec<Vec<f64>>,
    /// Station capacities in data units (`C(bs_i) / C_unit`).
    capacity_units: Vec<f64>,
    /// `d_ins(i, k)` instantiation delays, `[station][service]`.
    inst_delay: Vec<Vec<f64>>,
}

impl CachingLp {
    /// Builds an instance.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions, negative demands/capacities,
    /// non-finite costs, or a `service_of` entry out of range.
    pub fn new(
        demand: Vec<f64>,
        service_of: Vec<usize>,
        unit_cost: Vec<Vec<f64>>,
        capacity_units: Vec<f64>,
        inst_delay: Vec<Vec<f64>>,
        n_services: usize,
    ) -> Self {
        let n_requests = demand.len();
        let n_stations = capacity_units.len();
        assert!(n_requests > 0, "need at least one request");
        assert!(n_stations > 0, "need at least one station");
        assert!(n_services > 0, "need at least one service");
        assert_eq!(service_of.len(), n_requests, "one service per request");
        assert_eq!(unit_cost.len(), n_requests, "one cost row per request");
        assert_eq!(inst_delay.len(), n_stations, "one inst row per station");
        assert!(
            demand.iter().all(|d| d.is_finite() && *d >= 0.0),
            "demands must be non-negative"
        );
        assert!(
            capacity_units.iter().all(|c| c.is_finite() && *c >= 0.0),
            "capacities must be non-negative"
        );
        for row in &unit_cost {
            assert_eq!(row.len(), n_stations, "cost row length mismatch");
            assert!(row.iter().all(|c| c.is_finite() && *c >= 0.0), "bad cost");
        }
        for row in &inst_delay {
            assert_eq!(row.len(), n_services, "inst row length mismatch");
            assert!(row.iter().all(|c| c.is_finite() && *c >= 0.0), "bad inst");
        }
        assert!(
            service_of.iter().all(|&k| k < n_services),
            "service index out of range"
        );
        CachingLp {
            n_requests,
            n_stations,
            n_services,
            demand,
            service_of,
            unit_cost,
            capacity_units,
            inst_delay,
        }
    }

    /// Number of requests `|R|`.
    pub fn n_requests(&self) -> usize {
        self.n_requests
    }

    /// Number of stations `|BS|`.
    pub fn n_stations(&self) -> usize {
        self.n_stations
    }

    /// Number of services `|S|`.
    pub fn n_services(&self) -> usize {
        self.n_services
    }

    /// The demand vector `ρ`.
    pub fn demand(&self) -> &[f64] {
        &self.demand
    }

    /// The per-unit cost matrix.
    pub fn unit_cost(&self) -> &[Vec<f64>] {
        &self.unit_cost
    }

    /// Station capacities in data units.
    pub fn capacity_units(&self) -> &[f64] {
        &self.capacity_units
    }

    /// The service of each request.
    pub fn service_of(&self) -> &[usize] {
        &self.service_of
    }

    /// Objective (3) at a fractional point.
    pub fn objective_of(&self, x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for l in 0..self.n_requests {
            for i in 0..self.n_stations {
                total += x[l][i] * self.demand[l] * self.unit_cost[l][i];
            }
        }
        for k in 0..self.n_services {
            for i in 0..self.n_stations {
                total += y[k][i] * self.inst_delay[i][k];
            }
        }
        total / self.n_requests as f64
    }

    /// Average delay of an *integral* assignment (`assignment[l]` = the
    /// station of request `l`), counting each opened `(service, station)`
    /// instance once.
    ///
    /// # Panics
    ///
    /// Panics if an assignment index is out of range.
    pub fn assignment_objective(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.n_requests, "one station per request");
        let mut total = 0.0;
        let mut opened = vec![false; self.n_services * self.n_stations];
        for (l, &i) in assignment.iter().enumerate() {
            assert!(i < self.n_stations, "station out of range");
            total += self.demand[l] * self.unit_cost[l][i];
            let k = self.service_of[l];
            if !opened[k * self.n_stations + i] {
                opened[k * self.n_stations + i] = true;
                total += self.inst_delay[i][k];
            }
        }
        total / self.n_requests as f64
    }

    /// Whether an integral assignment respects every station capacity.
    pub fn respects_capacity(&self, assignment: &[usize]) -> bool {
        let mut used = vec![0.0; self.n_stations];
        for (l, &i) in assignment.iter().enumerate() {
            if i >= self.n_stations {
                return false;
            }
            used[i] += self.demand[l];
        }
        used.iter()
            .zip(&self.capacity_units)
            .all(|(u, c)| *u <= c + 1e-6)
    }

    /// Fast structural solve: transportation simplex over data units,
    /// then the LP-optimal `y`.
    ///
    /// The instantiation term is *not* part of the transport objective
    /// (it is bounded by `|S|·|BS|·max d_ins` and does not scale with
    /// data volume); the returned [`FractionalSolution::objective`] does
    /// include it, evaluated at the derived `y`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if total demand exceeds total capacity.
    pub fn solve_fast(&self) -> Result<FractionalSolution, SolveError> {
        let transport = TransportProblem::new(
            self.demand.clone(),
            self.capacity_units.clone(),
            self.unit_cost.clone(),
        );
        let plan = transport.solve()?;
        let mut x = vec![vec![0.0; self.n_stations]; self.n_requests];
        for l in 0..self.n_requests {
            if self.demand[l] > 0.0 {
                for i in 0..self.n_stations {
                    x[l][i] = plan.flow[l][i] / self.demand[l];
                }
            } else {
                // Zero-demand requests are free: put them on their
                // cheapest station.
                let best = argmin(&self.unit_cost[l]);
                x[l][best] = 1.0;
            }
            // Transport slack can leave a hair of unassigned mass from
            // rounding; renormalize.
            let total: f64 = x[l].iter().sum();
            if total > 0.0 && (total - 1.0).abs() > 1e-12 {
                for v in x[l].iter_mut() {
                    *v /= total;
                }
            }
        }
        let y = self.optimal_y(&x);
        let objective = self.objective_of(&x, &y);
        Ok(FractionalSolution { x, y, objective })
    }

    /// Exact solve of the full LP (including the instantiation term)
    /// through the dense simplex. Intended for small instances.
    ///
    /// # Errors
    ///
    /// Propagates the dense-solver errors.
    pub fn solve_exact(&self) -> Result<FractionalSolution, SolveError> {
        let (nr, ns, nk) = (self.n_requests, self.n_stations, self.n_services);
        let n_x = nr * ns;
        let xv = |l: usize, i: usize| l * ns + i;
        let yv = |k: usize, i: usize| n_x + k * ns + i;

        let mut c = vec![0.0; n_x + nk * ns];
        for l in 0..nr {
            for i in 0..ns {
                c[xv(l, i)] = self.demand[l] * self.unit_cost[l][i] / nr as f64;
            }
        }
        for k in 0..nk {
            for i in 0..ns {
                c[yv(k, i)] = self.inst_delay[i][k] / nr as f64;
            }
        }
        let mut lp = LinearProgram::minimize(c);
        // (4) assignment.
        for l in 0..nr {
            let terms: Vec<(usize, f64)> = (0..ns).map(|i| (xv(l, i), 1.0)).collect();
            lp.constrain(terms, Relation::Eq, 1.0);
        }
        // (5) capacity.
        for i in 0..ns {
            let terms: Vec<(usize, f64)> = (0..nr).map(|l| (xv(l, i), self.demand[l])).collect();
            lp.constrain(terms, Relation::Le, self.capacity_units[i]);
        }
        // (6) y ≥ x.
        for l in 0..nr {
            let k = self.service_of[l];
            for i in 0..ns {
                lp.constrain(vec![(xv(l, i), 1.0), (yv(k, i), -1.0)], Relation::Le, 0.0);
            }
        }
        // (8) y ≤ 1 (x ≤ 1 follows from (4) and non-negativity).
        for k in 0..nk {
            for i in 0..ns {
                lp.constrain(vec![(yv(k, i), 1.0)], Relation::Le, 1.0);
            }
        }
        let sol = dense::solve(&lp)?;
        let mut x = vec![vec![0.0; ns]; nr];
        for l in 0..nr {
            for i in 0..ns {
                x[l][i] = sol.x[xv(l, i)];
            }
        }
        let mut y = vec![vec![0.0; ns]; nk];
        for k in 0..nk {
            for i in 0..ns {
                y[k][i] = sol.x[yv(k, i)];
            }
        }
        let objective = self.objective_of(&x, &y);
        Ok(FractionalSolution { x, y, objective })
    }

    /// The minimal `y` feasible for (6) given `x`.
    fn optimal_y(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut y = vec![vec![0.0; self.n_stations]; self.n_services];
        for l in 0..self.n_requests {
            let k = self.service_of[l];
            for i in 0..self.n_stations {
                if x[l][i] > y[k][i] {
                    y[k][i] = x[l][i];
                }
            }
        }
        y
    }
}

/// Index of the smallest entry under `f64::total_cmp` (first on ties,
/// like `Iterator::min_by`); 0 on an empty slice. Total order keeps a
/// NaN cost from silently comparing "equal" to everything and letting
/// hasher-like nondeterminism into the rounding step.
fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..xs.len() {
        if xs[i].total_cmp(&xs[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// A fractional solution `(x*, y*)` to the caching LP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionalSolution {
    /// `x[l][i]` — fraction of request `l` at station `i`.
    pub x: Vec<Vec<f64>>,
    /// `y[k][i]` — caching level of service `k` at station `i`.
    pub y: Vec<Vec<f64>>,
    /// Objective (3) at this point.
    pub objective: f64,
}

impl FractionalSolution {
    /// The paper's candidate sets (9): `BS_l^candi = { bs_i : x*_li ≥ γ }`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `(0, 1]`.
    pub fn candidate_sets(&self, gamma: f64) -> Vec<Vec<usize>> {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        self.x
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v >= gamma)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect()
    }

    /// Checks LP feasibility of the solution against `lp` within `tol`.
    pub fn is_feasible(&self, lp: &CachingLp, tol: f64) -> bool {
        // (4)
        for row in &self.x {
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > tol || row.iter().any(|&v| !(-tol..=1.0 + tol).contains(&v)) {
                return false;
            }
        }
        // (5)
        for i in 0..lp.n_stations() {
            let used: f64 = (0..lp.n_requests())
                .map(|l| self.x[l][i] * lp.demand()[l])
                .sum();
            if used > lp.capacity_units()[i] + tol {
                return false;
            }
        }
        // (6)
        for l in 0..lp.n_requests() {
            let k = lp.service_of()[l];
            for i in 0..lp.n_stations() {
                if self.y[k][i] + tol < self.x[l][i] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 3 requests, 2 stations, 2 services. Station 0 cheap but small.
    fn tiny() -> CachingLp {
        CachingLp::new(
            vec![2.0, 2.0, 2.0],
            vec![0, 0, 1],
            vec![vec![1.0, 3.0], vec![1.0, 3.0], vec![1.0, 3.0]],
            vec![4.0, 10.0],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            2,
        )
    }

    fn random_instance(rng: &mut StdRng, nr: usize, ns: usize, nk: usize) -> CachingLp {
        let demand: Vec<f64> = (0..nr)
            .map(|_| rng.random_range(1.0..5.0_f64).round())
            .collect();
        let total: f64 = demand.iter().sum();
        let mut capacity: Vec<f64> = (0..ns)
            .map(|_| rng.random_range(1.0..8.0_f64).round())
            .collect();
        let cap_total: f64 = capacity.iter().sum();
        if cap_total < total * 1.2 {
            capacity[0] += total * 1.2 - cap_total;
        }
        let unit_cost: Vec<Vec<f64>> = (0..nr)
            .map(|_| {
                (0..ns)
                    .map(|_| rng.random_range(1.0..20.0_f64).round())
                    .collect()
            })
            .collect();
        let inst: Vec<Vec<f64>> = (0..ns)
            .map(|_| (0..nk).map(|_| rng.random_range(0.0..2.0)).collect())
            .collect();
        let service_of: Vec<usize> = (0..nr).map(|_| rng.random_range(0..nk)).collect();
        CachingLp::new(demand, service_of, unit_cost, capacity, inst, nk)
    }

    #[test]
    fn fast_solution_is_feasible_and_splits_capacity() {
        let lp = tiny();
        let sol = lp.solve_fast().unwrap();
        assert!(sol.is_feasible(&lp, 1e-6));
        // 6 units of demand, station 0 holds 4, so 2 must overflow to 1.
        let at0: f64 = (0..3).map(|l| sol.x[l][0] * 2.0).sum();
        assert!((at0 - 4.0).abs() < 1e-6, "cheap station must saturate");
    }

    #[test]
    fn exact_solution_is_feasible() {
        let lp = tiny();
        let sol = lp.solve_exact().unwrap();
        assert!(sol.is_feasible(&lp, 1e-6));
    }

    #[test]
    fn fast_objective_close_to_exact_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        for case in 0..15 {
            let lp = random_instance(&mut rng, 4, 3, 2);
            let fast = lp.solve_fast().unwrap();
            let exact = lp.solve_exact().unwrap();
            assert!(fast.is_feasible(&lp, 1e-6), "case {case} fast infeasible");
            assert!(exact.is_feasible(&lp, 1e-6), "case {case} exact infeasible");
            // Fast ignores the (small) instantiation term during
            // optimization, so it can only be worse, and by at most the
            // total instantiation mass.
            let max_inst_total: f64 = 3.0 * 2.0 * 2.0 / 4.0; // ns*nk*max_inst/nr
            assert!(
                fast.objective >= exact.objective - 1e-6,
                "case {case}: fast beat the exact optimum"
            );
            assert!(
                fast.objective <= exact.objective + max_inst_total + 1e-6,
                "case {case}: fast too far from optimum: {} vs {}",
                fast.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn fast_matches_exact_without_instantiation_costs() {
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..10 {
            let mut lp = random_instance(&mut rng, 4, 3, 2);
            lp.inst_delay = vec![vec![0.0; 2]; 3];
            let fast = lp.solve_fast().unwrap();
            let exact = lp.solve_exact().unwrap();
            assert!(
                (fast.objective - exact.objective).abs() < 1e-5,
                "case {case}: {} vs {}",
                fast.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn infeasible_when_demand_exceeds_capacity() {
        let lp = CachingLp::new(
            vec![10.0],
            vec![0],
            vec![vec![1.0]],
            vec![5.0],
            vec![vec![0.0]],
            1,
        );
        assert_eq!(lp.solve_fast(), Err(SolveError::Infeasible));
    }

    #[test]
    fn zero_demand_requests_assigned_to_cheapest() {
        let lp = CachingLp::new(
            vec![0.0, 1.0],
            vec![0, 0],
            vec![vec![5.0, 1.0], vec![1.0, 5.0]],
            vec![10.0, 10.0],
            vec![vec![0.0], vec![0.0]],
            1,
        );
        let sol = lp.solve_fast().unwrap();
        assert!((sol.x[0][1] - 1.0).abs() < 1e-9, "zero-demand to cheapest");
        assert!(sol.is_feasible(&lp, 1e-6));
    }

    #[test]
    fn candidate_sets_respect_gamma() {
        let sol = FractionalSolution {
            x: vec![vec![0.7, 0.3, 0.0], vec![0.2, 0.2, 0.6]],
            y: vec![vec![1.0, 1.0, 1.0]],
            objective: 0.0,
        };
        assert_eq!(sol.candidate_sets(0.3), vec![vec![0, 1], vec![2]]);
        assert_eq!(sol.candidate_sets(0.65), vec![vec![0], vec![]]);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn candidate_sets_reject_bad_gamma() {
        let sol = FractionalSolution {
            x: vec![],
            y: vec![],
            objective: 0.0,
        };
        let _ = sol.candidate_sets(0.0);
    }

    #[test]
    fn assignment_objective_counts_instances_once() {
        let lp = tiny();
        // Both service-0 requests at station 0: one instantiation of
        // (k=0, i=0); request 2 (service 1) at station 1.
        let obj = lp.assignment_objective(&[0, 0, 1]);
        // delay = 2*1 + 2*1 + 2*3 = 10; inst = 0.5 (k0@0) + 0.5 (k1@1).
        assert!((obj - 11.0 / 3.0).abs() < 1e-9, "got {obj}");
    }

    #[test]
    fn respects_capacity_detects_overflow() {
        let lp = tiny();
        assert!(!lp.respects_capacity(&[0, 0, 0])); // 6 units at cap 4
        assert!(lp.respects_capacity(&[0, 0, 1]));
        assert!(!lp.respects_capacity(&[0, 0, 9])); // out of range
    }

    #[test]
    fn y_is_max_over_service_requests() {
        let lp = tiny();
        let sol = lp.solve_fast().unwrap();
        for k in 0..2 {
            for i in 0..2 {
                let expect = (0..3)
                    .filter(|&l| lp.service_of()[l] == k)
                    .map(|l| sol.x[l][i])
                    .fold(0.0, f64::max);
                assert!((sol.y[k][i] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn objective_of_matches_manual_computation() {
        let lp = tiny();
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 1.0]];
        let y = vec![vec![1.0, 1.0], vec![0.0, 1.0]];
        // delays: 2*1 + 2*3 + 2*3 = 14; inst: 0.5+0.5+0.5 = 1.5.
        assert!((lp.objective_of(&x, &y) - 15.5 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "service index out of range")]
    fn bad_service_index_rejected() {
        let _ = CachingLp::new(
            vec![1.0],
            vec![5],
            vec![vec![1.0]],
            vec![2.0],
            vec![vec![0.0]],
            1,
        );
    }

    #[test]
    fn moderately_large_instance_solves_fast() {
        let mut rng = StdRng::seed_from_u64(4);
        let lp = random_instance(&mut rng, 150, 100, 10);
        let sol = lp.solve_fast().unwrap();
        assert!(sol.is_feasible(&lp, 1e-5));
    }
}
