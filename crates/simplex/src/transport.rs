//! Transportation simplex (MODI / u-v method).
//!
//! The caching LP minus its instantiation term is a transportation
//! problem: request `l` must ship `ρ_l` data units to stations, station
//! `i` can absorb `C(bs_i)/C_unit` units, and shipping one unit of any
//! request to station `i` costs that request's per-unit delay there. The
//! specialized network solver below runs in milliseconds on instances
//! where the dense tableau would need minutes, which is what makes the
//! per-slot LP solve of Algorithm 1 practical at the paper's scale.
//!
//! The solver balances the problem with a zero-cost dummy source, builds
//! an initial basic feasible solution with the north-west-corner rule and
//! improves it with MODI pivots until no reduced cost is negative.

use crate::problem::SolveError;
use lexcache_obs as obs;
use serde::{Deserialize, Serialize};

const TOL: f64 = 1e-9;

/// A transportation problem: ship `supply[i]` units from each source so
/// that sink `j` receives at most `capacity[j]`, minimizing
/// `Σ cost[i][j]·flow[i][j]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportProblem {
    supply: Vec<f64>,
    capacity: Vec<f64>,
    cost: Vec<Vec<f64>>,
}

/// An optimal transportation plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportSolution {
    /// `flow[i][j]` units shipped from source `i` to sink `j`.
    pub flow: Vec<Vec<f64>>,
    /// Total shipping cost.
    pub objective: f64,
    /// MODI pivots performed.
    pub iterations: usize,
}

impl TransportProblem {
    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or empty, or any entry is
    /// negative / non-finite.
    pub fn new(supply: Vec<f64>, capacity: Vec<f64>, cost: Vec<Vec<f64>>) -> Self {
        assert!(!supply.is_empty(), "need at least one source");
        assert!(!capacity.is_empty(), "need at least one sink");
        assert_eq!(cost.len(), supply.len(), "one cost row per source");
        for row in &cost {
            assert_eq!(row.len(), capacity.len(), "one cost per sink");
            assert!(row.iter().all(|c| c.is_finite()), "costs must be finite");
        }
        assert!(
            supply.iter().all(|s| s.is_finite() && *s >= 0.0),
            "supplies must be non-negative"
        );
        assert!(
            capacity.iter().all(|c| c.is_finite() && *c >= 0.0),
            "capacities must be non-negative"
        );
        TransportProblem {
            supply,
            capacity,
            cost,
        }
    }

    /// Number of sources.
    pub fn n_sources(&self) -> usize {
        self.supply.len()
    }

    /// Number of sinks.
    pub fn n_sinks(&self) -> usize {
        self.capacity.len()
    }

    /// Solves the problem with the default pivot budget.
    ///
    /// If MODI fails to converge within the budget the solver does not
    /// spin: it returns the best feasible basis reached so far (every
    /// MODI basis is primal-feasible) and bumps the
    /// `simplex/budget_trips` obs counter. The budget scales with the
    /// instance, so in practice only adversarial cycling would trip it.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if total supply exceeds total capacity.
    ///
    /// # Example
    ///
    /// ```
    /// use simplex::transport::TransportProblem;
    /// let p = TransportProblem::new(
    ///     vec![3.0, 4.0],
    ///     vec![5.0, 5.0],
    ///     vec![vec![1.0, 4.0], vec![2.0, 1.0]],
    /// );
    /// let sol = p.solve()?;
    /// assert!((sol.objective - 7.0).abs() < 1e-9);
    /// # Ok::<(), simplex::SolveError>(())
    /// ```
    pub fn solve(&self) -> Result<TransportSolution, SolveError> {
        self.solve_inner(None)
    }

    /// Solves with an explicit pivot budget (graceful-degradation hook).
    ///
    /// At most `max_pivots` MODI pivots are performed; if improving moves
    /// remain when the budget runs out, the current feasible basis is
    /// returned as a suboptimal-but-valid plan and the
    /// `simplex/budget_trips` obs counter is bumped.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if total supply exceeds total capacity.
    pub fn solve_with_budget(&self, max_pivots: usize) -> Result<TransportSolution, SolveError> {
        self.solve_inner(Some(max_pivots))
    }

    fn solve_inner(&self, budget: Option<usize>) -> Result<TransportSolution, SolveError> {
        let total_supply: f64 = self.supply.iter().sum();
        let total_capacity: f64 = self.capacity.iter().sum();
        if total_supply > total_capacity + 1e-7 {
            return Err(SolveError::Infeasible);
        }

        // Balance with a zero-cost dummy source soaking spare capacity.
        let m_real = self.supply.len();
        let n = self.capacity.len();
        let slack = (total_capacity - total_supply).max(0.0);
        let mut supply = self.supply.clone();
        let m = if slack > TOL {
            supply.push(slack);
            m_real + 1
        } else {
            m_real
        };
        let cost_at = |i: usize, j: usize| -> f64 {
            if i < m_real {
                self.cost[i][j]
            } else {
                0.0
            }
        };

        let mut state = Modi::northwest(&supply, &self.capacity, m, n);
        let max_pivots = budget.unwrap_or(50 * (m + n) * (m + n).max(16));
        let mut pivots = 0usize;
        loop {
            state.compute_potentials(&cost_at);
            let Some((ei, ej)) = state.entering(&cost_at, pivots > max_pivots / 2) else {
                break;
            };
            if pivots >= max_pivots {
                // Budget exhausted with improving moves left: the basis
                // is still primal-feasible, so degrade gracefully to it
                // instead of spinning or erroring out.
                if obs::is_enabled() {
                    obs::counter("simplex/budget_trips", 1);
                }
                break;
            }
            state.pivot(ei, ej);
            pivots += 1;
        }

        let mut flow = vec![vec![0.0; n]; m_real];
        let mut objective = 0.0;
        for &(i, j) in &state.basis {
            if i < m_real {
                let f = state.flow[i * n + j];
                flow[i][j] = f;
                objective += f * self.cost[i][j];
            }
        }
        if obs::is_enabled() {
            obs::counter("transport/pivots", pivots as u64);
            obs::gauge("transport/cells", (m * n) as f64);
        }
        Ok(TransportSolution {
            flow,
            objective,
            iterations: pivots,
        })
    }
}

/// MODI working state over an `m × n` balanced problem.
struct Modi {
    m: usize,
    n: usize,
    /// Row-major flows of basic cells (non-basic cells hold 0).
    flow: Vec<f64>,
    /// Basic cells; always a spanning tree with `m + n − 1` arcs.
    basis: Vec<(usize, usize)>,
    /// Row potentials `u`, column potentials `v`.
    u: Vec<f64>,
    v: Vec<f64>,
    /// Scratch: whether a cell is basic.
    is_basic: Vec<bool>,
}

impl Modi {
    /// North-west-corner initial basic feasible solution. Produces
    /// exactly `m + n − 1` basic cells (some possibly at zero flow).
    fn northwest(supply: &[f64], capacity: &[f64], m: usize, n: usize) -> Modi {
        let mut flow = vec![0.0; m * n];
        let mut basis = Vec::with_capacity(m + n - 1);
        let mut is_basic = vec![false; m * n];
        let mut remaining_supply = supply.to_vec();
        let mut remaining_cap = capacity.to_vec();
        let (mut i, mut j) = (0usize, 0usize);
        while i < m && j < n {
            let q = remaining_supply[i].min(remaining_cap[j]);
            flow[i * n + j] = q;
            basis.push((i, j));
            is_basic[i * n + j] = true;
            remaining_supply[i] -= q;
            remaining_cap[j] -= q;
            let row_done = remaining_supply[i] <= TOL;
            let col_done = remaining_cap[j] <= TOL;
            if row_done && col_done {
                // Degenerate corner: move diagonally but keep the basis a
                // tree by advancing only one index unless at the border.
                if i + 1 < m {
                    i += 1;
                } else {
                    j += 1;
                }
            } else if row_done {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Top up to a spanning tree if short (can happen on degenerate
        // borders): add zero-flow cells connecting unlinked rows/cols.
        while basis.len() < m + n - 1 {
            'outer: for bi in 0..m {
                for bj in 0..n {
                    if !is_basic[bi * n + bj] && !creates_cycle(&basis, bi, bj, m) {
                        basis.push((bi, bj));
                        is_basic[bi * n + bj] = true;
                        break 'outer;
                    }
                }
            }
        }
        Modi {
            m,
            n,
            flow,
            basis,
            u: vec![0.0; m],
            v: vec![0.0; n],
            is_basic,
        }
    }

    /// Solves `u_i + v_j = c_ij` over the basis tree (u[0] = 0).
    fn compute_potentials(&mut self, cost_at: &dyn Fn(usize, usize) -> f64) {
        let (m, n) = (self.m, self.n);
        let mut known_u = vec![false; m];
        let mut known_v = vec![false; n];
        known_u[0] = true;
        self.u[0] = 0.0;
        // Adjacency over basic cells.
        let mut row_cells: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_cells: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (idx, &(i, j)) in self.basis.iter().enumerate() {
            row_cells[i].push(idx);
            col_cells[j].push(idx);
        }
        let mut queue = std::collections::VecDeque::from([(true, 0usize)]);
        while let Some((is_row, node)) = queue.pop_front() {
            let cells = if is_row {
                &row_cells[node]
            } else {
                &col_cells[node]
            };
            for &idx in cells {
                let (i, j) = self.basis[idx];
                if is_row && !known_v[j] {
                    self.v[j] = cost_at(i, j) - self.u[i];
                    known_v[j] = true;
                    queue.push_back((false, j));
                } else if !is_row && !known_u[i] {
                    self.u[i] = cost_at(i, j) - self.v[j];
                    known_u[i] = true;
                    queue.push_back((true, i));
                }
            }
        }
        // A disconnected basis would indicate a broken tree invariant;
        // potentials of unreached nodes default to 0, which at worst
        // delays convergence by one pivot.
    }

    /// Picks the entering cell: most negative reduced cost, or the first
    /// negative one under the Bland fallback.
    fn entering(
        &self,
        cost_at: &dyn Fn(usize, usize) -> f64,
        bland: bool,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        let mut best_red = -1e-7;
        for i in 0..self.m {
            for j in 0..self.n {
                if self.is_basic[i * self.n + j] {
                    continue;
                }
                let red = cost_at(i, j) - self.u[i] - self.v[j];
                if red < best_red {
                    if bland {
                        return Some((i, j));
                    }
                    best_red = red;
                    best = Some((i, j));
                }
            }
        }
        best
    }

    /// Pivots the entering cell into the basis around its unique cycle.
    fn pivot(&mut self, ei: usize, ej: usize) {
        let cycle = self.find_cycle(ei, ej);
        // Odd positions in the cycle are "minus" arcs.
        let mut theta = f64::INFINITY;
        let mut leave_pos = 1usize;
        for (pos, &(i, j)) in cycle.iter().enumerate().skip(1).step_by(2) {
            let f = self.flow[i * self.n + j];
            if f < theta - TOL {
                theta = f;
                leave_pos = pos;
            }
        }
        for (pos, &(i, j)) in cycle.iter().enumerate() {
            let idx = i * self.n + j;
            if pos % 2 == 0 {
                self.flow[idx] += theta;
            } else {
                self.flow[idx] -= theta;
            }
        }
        let leaving = cycle[leave_pos];
        self.flow[leaving.0 * self.n + leaving.1] = 0.0;
        let Some(basis_idx) = self.basis.iter().position(|&c| c == leaving) else {
            panic!("leaving arc {leaving:?} is not in the basis — spanning-tree invariant broken")
        };
        self.basis[basis_idx] = (ei, ej);
        self.is_basic[leaving.0 * self.n + leaving.1] = false;
        self.is_basic[ei * self.n + ej] = true;
    }

    /// Returns the unique cycle created by adding `(ei, ej)` to the basis
    /// tree, starting with the entering arc. The cycle alternates between
    /// moves along a row and moves along a column.
    fn find_cycle(&self, ei: usize, ej: usize) -> Vec<(usize, usize)> {
        // Path in the basis tree from column node ej back to row node ei.
        // Nodes: rows 0..m, cols m..m+n.
        let (m, n) = (self.m, self.n);
        let mut adj: Vec<Vec<(usize, (usize, usize))>> = vec![Vec::new(); m + n];
        for &(i, j) in &self.basis {
            adj[i].push((m + j, (i, j)));
            adj[m + j].push((i, (i, j)));
        }
        // BFS from row ei to col ej through basic arcs.
        let mut prev: Vec<Option<(usize, (usize, usize))>> = vec![None; m + n];
        let mut seen = vec![false; m + n];
        seen[ei] = true;
        let mut queue = std::collections::VecDeque::from([ei]);
        while let Some(u) = queue.pop_front() {
            if u == m + ej {
                break;
            }
            for &(w, arc) in &adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some((u, arc));
                    queue.push_back(w);
                }
            }
        }
        let mut arcs = vec![(ei, ej)];
        let mut node = m + ej;
        while node != ei {
            let Some((parent, arc)) = prev[node] else {
                panic!("basis tree does not connect node {node} — cannot close the pivot cycle")
            };
            arcs.push(arc);
            node = parent;
        }
        arcs
    }
}

/// Whether adding cell `(i, j)` to `basis` closes a cycle (used only when
/// topping up a degenerate initial basis).
fn creates_cycle(basis: &[(usize, usize)], i: usize, j: usize, m: usize) -> bool {
    // Union-find over row/col nodes.
    let max_node = basis
        .iter()
        .map(|&(a, b)| (m + b).max(a))
        .chain([i, m + j])
        .max()
        .unwrap_or(0)
        + 1;
    let mut parent: Vec<usize> = (0..max_node).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for &(a, b) in basis {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, m + b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    find(&mut parent, i) == find(&mut parent, m + j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_feasible(p: &TransportProblem, sol: &TransportSolution) {
        for (i, row) in sol.flow.iter().enumerate() {
            let shipped: f64 = row.iter().sum();
            assert!(
                (shipped - p.supply[i]).abs() < 1e-6,
                "source {i} ships {shipped}, supply {}",
                p.supply[i]
            );
            assert!(row.iter().all(|&f| f >= -1e-9), "negative flow");
        }
        for j in 0..p.n_sinks() {
            let received: f64 = sol.flow.iter().map(|r| r[j]).sum();
            assert!(
                received <= p.capacity[j] + 1e-6,
                "sink {j} over capacity: {received} > {}",
                p.capacity[j]
            );
        }
    }

    #[test]
    fn two_by_two_textbook() {
        let p = TransportProblem::new(
            vec![3.0, 4.0],
            vec![5.0, 5.0],
            vec![vec![1.0, 4.0], vec![2.0, 1.0]],
        );
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_three_by_three() {
        // Classic instance with known optimum 7 * 10 = ... compute via
        // dense simplex in the cross-check test below; here check a hand
        // case: supplies (10,20,30), caps (20,20,20),
        // costs rows: [2,2,2],[1,3,3],[3,1,2] → put 20 of s1 at cost1? s1
        // supply 20 to sink0 (cost 1) = 20, s2: 20 to sink1 (cost 1),
        // 10 to sink2 (cost 2), s0: 10 to sink2 (cost 2).
        // total = 20*1 + 20*1 + 10*2 + 10*2 = 80.
        let p = TransportProblem::new(
            vec![10.0, 20.0, 30.0],
            vec![20.0, 20.0, 20.0],
            vec![
                vec![2.0, 2.0, 2.0],
                vec![1.0, 3.0, 3.0],
                vec![3.0, 1.0, 2.0],
            ],
        );
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        assert!((sol.objective - 80.0).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn unbalanced_spare_capacity() {
        let p = TransportProblem::new(vec![2.0], vec![10.0, 10.0], vec![vec![5.0, 1.0]]);
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert!((sol.flow[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn over_supply_is_infeasible() {
        let p = TransportProblem::new(vec![5.0], vec![2.0], vec![vec![1.0]]);
        assert_eq!(p.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn zero_supply_sources_ok() {
        let p = TransportProblem::new(vec![0.0, 3.0], vec![3.0], vec![vec![1.0], vec![2.0]]);
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        assert!((sol.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn station_only_costs_waterfill() {
        // Per-unit cost depends only on the sink: cheapest sinks fill
        // first regardless of which source ships.
        let supplies = vec![4.0, 4.0, 4.0];
        let caps = vec![5.0, 5.0, 5.0];
        let sink_cost = [3.0, 1.0, 2.0];
        let cost: Vec<Vec<f64>> = (0..3).map(|_| sink_cost.to_vec()).collect();
        let p = TransportProblem::new(supplies, caps, cost);
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        // 12 units: 5 at cost1, 5 at cost2, 2 at cost3 → 5+10+6=21.
        assert!((sol.objective - 21.0).abs() < 1e-6);
    }

    #[test]
    fn matches_dense_simplex_on_random_instances() {
        use crate::problem::{LinearProgram, Relation};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..25 {
            let m = rng.random_range(2..5);
            let n = rng.random_range(2..5);
            let supply: Vec<f64> = (0..m)
                .map(|_| rng.random_range(1.0..8.0_f64).round())
                .collect();
            let total: f64 = supply.iter().sum();
            // Capacities guaranteed to fit the supply.
            let mut capacity: Vec<f64> = (0..n)
                .map(|_| rng.random_range(1.0..8.0_f64).round())
                .collect();
            let cap_total: f64 = capacity.iter().sum();
            if cap_total < total {
                capacity[0] += total - cap_total + 1.0;
            }
            let cost: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..n)
                        .map(|_| rng.random_range(1.0..10.0_f64).round())
                        .collect()
                })
                .collect();
            let p = TransportProblem::new(supply.clone(), capacity.clone(), cost.clone());
            let fast = p.solve().unwrap();
            check_feasible(&p, &fast);

            // Dense oracle.
            let mut c = Vec::new();
            for row in &cost {
                c.extend_from_slice(row);
            }
            let mut lp = LinearProgram::minimize(c);
            for i in 0..m {
                let terms: Vec<(usize, f64)> = (0..n).map(|j| (i * n + j, 1.0)).collect();
                lp.constrain(terms, Relation::Eq, supply[i]);
            }
            for j in 0..n {
                let terms: Vec<(usize, f64)> = (0..m).map(|i| (i * n + j, 1.0)).collect();
                lp.constrain(terms, Relation::Le, capacity[j]);
            }
            let exact = crate::dense::solve(&lp).unwrap();
            assert!(
                (fast.objective - exact.objective).abs() < 1e-5,
                "case {case}: transport {} vs simplex {}",
                fast.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn large_instance_is_fast_and_feasible() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let (m, n) = (120, 80);
        let supply: Vec<f64> = (0..m).map(|_| rng.random_range(1.0..6.0)).collect();
        let capacity: Vec<f64> = (0..n).map(|_| rng.random_range(5.0..30.0)).collect();
        let cost: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.random_range(1.0..50.0)).collect())
            .collect();
        let p = TransportProblem::new(supply, capacity, cost);
        let sol = p.solve().unwrap();
        check_feasible(&p, &sol);
        assert!(sol.objective > 0.0);
    }

    #[test]
    #[should_panic(expected = "one cost per sink")]
    fn ragged_cost_matrix_rejected() {
        let _ = TransportProblem::new(vec![1.0], vec![1.0, 2.0], vec![vec![1.0]]);
    }

    #[test]
    fn budget_exhaustion_falls_back_to_feasible_basis() {
        // Same instance as `balanced_three_by_three`: the north-west
        // start costs 110 while the optimum is 80, so improving moves
        // exist and a zero budget must trip immediately.
        let p = TransportProblem::new(
            vec![10.0, 20.0, 30.0],
            vec![20.0, 20.0, 20.0],
            vec![
                vec![2.0, 2.0, 2.0],
                vec![1.0, 3.0, 3.0],
                vec![3.0, 1.0, 2.0],
            ],
        );
        let registry = obs::SharedRegistry::new();
        obs::install(Box::new(registry.clone()));
        let sol = p.solve_with_budget(0).unwrap();
        drop(obs::uninstall());

        let snap = registry.snapshot();
        assert!(
            snap.counter("simplex/budget_trips") >= 1,
            "forced budget trip must be counted"
        );
        check_feasible(&p, &sol);
        assert_eq!(sol.iterations, 0);
        // Suboptimal but valid: objective sits between the optimum and
        // the north-west start.
        assert!(sol.objective >= 80.0 - 1e-6);
        assert!(sol.objective <= 110.0 + 1e-6);

        // A generous budget still reaches the optimum.
        let full = p.solve_with_budget(10_000).unwrap();
        assert!((full.objective - 80.0).abs() < 1e-6);
    }
}
