//! From-scratch linear-programming substrate.
//!
//! Algorithm 1 of the paper relaxes the service-caching ILP (3)–(7) into an
//! LP each time slot and uses the fractional solution `x*` both as arm
//! probabilities and to build the candidate sets `BS_l^candi`. This crate
//! provides everything needed for that, with no external solver:
//!
//! * [`problem`] — an LP model builder ([`LinearProgram`]) over `min c·x`
//!   with `≤ / ≥ / =` rows and non-negative variables.
//! * [`dense`] — a two-phase primal simplex solver with Bland's rule
//!   (exact, used for small instances and as the test oracle).
//! * [`transport`] — a transportation-simplex (MODI) solver for
//!   `min Σ c_li·z_li` with row supplies and column capacities; the
//!   caching LP minus the instantiation term is exactly this problem, and
//!   the specialized solver is orders of magnitude faster than the
//!   tableau.
//! * [`caching`] — the paper's caching LP: lowering, exact solve, fast
//!   transportation-based solve, and fractional-solution extraction.
//!
//! # Example
//!
//! ```
//! use simplex::{LinearProgram, Relation};
//!
//! // min -x0 - 2 x1  s.t.  x0 + x1 <= 4,  x1 <= 3,  x >= 0.
//! let mut lp = LinearProgram::minimize(vec![-1.0, -2.0]);
//! lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! lp.constrain(vec![(1, 1.0)], Relation::Le, 3.0);
//! let sol = simplex::dense::solve(&lp)?;
//! assert!((sol.objective - (-7.0)).abs() < 1e-9);
//! # Ok::<(), simplex::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caching;
pub mod dense;
pub mod problem;
pub mod transport;

pub use caching::{CachingLp, FractionalSolution};
pub use problem::{LinearProgram, Relation, Solution, SolveError};
