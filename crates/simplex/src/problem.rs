//! LP model builder and solution types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Relation of one LP row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One LP constraint row in sparse form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; unspecified variables are 0.
    pub terms: Vec<(usize, f64)>,
    /// The relation of the row.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over non-negative variables:
/// `min c·x  s.t.  A x {≤,≥,=} b,  x ≥ 0`.
///
/// Upper bounds such as `x_j ≤ 1` are expressed as ordinary `≤` rows.
///
/// # Example
///
/// ```
/// use simplex::{LinearProgram, Relation};
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.constrain(vec![(0, 1.0), (1, 2.0)], Relation::Ge, 4.0);
/// assert_eq!(lp.n_vars(), 2);
/// assert_eq!(lp.n_constraints(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a minimization problem with the given objective
    /// coefficients (one per variable).
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values.
    pub fn minimize(objective: Vec<f64>) -> Self {
        assert!(!objective.is_empty(), "LP needs at least one variable");
        assert!(
            objective.iter().all(|c| c.is_finite()),
            "objective coefficients must be finite"
        );
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable out of range, a coefficient
    /// or the rhs is non-finite, or the same variable appears twice.
    pub fn constrain(&mut self, terms: Vec<(usize, f64)>, relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut seen = std::collections::BTreeSet::new();
        for &(j, a) in &terms {
            assert!(j < self.objective.len(), "variable {j} out of range");
            assert!(a.is_finite(), "coefficient must be finite");
            assert!(seen.insert(j), "variable {j} repeated in one row");
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars(), "point has wrong dimension");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x ≥ 0` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal point.
    pub x: Vec<f64>,
    /// Simplex pivots performed.
    pub iterations: usize,
}

/// Why an LP could not be solved to optimality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The pivot limit was exhausted (cycling safeguard).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("problem is infeasible"),
            SolveError::Unbounded => f.write_str("objective is unbounded below"),
            SolveError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_counts() {
        let mut lp = LinearProgram::minimize(vec![1.0, 2.0, 3.0]);
        assert_eq!(lp.n_vars(), 3);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 5.0);
        lp.constrain(vec![(1, 1.0), (2, -1.0)], Relation::Eq, 0.0);
        assert_eq!(lp.n_constraints(), 2);
    }

    #[test]
    fn objective_value_is_dot_product() {
        let lp = LinearProgram::minimize(vec![1.0, -2.0]);
        assert_eq!(lp.objective_value(&[3.0, 1.0]), 1.0);
    }

    #[test]
    fn feasibility_checks_all_relations() {
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0]);
        lp.constrain(vec![(0, 1.0)], Relation::Le, 1.0);
        lp.constrain(vec![(1, 1.0)], Relation::Ge, 1.0);
        lp.constrain(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0, 0.0], 1e-9)); // violates all three
        assert!(!lp.is_feasible(&[-0.5, 2.5], 1e-9)); // negative variable
    }

    #[test]
    fn feasibility_rejects_wrong_dimension() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0]);
        assert!(!lp.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "variable 5 out of range")]
    fn constraint_rejects_unknown_variable() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![(5, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "repeated in one row")]
    fn constraint_rejects_duplicate_variable() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![(0, 1.0), (0, 2.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_objective_rejected() {
        let _ = LinearProgram::minimize(vec![]);
    }

    #[test]
    fn solve_error_messages() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(
            SolveError::Unbounded.to_string(),
            "objective is unbounded below"
        );
        assert_eq!(
            SolveError::IterationLimit.to_string(),
            "simplex iteration limit exceeded"
        );
    }
}
