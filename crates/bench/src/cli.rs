//! Shared command-line handling for every bench binary.
//!
//! All 17 binaries accept the same four flags, parsed here once instead
//! of ad hoc per bin:
//!
//! * `--smoke` — tiny CI-sized run (each bin decides what that means);
//! * `--json` — also write machine-readable JSON next to the tables;
//! * `--seed N` / `--seed=N` — base seed added to every per-repeat seed;
//! * `--threads N` / `--threads=N` — worker threads for parallel sweeps
//!   (`1` forces the serial path; the result is bit-identical either
//!   way).
//!
//! Flags win over their environment-variable twins (`LEXCACHE_SEED`,
//! `LEXCACHE_JSON`, `LEXCACHE_THREADS`), which stay supported so
//! existing scripts keep working. Unknown arguments are ignored, as
//! they always were.

/// Parsed command-line flags common to every bench binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cli {
    /// `--smoke`: run the bin's reduced CI-sized variant.
    pub smoke: bool,
    /// `--json`: write machine-readable output next to the text tables.
    pub json: bool,
    /// `--seed N`: base seed (flag form; `None` = flag absent).
    pub seed: Option<u64>,
    /// `--threads N`: sweep worker count (flag form; `None` = absent).
    pub threads: Option<usize>,
}

impl Cli {
    /// Parses a flag list (binary name already stripped). Values that
    /// fail to parse are treated as absent rather than fatal.
    pub fn from_args(args: &[String]) -> Cli {
        let mut cli = Cli::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => cli.smoke = true,
                "--json" => cli.json = true,
                "--seed" => cli.seed = it.next().and_then(|v| v.parse().ok()),
                "--threads" => cli.threads = it.next().and_then(|v| v.parse().ok()),
                other => {
                    if let Some(v) = other.strip_prefix("--seed=") {
                        cli.seed = v.parse().ok();
                    } else if let Some(v) = other.strip_prefix("--threads=") {
                        cli.threads = v.parse().ok();
                    }
                }
            }
        }
        // A zero thread count is meaningless; treat it as absent.
        if cli.threads == Some(0) {
            cli.threads = None;
        }
        cli
    }

    /// Parses the current process's arguments.
    pub fn from_env() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Cli::from_args(&args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Cli {
        let args: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        Cli::from_args(&args)
    }

    #[test]
    fn defaults_are_all_off() {
        assert_eq!(parse(&[]), Cli::default());
    }

    #[test]
    fn boolean_flags_toggle() {
        let cli = parse(&["--smoke", "--json"]);
        assert!(cli.smoke && cli.json);
        assert_eq!(cli.seed, None);
        assert_eq!(cli.threads, None);
    }

    #[test]
    fn valued_flags_accept_both_forms() {
        assert_eq!(parse(&["--seed", "42"]).seed, Some(42));
        assert_eq!(parse(&["--seed=7", "--json"]).seed, Some(7));
        assert_eq!(parse(&["--threads", "8"]).threads, Some(8));
        assert_eq!(parse(&["--threads=1"]).threads, Some(1));
    }

    #[test]
    fn malformed_values_read_as_absent() {
        assert_eq!(parse(&["--seed"]).seed, None);
        assert_eq!(parse(&["--seed", "x"]).seed, None);
        assert_eq!(parse(&["--threads=none"]).threads, None);
        assert_eq!(parse(&["--threads", "0"]).threads, None, "zero is absent");
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let cli = parse(&["positional", "--verbose", "--seed", "3"]);
        assert_eq!(cli.seed, Some(3));
        assert!(!cli.smoke && !cli.json);
    }
}
