//! Shared command-line handling for every bench binary.
//!
//! All binaries accept the same flag set, parsed here once instead of
//! ad hoc per bin. Parsing is *strict*: unknown flags, positional
//! arguments, missing or non-numeric values, `--threads 0` and
//! `--cell-budget-ms 0` are errors — [`crate::init_bin`] prints the
//! one-line reason plus [`USAGE`] and exits with status 2, instead of
//! the old silent fallback to defaults.
//!
//! Flags win over their environment-variable twins (`LEXCACHE_SEED`,
//! `LEXCACHE_JSON`, `LEXCACHE_THREADS`, `LEXCACHE_RETRIES`,
//! `LEXCACHE_CELL_BUDGET_MS`, `LEXCACHE_RESUME`, `LEXCACHE_JOURNAL`,
//! `LEXCACHE_TRACE`), which stay supported so existing scripts keep
//! working.

/// One-screen flag reference printed by `--help` and after parse
/// errors.
pub const USAGE: &str = "\
common flags (every bench bin):
  --smoke                reduced CI-sized run
  --json                 also write machine-readable JSON next to the tables
  --seed <N>             base seed added to every per-repeat seed
  --threads <N>          sweep worker threads (>= 1; 1 forces the serial path)
  --max-retries <N>      re-runs of a panicked cell before quarantine (default 1)
  --cell-budget-ms <N>   per-cell watchdog budget; slower cells are flagged TimedOut
  --resume <journal>     splice completed cells from a checkpoint journal, run the rest
  --journal <path>       checkpoint journal path (default results/<bin>.journal.jsonl)
  --no-journal           disable checkpoint journaling for this run
  --trace                record a per-thread event trace; export results/trace_<bin>.json
                         (Perfetto) + .folded (flamegraph) + decide-phase table
  --update-baseline      (bench_runner only) rewrite ci/BENCH_baseline.json
  --help                 print this help and exit";

/// Parsed command-line flags common to every bench binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cli {
    /// `--smoke`: run the bin's reduced CI-sized variant.
    pub smoke: bool,
    /// `--json`: write machine-readable output next to the text tables.
    pub json: bool,
    /// `--seed N`: base seed (flag form; `None` = flag absent).
    pub seed: Option<u64>,
    /// `--threads N`: sweep worker count (flag form; `None` = absent).
    pub threads: Option<usize>,
    /// `--max-retries N`: panicked-cell retry budget (`None` = absent).
    pub max_retries: Option<u32>,
    /// `--cell-budget-ms N`: watchdog budget (`None` = no watchdog).
    pub cell_budget_ms: Option<u64>,
    /// `--resume PATH`: checkpoint journal to splice completed cells
    /// from.
    pub resume: Option<String>,
    /// `--journal PATH`: where to write this run's checkpoint journal.
    pub journal: Option<String>,
    /// `--no-journal`: disable checkpoint journaling.
    pub no_journal: bool,
    /// `--trace`: record a structured event trace and export it.
    pub trace: bool,
    /// `--update-baseline`: rewrite the perf baseline (bench_runner).
    pub update_baseline: bool,
    /// `--help`: print [`USAGE`] and exit.
    pub help: bool,
}

impl Cli {
    /// Parses a flag list (binary name already stripped). Strict: any
    /// unknown argument, missing value or malformed number is an
    /// `Err` with a one-line reason.
    pub fn from_args(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
                _ => (arg.as_str(), None),
            };
            let mut value = |name: &str| -> Result<String, String> {
                match (&inline, it.next()) {
                    (Some(v), _) => Ok(v.clone()),
                    (None, Some(v)) => Ok(v.clone()),
                    (None, None) => Err(format!("{name} requires a value")),
                }
            };
            match flag {
                "--smoke" | "--json" | "--no-journal" | "--trace" | "--update-baseline"
                | "--help"
                    if inline.is_some() =>
                {
                    return Err(format!("{flag} takes no value"));
                }
                "--smoke" => cli.smoke = true,
                "--json" => cli.json = true,
                "--no-journal" => cli.no_journal = true,
                "--trace" => cli.trace = true,
                "--update-baseline" => cli.update_baseline = true,
                "--help" => cli.help = true,
                "--seed" => cli.seed = Some(parse_num(flag, &value(flag)?)?),
                "--threads" => {
                    let n: usize = parse_num(flag, &value(flag)?)?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    cli.threads = Some(n);
                }
                "--max-retries" => cli.max_retries = Some(parse_num(flag, &value(flag)?)?),
                "--cell-budget-ms" => {
                    let ms: u64 = parse_num(flag, &value(flag)?)?;
                    if ms == 0 {
                        return Err("--cell-budget-ms must be at least 1".to_string());
                    }
                    cli.cell_budget_ms = Some(ms);
                }
                "--resume" => cli.resume = Some(value(flag)?),
                "--journal" => cli.journal = Some(value(flag)?),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(cli)
    }

    /// Parses the current process's arguments, falling back to the
    /// defaults if they do not parse. Library helpers (`threads()`,
    /// `base_seed()`, …) use this so they stay usable from test
    /// harnesses whose own arguments are not bench flags; binaries get
    /// strictness through [`crate::init_bin`], which calls
    /// [`Cli::from_args`] and exits on `Err`.
    pub fn from_env() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Cli::from_args(&args).unwrap_or_default()
    }
}

/// The workspace's single environment-variable gateway. Every
/// `LEXCACHE_*` knob is read through here — lexlint rule LX10 bans
/// `std::env::var` everywhere else — so the full set of hidden
/// configuration a run can depend on is auditable in one module.
/// Unset and non-UTF-8 values both read as `None`.
pub fn env_var(key: &str) -> Option<String> {
    std::env::var(key).ok()
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid value {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Cli, String> {
        let args: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        Cli::from_args(&args)
    }

    fn ok(v: &[&str]) -> Cli {
        parse(v).expect("args parse")
    }

    #[test]
    fn defaults_are_all_off() {
        assert_eq!(ok(&[]), Cli::default());
    }

    #[test]
    fn boolean_flags_toggle() {
        let cli = ok(&[
            "--smoke",
            "--json",
            "--no-journal",
            "--trace",
            "--update-baseline",
        ]);
        assert!(cli.smoke && cli.json && cli.no_journal && cli.update_baseline);
        assert!(cli.trace);
        assert_eq!(cli.seed, None);
        assert_eq!(cli.threads, None);
        assert!(ok(&["--help"]).help);
        assert!(!ok(&[]).trace, "tracing is off by default");
    }

    #[test]
    fn valued_flags_accept_both_forms() {
        assert_eq!(ok(&["--seed", "42"]).seed, Some(42));
        assert_eq!(ok(&["--seed=7", "--json"]).seed, Some(7));
        assert_eq!(ok(&["--threads", "8"]).threads, Some(8));
        assert_eq!(ok(&["--threads=1"]).threads, Some(1));
        assert_eq!(ok(&["--max-retries", "0"]).max_retries, Some(0));
        assert_eq!(ok(&["--cell-budget-ms=500"]).cell_budget_ms, Some(500));
        assert_eq!(
            ok(&["--resume", "results/fig3.journal.jsonl"])
                .resume
                .as_deref(),
            Some("results/fig3.journal.jsonl")
        );
        assert_eq!(
            ok(&["--journal=j.jsonl"]).journal.as_deref(),
            Some("j.jsonl")
        );
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(parse(&["--seed"]).is_err(), "missing value");
        assert!(parse(&["--seed", "x"]).is_err(), "non-numeric seed");
        assert!(parse(&["--threads=none"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err(), "zero threads");
        assert!(parse(&["--cell-budget-ms", "0"]).is_err(), "zero budget");
        assert!(parse(&["--resume"]).is_err(), "missing path");
        assert!(parse(&["--smoke=1"]).is_err(), "boolean with value");
        assert!(parse(&["--trace=1"]).is_err(), "boolean with value");
    }

    #[test]
    fn unknown_arguments_are_errors() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--verbose"]).is_err());
        let e = parse(&["--sed", "3"]).expect_err("typo rejected");
        assert!(e.contains("--sed"), "error names the offender: {e}");
    }

    #[test]
    fn big_seeds_do_not_truncate() {
        let max = u64::MAX.to_string();
        assert_eq!(ok(&["--seed", &max]).seed, Some(u64::MAX));
    }
}
