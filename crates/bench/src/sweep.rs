//! Crash-safe sweep orchestration: panic isolation, bounded retry,
//! watchdog flagging and deterministic checkpoint/resume on top of the
//! runner's robust executor ([`lexcache_runner::run_robust`]).
//!
//! Every sweep entry point in this crate ([`crate::run_grid`],
//! [`crate::run_cells`], [`crate::run_many`]) routes through
//! [`run_sweep`]. When the process has been armed as a journaled bin
//! (via [`crate::init_bin`]), each completed cell is checkpointed to a
//! JSONL journal the moment it finishes — atomically, so a `kill -9`
//! at any instant leaves a loadable journal — and `--resume <journal>`
//! splices the recorded results back in canonical order instead of
//! re-running them. Because cell results are deterministic functions
//! of their positional seed and the journal stores the exact encoded
//! payload (`f64`s in shortest-roundtrip form, bit-exact both ways),
//! a resumed sweep's final report is **byte-identical** to an
//! uninterrupted run.
//!
//! Failure semantics:
//!
//! * a panicking cell is retried up to the policy budget with the
//!   *same* positional seed, then quarantined; the sweep still
//!   completes every other cell, prints a failure summary listing the
//!   quarantined cell ids, and exits with status 3;
//! * cells exceeding the watchdog budget are flagged (`TimedOut`) and
//!   counted, never killed — their values are used normally;
//! * the `runner/panics`, `runner/retries` and `runner/timeouts` obs
//!   counters ([`lexcache_obs::names`]) record all of the above when a
//!   sink is installed.

use crate::cli::{Cli, USAGE};
use lexcache_core::{EpisodeReport, SlotMetrics};
use lexcache_obs::json::Json;
use lexcache_obs::names;
use lexcache_obs::trace;
use lexcache_obs::Stopwatch;
use lexcache_runner::journal::{CellEntry, Journal, JournalWriter, SweepMeta};
use lexcache_runner::{run_robust, CellEvent, CellOutcome, Grid, RunPolicy};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A value that can be checkpointed to the sweep journal and restored
/// bit-exactly. `decode(encode(x)) == x` must hold *exactly* — resume
/// byte-identity rests on it. Both provided implementations rely on
/// Rust's shortest-roundtrip float formatting, which reparses to the
/// same bits.
pub trait Checkpoint: Sized {
    /// Encodes the value as a journal payload string.
    fn encode(&self) -> String;
    /// Decodes a journal payload produced by [`Checkpoint::encode`].
    fn decode(text: &str) -> Result<Self, String>;
}

impl Checkpoint for EpisodeReport {
    fn encode(&self) -> String {
        // The encoder cannot fail on this struct shape (no maps, no
        // non-string keys); an empty payload would merely fail decode
        // on resume and re-run the cell.
        lexcache_obs::json::to_string(self).unwrap_or_default()
    }

    fn decode(text: &str) -> Result<Self, String> {
        let doc = lexcache_obs::json::parse(text).map_err(|e| e.to_string())?;
        let slots_json = doc
            .get("slots")
            .and_then(Json::as_array)
            .ok_or("report missing slots array")?;
        let mut slots = Vec::with_capacity(slots_json.len());
        for s in slots_json {
            slots.push(SlotMetrics {
                slot: usize_field(s, "slot")?,
                avg_delay_ms: f64_field(s, "avg_delay_ms")?,
                decide_us: f64_field(s, "decide_us")?,
                optimal_avg_delay_ms: match s.get("optimal_avg_delay_ms") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_f64().ok_or("optimal_avg_delay_ms is not a number")?),
                },
                remote_count: usize_field(s, "remote_count")?,
                rerouted_count: usize_field_or(s, "rerouted_count", 0)?,
                dropped_count: usize_field_or(s, "dropped_count", 0)?,
                drained_count: usize_field_or(s, "drained_count", 0)?,
                migrated_entries: usize_field_or(s, "migrated_entries", 0)?,
                proactive_reroutes: usize_field_or(s, "proactive_reroutes", 0)?,
                p50_sojourn_ms: f64_field_or(s, "p50_sojourn_ms", 0.0)?,
                p99_sojourn_ms: f64_field_or(s, "p99_sojourn_ms", 0.0)?,
                queue_dropped_count: usize_field_or(s, "queue_dropped_count", 0)?,
                queue_completed_count: usize_field_or(s, "queue_completed_count", 0)?,
                deadline_missed: usize_field_or(s, "deadline_missed", 0)?,
                retries_attempted: usize_field_or(s, "retries_attempted", 0)?,
                retries_succeeded: usize_field_or(s, "retries_succeeded", 0)?,
                shed_count: usize_field_or(s, "shed_count", 0)?,
                breaker_open_slots: usize_field_or(s, "breaker_open_slots", 0)?,
            });
        }
        Ok(EpisodeReport {
            policy: str_field(&doc, "policy")?,
            topology: str_field(&doc, "topology")?,
            slots,
        })
    }
}

impl Checkpoint for f64 {
    fn encode(&self) -> String {
        // `{}` is shortest-roundtrip: re-parsing restores the same
        // bits for every finite value (non-finite values normalize,
        // but a sweep statistic is finite by construction).
        format!("{self}")
    }

    fn decode(text: &str) -> Result<Self, String> {
        text.parse::<f64>()
            .map_err(|_| format!("payload {text:?} is not an f64"))
    }
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    let num = f64_field(v, key)?;
    if num != num.trunc() || num < 0.0 {
        return Err(format!("field {key:?} is not a non-negative integer"));
    }
    Ok(num as usize)
}

fn usize_field_or(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => usize_field(v, key),
    }
}

/// Like [`f64_field`] but tolerant of the key's absence — the decoder
/// must accept journals written before the field existed (the
/// `#[serde(default)]` contract, mirrored by hand here).
fn f64_field_or(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => f64_field(v, key),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Execution knobs for one sweep: worker count, base seed and the
/// failure policy.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads (`1` = the serial path).
    pub threads: usize,
    /// Base seed; cell `(series, repeat)` runs with `base + repeat`.
    pub base_seed: u64,
    /// Retry budget and watchdog.
    pub policy: RunPolicy,
}

impl SweepOptions {
    /// The process-wide knobs: `--threads`/`LEXCACHE_THREADS`,
    /// `--seed`/`LEXCACHE_SEED`, `--max-retries`/`LEXCACHE_RETRIES`
    /// (default 1) and `--cell-budget-ms`/`LEXCACHE_CELL_BUDGET_MS`
    /// (default: no watchdog).
    pub fn from_env() -> SweepOptions {
        let cli = Cli::from_env();
        let max_retries = cli.max_retries.unwrap_or_else(|| {
            crate::cli::env_var("LEXCACHE_RETRIES")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
        });
        let cell_budget_ms = cli.cell_budget_ms.or_else(|| {
            crate::cli::env_var("LEXCACHE_CELL_BUDGET_MS")
                .and_then(|v| v.parse().ok())
                .filter(|&v| v > 0)
        });
        SweepOptions {
            threads: crate::threads(),
            base_seed: crate::base_seed(),
            policy: RunPolicy {
                max_retries,
                cell_budget_ms,
            },
        }
    }

    /// Explicit worker count and base seed with the default failure
    /// policy — the deterministic core the golden-trace tests drive.
    pub fn explicit(threads: usize, base_seed: u64) -> SweepOptions {
        SweepOptions {
            threads,
            base_seed,
            policy: RunPolicy::default(),
        }
    }
}

/// One cell that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// Canonical flat index within the sweep.
    pub cell: usize,
    /// Series (sweep point) index.
    pub series: usize,
    /// Repeat index within the series.
    pub repeat: usize,
    /// The positional seed every attempt ran with.
    pub seed: u64,
    /// Total attempts made.
    pub attempts: u32,
    /// Panic payload of the last attempt.
    pub message: String,
}

/// Journaled-bin state: one per process, armed by [`crate::init_bin`]
/// (or [`arm_journaling`] from tests). `None` means sweeps run without
/// checkpointing — the right default for library consumers and unit
/// tests.
#[derive(Debug)]
struct BinState {
    bin: String,
    journal: Option<JournalWriter>,
    resume: Option<Journal>,
    next_sweep: usize,
}

static BIN: Mutex<Option<BinState>> = Mutex::new(None);

fn bin_state() -> MutexGuard<'static, Option<BinState>> {
    BIN.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms sweep journaling for this process: subsequent sweeps write
/// their checkpoints to `journal` (if given) and splice completed
/// cells from `resume` (if given). [`crate::init_bin`] calls this with
/// CLI-derived paths; the golden-trace tests call it directly.
pub fn arm_journaling(
    bin: &str,
    journal: Option<PathBuf>,
    resume: Option<&Path>,
) -> Result<(), String> {
    let resume = match resume {
        Some(path) => {
            let loaded = Journal::load(path)?;
            if loaded.dropped_records > 0 {
                eprintln!(
                    "resume: {} torn or corrupt record(s) in {} dropped; those cells re-run",
                    loaded.dropped_records,
                    path.display()
                );
            }
            Some(loaded)
        }
        None => None,
    };
    *bin_state() = Some(BinState {
        bin: bin.to_string(),
        journal: journal.map(JournalWriter::create),
        resume,
        next_sweep: 0,
    });
    Ok(())
}

/// Disarms sweep journaling (test isolation).
pub fn disarm_journaling() {
    *bin_state() = None;
}

/// The journal path sweeps are currently checkpointing to, if armed.
pub fn journal_path() -> Option<PathBuf> {
    bin_state()
        .as_ref()
        .and_then(|s| s.journal.as_ref().map(|w| w.path().to_path_buf()))
}

/// Claims the next sweep index and, when armed, writes the sweep
/// header and collects validated resume records for it.
fn begin_sweep(grid: &Grid, base_seed: u64) -> (Option<usize>, Vec<(usize, u64, String)>) {
    let mut guard = bin_state();
    let Some(state) = guard.as_mut() else {
        return (None, Vec::new());
    };
    let sweep = state.next_sweep;
    state.next_sweep += 1;
    if let Some(w) = state.journal.as_mut() {
        let meta = SweepMeta {
            sweep,
            bin: state.bin.clone(),
            n_series: grid.n_series,
            repeats: grid.repeats,
            base_seed,
        };
        if let Err(e) = w.begin_sweep(&meta) {
            eprintln!(
                "journal: cannot write {}: {e}; journaling disabled for this run",
                w.path().display()
            );
            state.journal = None;
        }
    }
    let mut resumed = Vec::new();
    if let Some(journal) = &state.resume {
        if let Some(meta) = journal.sweep(sweep) {
            if meta.n_series != grid.n_series
                || meta.repeats != grid.repeats
                || meta.base_seed != base_seed
            {
                eprintln!(
                    "resume: journal sweep {sweep} was recorded for a different configuration \
                     ({} series × {} repeats, base seed {}) than this run ({} × {}, base seed \
                     {}) — splicing would corrupt results. Re-run with the matching \
                     --seed/LEXCACHE_REPEATS, or drop --resume.",
                    meta.n_series,
                    meta.repeats,
                    meta.base_seed,
                    grid.n_series,
                    grid.repeats,
                    base_seed
                );
                std::process::exit(2);
            }
            if meta.bin != state.bin {
                eprintln!(
                    "resume: journal sweep {sweep} was recorded by bin {:?} (this is {:?}); \
                     shapes match, splicing anyway",
                    meta.bin, state.bin
                );
            }
            for (cell, entry) in journal.cells_for(sweep) {
                if cell >= grid.n_cells() {
                    eprintln!("resume: cell {cell} is outside this grid; record ignored");
                    continue;
                }
                let want_seed = base_seed + grid.cell(cell).repeat as u64;
                if entry.seed != want_seed {
                    eprintln!(
                        "resume: cell {cell} was recorded under seed {} (expected {want_seed}); \
                         re-running",
                        entry.seed
                    );
                    continue;
                }
                resumed.push((cell, entry.seed, entry.payload.clone()));
            }
        }
    }
    (Some(sweep), resumed)
}

/// Checkpoints one completed cell, if journaling is armed. Io failures
/// disable journaling with a warning rather than aborting the sweep.
fn journal_cell(sweep: Option<usize>, cell: usize, seed: u64, payload: String) {
    let Some(sweep) = sweep else { return };
    let mut guard = bin_state();
    let Some(state) = guard.as_mut() else { return };
    let Some(w) = state.journal.as_mut() else {
        return;
    };
    let entry = CellEntry {
        sweep,
        cell,
        seed,
        payload,
    };
    if let Err(e) = w.record(&entry) {
        eprintln!(
            "journal: cannot write {}: {e}; journaling disabled for this run",
            w.path().display()
        );
        state.journal = None;
    }
}

thread_local! {
    /// When tracing: the stopwatch started as this thread finished its
    /// previous cell, so the next cell can report how long the worker
    /// sat idle in between (queue wait / scheduling gap).
    static LAST_CELL_DONE: Cell<Option<Stopwatch>> = const { Cell::new(None) };
}

/// RAII trace instrumentation around one cell body: emits the
/// queue-wait instant and the `runner/cell` begin on construction, the
/// matching end on drop — drop-based so a panicking cell still closes
/// its span before `catch_unwind` sees the payload.
struct CellTraceGuard {
    active: bool,
}

impl CellTraceGuard {
    fn begin() -> CellTraceGuard {
        if !trace::is_on() {
            return CellTraceGuard { active: false };
        }
        let wait_ns = LAST_CELL_DONE
            .with(Cell::get)
            .map(|sw| sw.elapsed_ns() as u64)
            .unwrap_or(0);
        trace::instant_ns(names::RUNNER_QUEUE_WAIT, wait_ns);
        trace::begin(names::RUNNER_CELL);
        CellTraceGuard { active: true }
    }
}

impl Drop for CellTraceGuard {
    fn drop(&mut self) {
        if self.active {
            trace::end(names::RUNNER_CELL);
            LAST_CELL_DONE.with(|c| c.set(Some(Stopwatch::start())));
        }
    }
}

/// Deterministic fault injection for CI and the resume-smoke script:
/// `LEXCACHE_PANIC_CELL=<cell>` makes that flat cell index panic on
/// every attempt; `LEXCACHE_PANIC_CELL=<cell>:<k>` only on its first
/// `k` attempts (so retries can be observed succeeding).
fn panic_injection() -> Option<(usize, u32)> {
    let spec = crate::cli::env_var("LEXCACHE_PANIC_CELL")?;
    let (cell, times) = match spec.split_once(':') {
        Some((c, k)) => (c.parse().ok()?, k.parse().ok()?),
        None => (spec.parse().ok()?, u32::MAX),
    };
    Some((cell, times))
}

/// Runs an `n_series × repeats` sweep of `f(series, seed)` through the
/// robust executor: positional seeds (`base + repeat`), canonical
/// reduction, per-cell obs shard routing, panic isolation with retry,
/// optional watchdog, and — when the process is armed — checkpoint
/// journaling and `--resume` splicing.
///
/// Returns the per-series rows, or the quarantine list if any cell
/// exhausted its retry budget (all other cells still completed and
/// were journaled first).
pub fn run_sweep<T, F>(
    n_series: usize,
    repeats: usize,
    opts: &SweepOptions,
    f: F,
) -> Result<Vec<Vec<T>>, Vec<QuarantinedCell>>
where
    T: Checkpoint + Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let grid = Grid::new(n_series, repeats);
    let n = grid.n_cells();
    let (sweep, recorded) = begin_sweep(&grid, opts.base_seed);
    trace::begin_sweep(n_series, repeats);

    // Splice recorded results; anything that fails to decode re-runs.
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut pending_set: BTreeSet<usize> = (0..n).collect();
    for (cell, seed, payload) in recorded {
        match T::decode(&payload) {
            Ok(value) => {
                // Re-record the original payload so the fresh journal
                // is itself complete and resumable.
                journal_cell(sweep, cell, seed, payload);
                indexed.push((cell, value));
                pending_set.remove(&cell);
            }
            Err(e) => {
                eprintln!("resume: cell {cell}: cannot decode recorded payload ({e}); re-running");
            }
        }
    }
    let n_spliced = indexed.len();
    let pending: Vec<usize> = pending_set.into_iter().collect();

    let inject = panic_injection();
    let inject_attempts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let seed_of = |flat: usize| opts.base_seed + grid.cell(flat).repeat as u64;

    let body = |local: usize| {
        let flat = pending[local];
        let c = grid.cell(flat);
        lexcache_obs::set_current_cell(flat);
        let _cell_trace = CellTraceGuard::begin();
        if let Some((target, times)) = inject {
            if flat == target && inject_attempts[flat].fetch_add(1, Ordering::SeqCst) < times {
                panic!("injected fault (LEXCACHE_PANIC_CELL={target})");
            }
        }
        f(c.series, seed_of(flat))
    };

    let on_event = |ev: CellEvent<'_, T>| match ev {
        CellEvent::PanicCaught {
            cell,
            attempt,
            message,
            will_retry,
        } => {
            let flat = pending[cell];
            let c = grid.cell(flat);
            lexcache_obs::counter(names::RUNNER_PANICS, 1);
            trace::instant(names::RUNNER_EV_PANIC);
            if will_retry {
                lexcache_obs::counter(names::RUNNER_RETRIES, 1);
                trace::instant(names::RUNNER_EV_RETRY);
            }
            let next = if will_retry {
                "retrying with the same seed"
            } else {
                "quarantining"
            };
            eprintln!(
                "runner: cell {flat} (series {}, repeat {}, seed {}) panicked on attempt \
                 {attempt}: {message} — {next}",
                c.series,
                c.repeat,
                seed_of(flat)
            );
        }
        CellEvent::LongRunning {
            cell,
            elapsed_ms,
            budget_ms,
        } => {
            let flat = pending[cell];
            // Fires on the watchdog thread — its events land on the
            // main track, not the cell's (the only nondeterministic
            // trace source; absent unless a watchdog budget is set).
            trace::instant(names::RUNNER_EV_WATCHDOG);
            eprintln!(
                "runner: cell {flat} still running after {elapsed_ms} ms \
                 (budget {budget_ms} ms) — letting it finish"
            );
        }
        CellEvent::Finished { cell, outcome } => {
            let flat = pending[cell];
            match outcome {
                CellOutcome::Ok(value) => {
                    journal_cell(sweep, flat, seed_of(flat), value.encode());
                }
                CellOutcome::TimedOut {
                    value,
                    elapsed_ms,
                    budget_ms,
                } => {
                    lexcache_obs::counter(names::RUNNER_TIMEOUTS, 1);
                    trace::instant(names::RUNNER_EV_TIMEOUT);
                    eprintln!(
                        "runner: cell {flat} finished over budget ({elapsed_ms} ms > \
                         {budget_ms} ms) — result kept, flagged TimedOut"
                    );
                    journal_cell(sweep, flat, seed_of(flat), value.encode());
                }
                CellOutcome::Panicked { .. } => {}
            }
        }
    };

    let outcomes = run_robust(pending.len(), opts.threads, opts.policy, body, on_event);
    // Return the orchestrating thread to the epoch's main track so
    // post-sweep events align whether the serial path (which moves the
    // main thread through every cell track) or the pool ran.
    trace::end_sweep();

    let mut quarantined = Vec::new();
    for (local, outcome) in outcomes.into_iter().enumerate() {
        let flat = pending[local];
        match outcome {
            CellOutcome::Ok(value) | CellOutcome::TimedOut { value, .. } => {
                indexed.push((flat, value));
            }
            CellOutcome::Panicked { message, attempts } => {
                let c = grid.cell(flat);
                quarantined.push(QuarantinedCell {
                    cell: flat,
                    series: c.series,
                    repeat: c.repeat,
                    seed: seed_of(flat),
                    attempts,
                    message,
                });
            }
        }
    }
    if !quarantined.is_empty() {
        return Err(quarantined);
    }
    if n_spliced > 0 {
        println!(
            "resume: spliced {n_spliced} of {n} cells from the journal; ran {}",
            n - n_spliced
        );
    }
    Ok(grid.rows_from_indexed(indexed))
}

/// [`run_sweep`], turning quarantine into the bin-facing failure path:
/// prints a summary listing every quarantined cell and exits with
/// status 3 (completed cells are already journaled, so the run can be
/// resumed once the cause is fixed).
pub fn run_sweep_or_exit<T, F>(
    n_series: usize,
    repeats: usize,
    opts: &SweepOptions,
    f: F,
) -> Vec<Vec<T>>
where
    T: Checkpoint + Send,
    F: Fn(usize, u64) -> T + Sync,
{
    match run_sweep(n_series, repeats, opts, f) {
        Ok(rows) => rows,
        Err(quarantined) => {
            eprintln!("\nsweep failed: {} cell(s) quarantined:", quarantined.len());
            for q in &quarantined {
                eprintln!(
                    "  cell {} (series {}, repeat {}, seed {}): gave up after {} attempt(s): {}",
                    q.cell, q.series, q.repeat, q.seed, q.attempts, q.message
                );
            }
            match journal_path() {
                Some(path) => eprintln!(
                    "completed cells are journaled in {}; fix the cause and re-run with \
                     --resume {}",
                    path.display(),
                    path.display()
                ),
                None => eprintln!("journaling was disabled; the sweep must re-run from scratch"),
            }
            std::process::exit(3);
        }
    }
}

/// Binary entry point: strictly parses the shared CLI (exit 2 with
/// [`USAGE`] on any invalid argument), handles `--help`, and arms
/// checkpoint journaling — by default to
/// `results/<bin>.journal.jsonl`, overridable with `--journal PATH` /
/// `LEXCACHE_JOURNAL=PATH`, disabled with `--no-journal` /
/// `LEXCACHE_JOURNAL=0`. `--resume PATH` / `LEXCACHE_RESUME=PATH`
/// loads a previous journal (exit 2 if unreadable) and splices its
/// completed cells into every subsequent sweep. `--trace` /
/// `LEXCACHE_TRACE=1` turns on event tracing for the whole process
/// (ring capacity from `LEXCACHE_TRACE_CAP`, timings zeroed under
/// `LEXCACHE_ZERO_TIMINGS=1`); the bin exports the recording by
/// calling [`crate::maybe_trace_export`] before exiting.
pub fn init_bin(bin: &str) -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::from_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{bin}: error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if cli.help {
        println!("{bin}: figure/ablation binary of the lexcache bench suite\n\n{USAGE}");
        std::process::exit(0);
    }

    let env_journal = crate::cli::env_var("LEXCACHE_JOURNAL");
    let journal_off = cli.no_journal || env_journal.as_deref() == Some("0");
    let journal = if journal_off {
        None
    } else {
        let path = cli
            .journal
            .clone()
            .or(env_journal)
            .unwrap_or_else(|| format!("{}/{bin}.journal.jsonl", crate::results_dir()));
        Some(PathBuf::from(path))
    };

    let resume = cli
        .resume
        .clone()
        .or_else(|| crate::cli::env_var("LEXCACHE_RESUME"));
    let resume_path = resume.as_ref().map(PathBuf::from);

    if let Err(e) = arm_journaling(bin, journal, resume_path.as_deref()) {
        eprintln!("{bin}: --resume: {e}");
        std::process::exit(2);
    }
    if let Some(path) = &resume_path {
        println!("resume: splicing completed cells from {}", path.display());
    }

    if cli.trace || crate::cli::env_var("LEXCACHE_TRACE").as_deref() == Some("1") {
        let capacity = crate::cli::env_var("LEXCACHE_TRACE_CAP")
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(trace::DEFAULT_CAPACITY);
        trace::enable(trace::TraceConfig {
            zero_timings: crate::zero_timings_requested(),
            capacity,
        });
        println!("trace: recording (per-thread ring capacity {capacity} events)");
    }
    cli
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EpisodeReport {
        EpisodeReport {
            policy: "OL_GD".to_string(),
            topology: "gtitm(12) — sim".to_string(),
            slots: vec![
                SlotMetrics {
                    slot: 1,
                    avg_delay_ms: 12.345678901234567,
                    decide_us: 89.5,
                    optimal_avg_delay_ms: None,
                    remote_count: 3,
                    rerouted_count: 0,
                    dropped_count: 0,
                    drained_count: 0,
                    migrated_entries: 0,
                    proactive_reroutes: 0,
                    p50_sojourn_ms: 0.0,
                    p99_sojourn_ms: 0.0,
                    queue_dropped_count: 0,
                    queue_completed_count: 0,
                    deadline_missed: 0,
                    retries_attempted: 0,
                    retries_succeeded: 0,
                    shed_count: 0,
                    breaker_open_slots: 0,
                },
                SlotMetrics {
                    slot: 2,
                    avg_delay_ms: 0.1 + 0.2, // deliberately non-representable
                    decide_us: 0.0,
                    optimal_avg_delay_ms: Some(1.0e-17),
                    remote_count: 0,
                    rerouted_count: 2,
                    dropped_count: 1,
                    drained_count: 1,
                    migrated_entries: 4,
                    proactive_reroutes: 2,
                    p50_sojourn_ms: 7.25,
                    p99_sojourn_ms: 0.1 + 0.2, // deliberately non-representable
                    queue_dropped_count: 6,
                    queue_completed_count: 41,
                    deadline_missed: 5,
                    retries_attempted: 4,
                    retries_succeeded: 2,
                    shed_count: 3,
                    breaker_open_slots: 1,
                },
            ],
        }
    }

    #[test]
    fn episode_report_checkpoint_roundtrips_bit_exactly() {
        let r = report();
        let decoded = EpisodeReport::decode(&r.encode()).expect("decodes");
        assert_eq!(decoded, r);
        // Bit-exactness, not just PartialEq.
        for (a, b) in decoded.slots.iter().zip(&r.slots) {
            assert_eq!(a.avg_delay_ms.to_bits(), b.avg_delay_ms.to_bits());
            assert_eq!(a.decide_us.to_bits(), b.decide_us.to_bits());
        }
        // Encoding is stable: encode(decode(encode(x))) == encode(x).
        assert_eq!(decoded.encode(), r.encode());
    }

    #[test]
    fn f64_checkpoint_roundtrips_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            0.1 + 0.2,
            1.0e300,
            5e-324,
            -123.456789012345,
        ] {
            let back = f64::decode(&v.encode()).expect("decodes");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert!(f64::decode("not-a-number").is_err());
    }

    #[test]
    fn decode_rejects_malformed_reports() {
        assert!(EpisodeReport::decode("").is_err());
        assert!(EpisodeReport::decode("{}").is_err());
        assert!(EpisodeReport::decode(r#"{"policy":"p","topology":"t"}"#).is_err());
        assert!(
            EpisodeReport::decode(r#"{"policy":"p","topology":"t","slots":[{"slot":1.5}]}"#)
                .is_err()
        );
    }

    /// The decoder must accept journals from *every* prior schema
    /// generation: pre-fault reports (no PR-8 counters), PR-8 reports
    /// (no sojourn fields), PR-9 reports (no resilience counters) and
    /// current ones — absent fields land on their serde defaults, and
    /// re-encoding is stable from then on.
    #[test]
    fn decode_tolerates_every_journal_generation() {
        // Oldest generation: only the original four per-slot fields.
        let legacy = r#"{"policy":"p","topology":"t","slots":[{"slot":1,
            "avg_delay_ms":2.5,"decide_us":10.0,"optimal_avg_delay_ms":null,
            "remote_count":3}]}"#;
        let decoded = EpisodeReport::decode(legacy).expect("legacy journal decodes");
        let s = &decoded.slots[0];
        assert_eq!(
            (s.rerouted_count, s.drained_count, s.queue_dropped_count),
            (0, 0, 0)
        );
        assert_eq!(s.p50_sojourn_ms.to_bits(), 0.0_f64.to_bits());
        assert_eq!(s.p99_sojourn_ms.to_bits(), 0.0_f64.to_bits());
        // Once re-encoded, the defaults are explicit and stable.
        let reencoded = decoded.encode();
        assert!(reencoded.contains("\"p99_sojourn_ms\":0"));
        assert_eq!(
            EpisodeReport::decode(&reencoded).expect("re-decodes"),
            decoded
        );

        // PR-8 generation: fault counters present, sojourn fields not.
        let pr8 = r#"{"policy":"p","topology":"t","slots":[{"slot":1,
            "avg_delay_ms":2.5,"decide_us":10.0,"optimal_avg_delay_ms":null,
            "remote_count":3,"rerouted_count":1,"dropped_count":2,
            "drained_count":3,"migrated_entries":4,"proactive_reroutes":5}]}"#;
        let decoded = EpisodeReport::decode(pr8).expect("PR-8 journal decodes");
        let s = &decoded.slots[0];
        assert_eq!((s.drained_count, s.migrated_entries), (3, 4));
        assert_eq!((s.p99_sojourn_ms, s.queue_dropped_count), (0.0, 0));

        // PR-9 generation: queue sojourn/drop fields present, the
        // resilience counters (deadlines, retries, sheds, breakers)
        // not yet invented — all six must default to zero.
        let pr9 = r#"{"policy":"p","topology":"t","slots":[{"slot":1,
            "avg_delay_ms":2.5,"decide_us":10.0,"optimal_avg_delay_ms":null,
            "remote_count":3,"rerouted_count":1,"dropped_count":2,
            "drained_count":3,"migrated_entries":4,"proactive_reroutes":5,
            "p50_sojourn_ms":7.25,"p99_sojourn_ms":31.5,
            "queue_dropped_count":6}]}"#;
        let decoded = EpisodeReport::decode(pr9).expect("PR-9 journal decodes");
        let s = &decoded.slots[0];
        assert_eq!(s.p99_sojourn_ms.to_bits(), 31.5_f64.to_bits());
        assert_eq!(
            (
                s.queue_completed_count,
                s.deadline_missed,
                s.retries_attempted,
                s.retries_succeeded,
                s.shed_count,
                s.breaker_open_slots
            ),
            (0, 0, 0, 0, 0, 0)
        );
        let reencoded = decoded.encode();
        assert!(reencoded.contains("\"deadline_missed\":0"));
        assert_eq!(
            EpisodeReport::decode(&reencoded).expect("re-decodes"),
            decoded
        );

        // Current generation round-trips every field bit-exactly (the
        // fixture carries non-representable values on both f64 axes).
        let full = report();
        let back = EpisodeReport::decode(&full.encode()).expect("decodes");
        for (a, b) in back.slots.iter().zip(&full.slots) {
            assert_eq!(a.p50_sojourn_ms.to_bits(), b.p50_sojourn_ms.to_bits());
            assert_eq!(a.p99_sojourn_ms.to_bits(), b.p99_sojourn_ms.to_bits());
            assert_eq!(a.queue_dropped_count, b.queue_dropped_count);
            assert_eq!(
                (a.deadline_missed, a.retries_attempted, a.retries_succeeded),
                (b.deadline_missed, b.retries_attempted, b.retries_succeeded)
            );
            assert_eq!(
                (a.queue_completed_count, a.shed_count, a.breaker_open_slots),
                (b.queue_completed_count, b.shed_count, b.breaker_open_slots)
            );
        }
    }

    // NOTE: the journaled/resume behaviour is pinned by the
    // single-test integration suite (`tests/golden_parallel.rs`), not
    // here: arming the process-global BIN state from a unit test would
    // race the other lib tests that call `run_many`/`run_cells` in the
    // same process. Unit tests below only ever run *unarmed*.

    #[test]
    fn sweep_runs_unarmed_without_journaling() {
        let opts = SweepOptions::explicit(2, 10);
        let rows = run_sweep(2, 3, &opts, |series, seed| {
            (series * 1000) as f64 + seed as f64
        })
        .expect("no quarantine");
        assert_eq!(
            rows,
            vec![vec![10.0, 11.0, 12.0], vec![1010.0, 1011.0, 1012.0],]
        );
        assert_eq!(journal_path(), None);
    }

    #[test]
    fn quarantine_reports_cell_identity() {
        let opts = SweepOptions {
            threads: 2,
            base_seed: 5,
            policy: RunPolicy::default().with_retries(1),
        };
        let err = run_sweep(2, 2, &opts, |series, seed| {
            if series == 1 && seed == 6 {
                panic!("broken cell");
            }
            seed as f64
        })
        .expect_err("quarantine expected");
        assert_eq!(err.len(), 1);
        let q = &err[0];
        assert_eq!(
            (q.cell, q.series, q.repeat, q.seed, q.attempts),
            (3, 1, 1, 6, 2)
        );
        assert!(q.message.contains("broken cell"));
    }
}
