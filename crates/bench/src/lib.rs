//! Benchmark harness regenerating every figure of the paper's
//! evaluation (§VI).
//!
//! Each figure has a binary (`fig3` … `fig7`, `regret_bound`, `summary`,
//! `ablation_*`) that prints the same series the paper plots, as aligned
//! text tables plus machine-readable CSV blocks. Absolute numbers depend
//! on our simulator; the *shapes* — who wins, by roughly what factor,
//! where crossovers fall — are the reproduction targets recorded in
//! `EXPERIMENTS.md`.
//!
//! Environment knobs (all optional):
//!
//! * `LEXCACHE_REPEATS` — topologies averaged per data point (default 10;
//!   the paper uses 80).
//! * `LEXCACHE_SLOTS` — time horizon per episode (default 100, as in the
//!   paper).
//! * `--threads N` (flag) or `LEXCACHE_THREADS` — worker threads for the
//!   sweep job graph (default: available parallelism; `1` forces the
//!   serial path). The reduction is canonical-order, so the worker count
//!   never changes a bit of any result.
//! * `--seed N` (flag) or `LEXCACHE_SEED` — base seed added to every
//!   sweep's per-repeat seed (default 0), so whole experiments replay on
//!   a different seed set without recompiling.
//! * `LEXCACHE_OBS=1` — after the normal sweep, run one instrumented
//!   single-threaded episode per policy (seed 0), write the raw event
//!   stream to `results/obs_<bin>.jsonl`, and print a per-policy phase
//!   breakdown table (see README "Observability").
//! * `LEXCACHE_JSON=1` (or the `--json` flag) — also write the raw
//!   per-seed [`EpisodeReport`]s as `results/<bin>.json`.
//! * `--max-retries N` / `LEXCACHE_RETRIES` — re-runs of a panicked
//!   sweep cell (same positional seed) before quarantine (default 1).
//! * `--cell-budget-ms N` / `LEXCACHE_CELL_BUDGET_MS` — per-cell
//!   watchdog budget; slower cells are flagged, never killed.
//! * `--resume PATH` / `LEXCACHE_RESUME` — splice completed cells from
//!   a checkpoint journal; `--journal PATH` / `--no-journal` /
//!   `LEXCACHE_JOURNAL` control where this run checkpoints (default
//!   `results/<bin>.journal.jsonl`). See [`sweep`].
//! * `LEXCACHE_ZERO_TIMINGS=1` — zero the wall-clock `decide_us`
//!   fields in JSON reports so two runs of the same seeds are
//!   byte-comparable (the resume-smoke CI diff). Also zeroes trace
//!   timestamps, making `--trace` exports byte-identical across
//!   thread counts (the trace-smoke CI diff).
//! * `--trace` (flag) or `LEXCACHE_TRACE=1` — record a per-thread
//!   event trace of the whole run and export
//!   `results/trace_<bin>.json` (Chrome Trace Format / Perfetto),
//!   `results/trace_<bin>.folded` (flamegraph fold) and a per-policy
//!   decide-phase attribution table. `LEXCACHE_TRACE_CAP` sets the
//!   per-thread ring capacity in events (default 2^18).
//!
//! Every binary starts with [`init_bin`], which strictly validates the
//! shared CLI (unknown flags, `--threads 0` and malformed values exit
//! with status 2) and arms crash-safe checkpoint journaling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod sweep;

use cli::Cli;
use infogan::InfoGanConfig;
use lexcache_core::{
    ol_ewma, ol_holt, ol_naive, CachingPolicy, Episode, EpisodeConfig, GreedyGd, OlGan, OlGd,
    OlReg, OlUcb, PolicyConfig, PriGd,
};
pub use lexcache_core::{EpisodeReport, FaultConfig, QueueConfig, QueueDiscipline, ResilConfig};
use mec_net::topology::{as1755, gtitm};
use mec_net::{NetworkConfig, Topology};
use mec_workload::demand::{DemandProcess as _, FlashCrowd, FlashCrowdConfig};
use mec_workload::scenario::DemandKind;
use mec_workload::{Scenario, ScenarioConfig};
use serde::Serialize;
pub use sweep::{init_bin, Checkpoint, QuarantinedCell, SweepOptions};

/// Number of repeated topologies per data point (`LEXCACHE_REPEATS`).
pub fn repeats() -> usize {
    env_usize("LEXCACHE_REPEATS", 10)
}

/// Episode horizon in slots (`LEXCACHE_SLOTS`).
pub fn slots() -> usize {
    env_usize("LEXCACHE_SLOTS", 100)
}

/// Worker threads for sweeps: the `--threads N` / `--threads=N` flag
/// wins, then `LEXCACHE_THREADS`, then available parallelism.
pub fn threads() -> usize {
    Cli::from_env()
        .threads
        .unwrap_or_else(|| env_usize("LEXCACHE_THREADS", lexcache_runner::available_threads()))
}

fn env_usize(key: &str, default: usize) -> usize {
    cli::env_var(key)
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Base seed added to every sweep's per-repeat seed: the `--seed N` /
/// `--seed=N` flag wins, then the `LEXCACHE_SEED` env var, default 0.
pub fn base_seed() -> u64 {
    Cli::from_env().seed.unwrap_or_else(|| {
        cli::env_var("LEXCACHE_SEED")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// Whether the reduced CI-sized run was requested (`--smoke`).
pub fn smoke_requested() -> bool {
    Cli::from_env().smoke
}

/// Which topology family a data point uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// GT-ITM-equivalent Erdős–Rényi graph (`p = 0.1`).
    Gtitm,
    /// The AS1755-shaped real-network generator.
    As1755,
}

impl TopoKind {
    /// Builds an `n`-station topology of this kind.
    pub fn build(self, n: usize, cfg: &NetworkConfig, seed: u64) -> Topology {
        match self {
            TopoKind::Gtitm => gtitm::generate(n, cfg, seed),
            TopoKind::As1755 => as1755::scaled(n, cfg, seed),
        }
    }
}

/// Which algorithm to instantiate (fresh per episode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Algorithm 1 with the default decaying exploration.
    OlGd,
    /// The optimism-driven `OL_UCB` variant (given demands).
    OlUcb,
    /// `Greedy_GD`.
    GreedyGd,
    /// `Pri_GD` of [20].
    PriGd,
    /// `OL_Reg` with ARMA order 3.
    OlReg,
    /// Algorithm 2, pre-trained on a small synthetic hotspot trace.
    OlGan,
    /// Algorithm 1 with an explicit policy configuration (ablations).
    OlGdWith(PolicyConfig),
    /// Algorithm 2 with explicit GAN loss weights (ablations).
    OlGanWith {
        /// Mutual-information weight λ.
        lambda: f64,
        /// Supervised prediction weight μ.
        mu: f64,
    },
    /// The online body on an EWMA forecaster (ablation).
    OlEwma,
    /// The online body on a last-value forecaster (ablation).
    OlNaive,
    /// The online body on a Holt trend forecaster (ablation).
    OlHolt,
}

impl Algo {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::OlGd | Algo::OlGdWith(_) => "OL_GD",
            Algo::OlUcb => "OL_UCB",
            Algo::GreedyGd => "Greedy_GD",
            Algo::PriGd => "Pri_GD",
            Algo::OlReg => "OL_Reg",
            Algo::OlGan | Algo::OlGanWith { .. } => "OL_GAN",
            Algo::OlEwma => "OL_EWMA",
            Algo::OlNaive => "OL_Naive",
            Algo::OlHolt => "OL_Holt",
        }
    }

    /// Whether the algorithm needs the unknown-demand regime.
    pub fn hidden_demands(self) -> bool {
        matches!(
            self,
            Algo::OlReg
                | Algo::OlGan
                | Algo::OlGanWith { .. }
                | Algo::OlEwma
                | Algo::OlNaive
                | Algo::OlHolt
        )
    }
}

/// One experiment cell: a topology family and size, a scenario, a
/// horizon, one algorithm, averaged over `repeats` seeds.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Topology family.
    pub topo: TopoKind,
    /// Number of base stations.
    pub n_stations: usize,
    /// Scenario configuration.
    pub scenario: ScenarioConfig,
    /// Episode horizon.
    pub horizon: usize,
    /// Algorithm under test.
    pub algo: Algo,
    /// Track clairvoyant regret.
    pub track_regret: bool,
    /// Fault injection ([`FaultConfig::none`] = disabled, the default
    /// for every figure spec).
    pub faults: FaultConfig,
    /// Amortize instantiation costs over cache residency (the warm-cache
    /// accounting the preemption ablation needs; `false` for every
    /// figure spec — the paper charges instantiation per slot).
    pub amortize: bool,
    /// Display-label override for tables, JSON series and trace tracks.
    /// `None` uses the policy name — ambiguous in sweeps that run the
    /// same policy at several parameter points, which set e.g.
    /// `"OL_GD@0.1"` here so trace attribution stays per-cell.
    pub label: Option<String>,
    /// Open-loop queue core configuration (`None` — the default for
    /// every figure spec — keeps the slot-synchronous path; the
    /// latency sweep sets an offered load ρ here to measure sojourn
    /// percentiles on top of the unchanged caching dynamics).
    pub queue: Option<QueueConfig>,
}

impl RunSpec {
    /// The canonical given-demand spec of Fig. 3 (100 stations,
    /// 100 slots, fixed demands).
    pub fn fig3(algo: Algo) -> Self {
        RunSpec {
            topo: TopoKind::Gtitm,
            n_stations: 100,
            scenario: ScenarioConfig::paper_defaults().with_demand(DemandKind::Fixed),
            horizon: slots(),
            algo,
            track_regret: false,
            faults: FaultConfig::none(),
            amortize: false,
            label: None,
            queue: None,
        }
    }

    /// The unknown-demand spec of Fig. 6 (flash-crowd bursts).
    pub fn fig6(algo: Algo) -> Self {
        RunSpec {
            topo: TopoKind::Gtitm,
            n_stations: 100,
            scenario: ScenarioConfig::paper_defaults()
                .with_demand(DemandKind::Flash(FlashCrowdConfig::default())),
            horizon: slots(),
            algo,
            track_regret: false,
            faults: FaultConfig::none(),
            amortize: false,
            label: None,
            queue: None,
        }
    }

    /// Overrides the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Switches the episode to amortized instantiation accounting.
    pub fn with_amortize(mut self) -> Self {
        self.amortize = true;
        self
    }

    /// Attaches the open-loop queue core at the given configuration
    /// (see [`QueueConfig::open_loop`]); sojourn percentiles and drop
    /// counts land in the per-slot metrics.
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Sets an explicit display label (see the `label` field).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The label used for tables, JSON series and trace tracks: the
    /// explicit override if set, the policy display name otherwise.
    pub fn display_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.algo.name().to_string())
    }
}

/// Builds a fresh policy for one episode. `OL_GAN` is pre-trained on a
/// small synthetic hotspot trace drawn from the *same scenario family*
/// with a different seed (the paper trains on a small sample of the NYC
/// hotspot data, not on the evaluation episode itself).
pub fn make_policy(spec: &RunSpec, scenario: &Scenario, seed: u64) -> Box<dyn CachingPolicy> {
    let cfg = PolicyConfig::default().with_seed(seed);
    match spec.algo {
        Algo::OlGd => Box::new(OlGd::new(cfg)),
        Algo::OlUcb => Box::new(OlUcb::new(seed)),
        Algo::OlGdWith(custom) => Box::new(OlGd::new(custom.with_seed(seed))),
        Algo::GreedyGd => Box::new(GreedyGd::new()),
        Algo::PriGd => Box::new(PriGd::new()),
        Algo::OlReg => Box::new(OlReg::new(cfg, 3)),
        Algo::OlGan => make_gan(cfg, scenario, seed, None),
        Algo::OlGanWith { lambda, mu } => make_gan(cfg, scenario, seed, Some((lambda, mu))),
        Algo::OlEwma => Box::new(ol_ewma(cfg)),
        Algo::OlNaive => Box::new(ol_naive(cfg)),
        Algo::OlHolt => Box::new(ol_holt(cfg)),
    }
}

fn make_gan(
    cfg: PolicyConfig,
    scenario: &Scenario,
    seed: u64,
    weights: Option<(f64, f64)>,
) -> Box<dyn CachingPolicy> {
    let n_cells = scenario.n_cells();
    let mut gan_cfg = InfoGanConfig::paper_defaults(n_cells);
    gan_cfg.window = 10;
    gan_cfg.bins = 24;
    gan_cfg.mu = 3.0;
    if let Some((lambda, mu)) = weights {
        gan_cfg.lambda = lambda;
        gan_cfg.mu = mu;
    }
    let mut policy = OlGan::new(cfg, gan_cfg, seed);
    policy.set_online_steps(2);
    policy.set_mc_samples(12);
    let (series, cells) = pretraining_series(scenario, seed ^ 0x9e37_79b9, 60);
    policy.pretrain(&series, &cells, 120);
    Box::new(policy)
}

/// Synthesizes the small-sample per-cell *burst residual* training
/// series for `OL_GAN` from the scenario's own request population under
/// an independent, burst-rich flash-crowd realization (the stand-in for
/// the NYC hotspot trace; historical samples deliberately cover busy
/// periods so the burst dynamics are observable).
pub fn pretraining_series(
    scenario: &Scenario,
    seed: u64,
    n_slots: usize,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut process = FlashCrowd::new(
        scenario.requests(),
        FlashCrowdConfig {
            event_probability: 0.5,
            ..FlashCrowdConfig::default()
        },
        seed,
    );
    let n_cells = scenario.n_cells();
    let mut cell_basics = vec![0.0; n_cells];
    for r in scenario.requests() {
        cell_basics[r.location_cell()] += r.basic_demand();
    }
    let mut series = vec![vec![0.0; n_slots]; n_cells];
    for t in 0..n_slots {
        process.advance();
        for r in scenario.requests() {
            series[r.location_cell()][t] += process.demand(r.id());
        }
        for c in 0..n_cells {
            series[c][t] = (series[c][t] - cell_basics[c]).max(0.0);
        }
    }
    let cells: Vec<usize> = (0..n_cells).collect();
    // Keep only cells that actually have members.
    let populated: Vec<usize> = cells
        .into_iter()
        .filter(|&c| scenario.requests().iter().any(|r| r.location_cell() == c))
        .collect();
    let series = populated.iter().map(|&c| series[c].clone()).collect();
    (series, populated)
}

/// Runs one episode of the spec under seed `seed`.
pub fn run_one(spec: &RunSpec, seed: u64) -> EpisodeReport {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = spec.topo.build(spec.n_stations, &net_cfg, seed);
    let scenario = spec.scenario.build(&topo, seed);
    let mut policy = make_policy(spec, &scenario, seed);
    let mut ep_cfg = EpisodeConfig::new(seed);
    if spec.algo.hidden_demands() {
        ep_cfg = ep_cfg.hidden_demands();
    }
    if spec.track_regret {
        ep_cfg = ep_cfg.with_regret();
    }
    if spec.amortize {
        ep_cfg = ep_cfg.with_amortized_instantiation();
    }
    ep_cfg = ep_cfg.with_faults(spec.faults);
    if let Some(queue) = spec.queue {
        ep_cfg = ep_cfg.with_queue(queue);
    }
    let mut episode = Episode::with_config(topo, net_cfg, scenario, ep_cfg);
    episode.run(policy.as_mut(), spec.horizon)
}

/// Runs the spec over `repeats` seeded topologies in parallel and
/// returns the per-repeat reports (ordered; repeat `i` uses episode seed
/// [`base_seed`]` + i`). Routed through the crash-safe sweep layer
/// ([`sweep::run_sweep_or_exit`]): panicked repeats are retried with the
/// same seed then quarantined, and completed repeats are checkpointed
/// when the process is an armed bin.
pub fn run_many(spec: &RunSpec, repeats: usize) -> Vec<EpisodeReport> {
    if lexcache_obs::trace::is_on() {
        lexcache_obs::trace::label_next_sweep(vec![spec.display_label()]);
    }
    let rows = sweep::run_sweep_or_exit(1, repeats, &SweepOptions::from_env(), |_, seed| {
        run_one(spec, seed)
    });
    rows.into_iter().next().unwrap_or_default()
}

/// [`run_many`] with explicit worker count and base seed — the
/// deterministic core the golden-trace tests drive directly. Seeds are
/// positional (`base + i`), the reduction is canonical-order, and any
/// installed obs sink sees each repeat's events routed to shard `i`, so
/// `threads = 8` is bit-identical to `threads = 1`.
pub fn run_many_with(
    spec: &RunSpec,
    repeats: usize,
    threads: usize,
    base: u64,
) -> Vec<EpisodeReport> {
    lexcache_runner::map_indexed(repeats, threads, |i| {
        lexcache_obs::set_current_cell(i);
        run_one(spec, base + i as u64)
    })
}

/// Runs a whole sweep — every `(spec, repeat)` cell — as one parallel
/// job graph and returns per-spec report vectors in spec order, using
/// the process-wide knobs (worker count, base seed, retry budget,
/// watchdog, checkpoint journaling — see [`sweep`]).
pub fn run_grid(specs: &[RunSpec], repeats: usize) -> Vec<Vec<EpisodeReport>> {
    label_sweep_from_specs(specs);
    sweep::run_sweep_or_exit(
        specs.len(),
        repeats,
        &SweepOptions::from_env(),
        |s, seed| run_one(&specs[s], seed),
    )
}

/// Declares the upcoming sweep's series labels to the trace layer (one
/// per spec: the explicit label override where set, the policy display
/// name otherwise), so `--trace` exports can name cell tracks and
/// attribute decide phases per spec — ablation sweeps that run one
/// policy at several parameter points stay distinguishable.
fn label_sweep_from_specs(specs: &[RunSpec]) {
    if lexcache_obs::trace::is_on() {
        lexcache_obs::trace::label_next_sweep(specs.iter().map(RunSpec::display_label).collect());
    }
}

/// [`run_grid_with`]'s cell `(s, i)` runs `specs[s]` under seed
/// `base + i` — the same derivation a serial per-spec loop over
/// [`run_many`] uses, so the two produce identical reports. Obs events
/// are routed to the cell's canonical index (`s·repeats + i`), letting a
/// [`lexcache_obs::ShardedRegistry`] sized [`grid_cells`] reduce
/// deterministically.
pub fn run_grid_with(
    specs: &[RunSpec],
    repeats: usize,
    threads: usize,
    base: u64,
) -> Vec<Vec<EpisodeReport>> {
    label_sweep_from_specs(specs);
    sweep::run_sweep_or_exit(
        specs.len(),
        repeats,
        &SweepOptions::explicit(threads, base),
        |s, seed| run_one(&specs[s], seed),
    )
}

/// Number of cells a [`run_grid`] sweep schedules — the shard count to
/// give a [`lexcache_obs::ShardedRegistry`] covering it.
pub fn grid_cells(n_specs: usize, repeats: usize) -> usize {
    lexcache_runner::Grid::new(n_specs, repeats).n_cells()
}

/// Parallel sweep for bins whose cell body is not a plain [`run_one`]
/// (custom episode configs, explicit delay models, …): runs
/// `n_series × repeats` cells of `f(series, seed)` with the same
/// positional seeds, canonical reduction, per-cell obs routing and
/// crash-safety (retry, quarantine, checkpoint/resume) as
/// [`run_grid`], returning one vector per series. The cell type must
/// be journalable ([`Checkpoint`]; `f64` and [`EpisodeReport`] are).
pub fn run_cells<T: Send + Checkpoint>(
    n_series: usize,
    repeats: usize,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<Vec<T>> {
    sweep::run_sweep_or_exit(n_series, repeats, &SweepOptions::from_env(), f)
}

/// Ensures the shared `results/` output directory exists and returns
/// its (relative) path. Every sink or report writer goes through here
/// before opening a file, so no output path ever races directory
/// creation. Creation failure is reported once on stderr; the
/// subsequent file open produces the definitive error.
pub fn results_dir() -> &'static str {
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("results: cannot create results/: {e}");
    }
    "results"
}

/// Whether the instrumented-profile mode is on (`LEXCACHE_OBS=1`).
pub fn obs_enabled() -> bool {
    cli::env_var("LEXCACHE_OBS").is_some_and(|v| v == "1")
}

/// Whether machine-readable JSON output was requested, via the
/// `--json` flag or `LEXCACHE_JSON=1`.
pub fn json_requested() -> bool {
    Cli::from_env().json || cli::env_var("LEXCACHE_JSON").is_some_and(|v| v == "1")
}

/// One labelled series of per-seed episode reports — the JSON shape
/// written next to every figure's text table.
#[derive(Debug, Clone, Serialize)]
pub struct JsonSeries {
    /// Series label (policy name or sweep point).
    pub label: String,
    /// Per-seed reports, ordered by seed.
    pub reports: Vec<EpisodeReport>,
}

/// Whether wall-clock timing fields should be zeroed in JSON reports
/// (`LEXCACHE_ZERO_TIMINGS=1`), making two runs of the same seeds
/// byte-comparable — the invariant the resume-smoke CI job diffs.
pub fn zero_timings_requested() -> bool {
    cli::env_var("LEXCACHE_ZERO_TIMINGS").is_some_and(|v| v == "1")
}

/// Writes the series as `results/<bin>.json` if JSON output is on
/// (encoded through [`EpisodeReport`]'s serde derives). The write is
/// atomic (temp file + rename), so a crash or Ctrl-C never leaves a
/// torn report. Errors are reported on stderr, never fatal: the text
/// tables already printed.
pub fn maybe_write_json(bin: &str, series: &[JsonSeries]) {
    if !json_requested() {
        return;
    }
    let path = format!("{}/{bin}.json", results_dir());
    let stripped: Vec<JsonSeries>;
    let payload: &[JsonSeries] = if zero_timings_requested() {
        stripped = series
            .iter()
            .map(|s| JsonSeries {
                label: s.label.clone(),
                reports: s
                    .reports
                    .iter()
                    .map(EpisodeReport::with_zeroed_timings)
                    .collect(),
            })
            .collect();
        &stripped
    } else {
        series
    };
    match lexcache_obs::json::to_string(&payload) {
        Ok(text) => match lexcache_runner::atomic_write(std::path::Path::new(&path), &text) {
            Ok(()) => println!("\njson reports written to {path}"),
            Err(e) => eprintln!("json: cannot write {path}: {e}"),
        },
        Err(e) => eprintln!("json: cannot encode reports: {e}"),
    }
}

/// With `LEXCACHE_OBS=1`, runs one instrumented single-threaded episode
/// per labelled spec (the base seed), appends the raw event stream of all of
/// them to `results/obs_<bin>.jsonl`, and prints a per-policy phase
/// breakdown plus a coverage line comparing the summed `decide/*` span
/// times against the episode's reported decide total.
///
/// The profile episode is separate from the main sweep on purpose: the
/// sweep runs policies concurrently, and a process-global sink would
/// interleave their events. One dedicated episode per policy keeps the
/// stream attributable and the default run untouched.
pub fn maybe_obs_profile(bin: &str, specs: &[(&str, RunSpec)]) {
    if !obs_enabled() {
        return;
    }
    let path = format!("{}/obs_{bin}.jsonl", results_dir());
    // Events accumulate in memory and land on disk in one atomic
    // temp+rename publish, so a crash mid-profile never leaves a torn
    // results/obs_<bin>.jsonl (lexlint rule LX12).
    let sink = lexcache_obs::AtomicJsonl::create(std::path::Path::new(&path));
    println!(
        "\n# observability profile (LEXCACHE_OBS=1): one instrumented episode per policy, \
         seed {}",
        base_seed()
    );
    for (label, spec) in specs {
        let registry = lexcache_obs::SharedRegistry::new();
        let tee = lexcache_obs::Tee::new(Box::new(sink.clone()), Box::new(registry.clone()));
        lexcache_obs::install(Box::new(tee));
        lexcache_obs::mark(&format!("profile/{label}"));
        let report = run_one(spec, base_seed());
        drop(lexcache_obs::uninstall());
        let snap = registry.snapshot();
        println!("\n## {label}");
        print!("{}", snap.render_table());
        let instrumented_ms = snap.span_total_us_with_prefix("decide/") / 1_000.0;
        let reported_ms = report.total_decide_ms();
        let pct = if reported_ms > 0.0 {
            100.0 * instrumented_ms / reported_ms
        } else {
            0.0
        };
        println!(
            "decide coverage: instrumented phases {instrumented_ms:.3} ms \
             of reported decide total {reported_ms:.3} ms ({pct:.1}%)"
        );
    }
    match sink.publish() {
        Ok(()) => println!("\nobs events written to {path}"),
        Err(e) => eprintln!("obs: cannot publish {path}: {e}"),
    }
}

/// An in-flight whole-process observability session started by
/// [`maybe_obs_begin`]: the aggregating registry plus the atomic JSONL
/// sink that will publish the event stream on finish.
pub struct ObsSession {
    registry: lexcache_obs::SharedRegistry,
    sink: lexcache_obs::AtomicJsonl,
}

/// With `LEXCACHE_OBS=1`, installs a JSONL + registry sink covering the
/// rest of the process — for bins whose work is not an episode sweep
/// (e.g. the prediction audit). Returns the session handle to pass to
/// [`maybe_obs_finish`]; `None` when profiling is off.
pub fn maybe_obs_begin(bin: &str) -> Option<ObsSession> {
    if !obs_enabled() {
        return None;
    }
    let path = format!("{}/obs_{bin}.jsonl", results_dir());
    let sink = lexcache_obs::AtomicJsonl::create(std::path::Path::new(&path));
    let registry = lexcache_obs::SharedRegistry::new();
    let tee = lexcache_obs::Tee::new(Box::new(sink.clone()), Box::new(registry.clone()));
    lexcache_obs::install(Box::new(tee));
    Some(ObsSession { registry, sink })
}

/// Uninstalls the sink installed by [`maybe_obs_begin`], prints the
/// aggregated phase/counter breakdown and publishes the event stream
/// atomically (temp + rename).
pub fn maybe_obs_finish(session: Option<ObsSession>) {
    let Some(session) = session else { return };
    drop(lexcache_obs::uninstall());
    println!("\n# observability profile (LEXCACHE_OBS=1)");
    print!("{}", session.registry.snapshot().render_table());
    let path = session.sink.path().display().to_string();
    match session.sink.publish() {
        Ok(()) => println!("obs events written to {path}"),
        Err(e) => eprintln!("obs: cannot publish {path}: {e}"),
    }
}

/// Whether event tracing is on for this process (armed by
/// [`init_bin`] from `--trace` / `LEXCACHE_TRACE=1`).
pub fn trace_requested() -> bool {
    lexcache_obs::trace::is_on()
}

/// If tracing is on, collects the recording and exports it: prints the
/// per-policy decide-phase attribution table, then writes
/// `results/trace_<bin>.json` (Chrome Trace Format — open in Perfetto
/// or `chrome://tracing`) and `results/trace_<bin>.folded`
/// (`stack;stack count` lines for `inferno-flamegraph` / speedscope),
/// both through the atomic temp+rename path. Every bin calls this at
/// the end of `main`; it is free when tracing is off.
pub fn maybe_trace_export(bin: &str) {
    if !trace_requested() {
        return;
    }
    let snap = lexcache_obs::trace::collect();
    print!("{}", snap.render_decide_summary());
    if snap.dropped() > 0 {
        eprintln!(
            "trace: {} event(s) lost to ring overflow — raise LEXCACHE_TRACE_CAP \
             for a complete (and thread-count-reproducible) trace",
            snap.dropped()
        );
    }
    let json_path = format!("{}/trace_{bin}.json", results_dir());
    match lexcache_runner::atomic_write(std::path::Path::new(&json_path), &snap.to_chrome_json()) {
        Ok(()) => {}
        Err(e) => eprintln!("trace: cannot write {json_path}: {e}"),
    }
    let folded_path = format!("{}/trace_{bin}.folded", results_dir());
    match lexcache_runner::atomic_write(std::path::Path::new(&folded_path), &snap.to_folded()) {
        Ok(()) => {}
        Err(e) => eprintln!("trace: cannot write {folded_path}: {e}"),
    }
    println!(
        "\ntrace: {} events → {json_path} (Perfetto) + {folded_path} (flame fold)",
        snap.event_count()
    );
}

/// Mean and (population) standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Per-slot delay series averaged across reports (entry `t` averages the
/// reports' slot `t`).
pub fn mean_delay_series(reports: &[EpisodeReport]) -> Vec<f64> {
    if reports.is_empty() {
        return Vec::new();
    }
    let horizon = reports[0].slots.len();
    (0..horizon)
        .map(|t| {
            reports.iter().map(|r| r.slots[t].avg_delay_ms).sum::<f64>() / reports.len() as f64
        })
        .collect()
}

/// A printable result table: one labelled series per column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    x_label: String,
    x: Vec<String>,
    columns: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            ..Table::default()
        }
    }

    /// Sets the x-axis values.
    pub fn x_values(&mut self, xs: impl IntoIterator<Item = String>) -> &mut Self {
        self.x = xs.into_iter().collect();
        self
    }

    /// Adds a named series (one value per x entry).
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the x axis.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        assert_eq!(values.len(), self.x.len(), "series length mismatch");
        self.columns.push((name.into(), values));
        self
    }

    /// Renders the table (aligned text plus a CSV block).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut header = format!("{:>12}", self.x_label);
        for (name, _) in &self.columns {
            let _ = write!(header, " {name:>14}");
        }
        let _ = writeln!(out, "{header}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = format!("{x:>12}");
            for (_, vals) in &self.columns {
                let _ = write!(row, " {:>14.3}", vals[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out, "\n```csv");
        let mut csv_head = self.x_label.replace(' ', "_");
        for (name, _) in &self.columns {
            csv_head.push(',');
            csv_head.push_str(&name.replace(' ', "_"));
        }
        let _ = writeln!(out, "{csv_head}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = x.clone();
            for (_, vals) in &self.columns {
                let _ = write!(row, ",{:.6}", vals[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out, "```");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_have_defaults() {
        assert!(repeats() > 0);
        assert!(slots() > 0);
        assert!(threads() > 0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new("demo", "slots");
        t.x_values(["1".into(), "2".into()]);
        t.series("OL_GD", vec![1.5, 2.5]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("OL_GD"));
        assert!(s.contains("slots,OL_GD"));
        assert!(s.contains("2,2.500000"));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn table_rejects_ragged_series() {
        let mut t = Table::new("demo", "x");
        t.x_values(["1".into()]);
        t.series("a", vec![1.0, 2.0]);
    }

    #[test]
    fn small_end_to_end_run() {
        let spec = RunSpec {
            topo: TopoKind::Gtitm,
            n_stations: 12,
            scenario: ScenarioConfig::small(),
            horizon: 4,
            algo: Algo::GreedyGd,
            track_regret: false,
            faults: FaultConfig::none(),
            amortize: false,
            label: None,
            queue: None,
        };
        let reports = run_many(&spec, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(mean_delay_series(&reports).len(), 4);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        let spec = RunSpec {
            topo: TopoKind::Gtitm,
            n_stations: 10,
            scenario: ScenarioConfig::small(),
            horizon: 3,
            algo: Algo::PriGd,
            track_regret: false,
            faults: FaultConfig::none(),
            amortize: false,
            label: None,
            queue: None,
        };
        let a = run_many(&spec, 3);
        let b = run_many(&spec, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delay_series(), y.delay_series());
        }
    }

    #[test]
    fn grid_matches_per_spec_serial_loops() {
        // One parallel job graph over every (spec, repeat) cell must
        // reproduce the serial per-spec loops bit-for-bit.
        let spec = |algo| RunSpec {
            topo: TopoKind::Gtitm,
            n_stations: 10,
            scenario: ScenarioConfig::small(),
            horizon: 3,
            algo,
            track_regret: false,
            faults: FaultConfig::none(),
            amortize: false,
            label: None,
            queue: None,
        };
        let specs = [spec(Algo::GreedyGd), spec(Algo::PriGd)];
        let grid = run_grid_with(&specs, 2, 4, 5);
        assert_eq!(grid.len(), 2);
        for (s, reports) in grid.iter().enumerate() {
            let serial = run_many_with(&specs[s], 2, 1, 5);
            assert_eq!(reports.len(), serial.len());
            for (p, q) in reports.iter().zip(&serial) {
                let pb: Vec<u64> = p.delay_series().iter().map(|v| v.to_bits()).collect();
                let qb: Vec<u64> = q.delay_series().iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, qb);
            }
        }
        assert_eq!(grid_cells(specs.len(), 2), 4);
    }

    // Minimal journalable cell type so `run_cells` (whose bound is
    // `Checkpoint`) can be exercised with a plain tuple.
    impl Checkpoint for (usize, u64) {
        fn encode(&self) -> String {
            format!("{} {}", self.0, self.1)
        }

        fn decode(text: &str) -> Result<Self, String> {
            let (a, b) = text
                .split_once(' ')
                .ok_or_else(|| "missing separator".to_string())?;
            Ok((
                a.parse().map_err(|_| "bad usize".to_string())?,
                b.parse().map_err(|_| "bad u64".to_string())?,
            ))
        }
    }

    #[test]
    fn run_cells_uses_positional_seeds() {
        let cells = run_cells(2, 3, |series, seed| (series, seed));
        assert_eq!(cells.len(), 2);
        let base = base_seed();
        for (s, row) in cells.iter().enumerate() {
            let want: Vec<(usize, u64)> = (0..3).map(|i| (s, base + i)).collect();
            assert_eq!(row, &want);
        }
    }

    #[test]
    fn pretraining_series_covers_populated_cells() {
        let net = NetworkConfig::paper_defaults();
        let topo = gtitm::generate(15, &net, 1);
        let scenario = ScenarioConfig::small().build(&topo, 1);
        let (series, cells) = pretraining_series(&scenario, 7, 20);
        assert_eq!(series.len(), cells.len());
        assert!(!series.is_empty());
        for s in &series {
            assert_eq!(s.len(), 20);
            assert!(s.iter().all(|&v| v >= 0.0));
        }
        // Burst-rich pretraining must actually contain bursts.
        assert!(series.iter().flatten().any(|&v| v > 0.0));
    }
}
