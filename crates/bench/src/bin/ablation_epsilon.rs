//! Ablation: exploration schedule — Algorithm 1's constant `ε = 1/4`
//! versus the `c/t` decay that Theorem 1's analysis assumes.

use bandit::EpsilonSchedule;
use bench::{maybe_obs_profile, mean_std, repeats, run_grid, Algo, RunSpec, Table};
use lexcache_core::PolicyConfig;

fn main() {
    bench::init_bin("ablation_epsilon");
    let schedules: [(&str, EpsilonSchedule); 5] = [
        ("const_1/4 (Alg.1)", EpsilonSchedule::Constant(0.25)),
        ("const_0.1", EpsilonSchedule::Constant(0.1)),
        ("decay_c=0.2", EpsilonSchedule::Decay { c: 0.2 }),
        ("decay_c=0.5 (Thm.1)", EpsilonSchedule::Decay { c: 0.5 }),
        ("decay_c=0.8", EpsilonSchedule::Decay { c: 0.8 }),
    ];
    let repeats = repeats();
    println!(
        "Ablation — exploration schedule, Fig. 3 setting, {} topologies\n",
        repeats
    );

    let mut table = Table::new("OL_GD delay vs epsilon schedule", "schedule");
    table.x_values(schedules.iter().map(|(n, _)| n.to_string()));
    let specs: Vec<RunSpec> = schedules
        .iter()
        .map(|&(_, schedule)| {
            RunSpec::fig3(Algo::OlGdWith(
                PolicyConfig::default().with_epsilon(schedule),
            ))
        })
        .collect();
    let mut delays = Vec::new();
    let mut stds = Vec::new();
    for reports in run_grid(&specs, repeats) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        delays.push(m);
        stds.push(s);
    }
    table.series("mean_delay_ms", delays);
    table.series("std", stds);
    println!("{}", table.render());
    println!("expectation: decaying schedules dominate the constant 1/4 once arms converge");

    let profile: Vec<(&str, RunSpec)> = schedules
        .iter()
        .map(|&(name, schedule)| {
            (
                name,
                RunSpec::fig3(Algo::OlGdWith(
                    PolicyConfig::default().with_epsilon(schedule),
                )),
            )
        })
        .collect();
    maybe_obs_profile("ablation_epsilon", &profile);
    bench::maybe_trace_export("ablation_epsilon");
}
