//! Fig. 5: `OL_GD` vs `Greedy_GD` vs `Pri_GD` on the real AS1755
//! topology over 100 time slots (given demands).
//!
//! The paper observes a *larger* OL_GD advantage than on synthetic
//! graphs because real topologies have more bottleneck links; the
//! headline section compares the gap against Fig. 3's.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_delay_series, repeats, run_grid, Algo, JsonSeries,
    RunSpec, Table, TopoKind,
};
use mec_net::topology::as1755;
use mec_workload::scenario::DemandKind;
use mec_workload::ScenarioConfig;

fn main() {
    bench::init_bin("fig5");
    let repeats = repeats();
    let algos = [Algo::OlGd, Algo::GreedyGd, Algo::PriGd];
    println!(
        "Fig. 5 — given demands, AS1755 ({} routers), {} slots, {} seeds\n",
        as1755::AS1755_NODES,
        bench::slots(),
        repeats
    );

    let mut delay = Table::new(
        "Fig. 5(a) — average delay per time slot on AS1755 (ms)",
        "slot",
    );
    let mut runtime = Table::new(
        "Fig. 5(b) — running time per time slot on AS1755 (ms)",
        "slot",
    );
    let as_spec = |algo| RunSpec {
        topo: TopoKind::As1755,
        n_stations: as1755::AS1755_NODES,
        scenario: ScenarioConfig::paper_defaults().with_demand(DemandKind::Fixed),
        ..RunSpec::fig3(algo)
    };
    let mut first = true;
    let mut means = Vec::new();
    let mut json = Vec::new();
    let specs: Vec<RunSpec> = algos.iter().map(|&a| as_spec(a)).collect();
    for (algo, reports) in algos.iter().copied().zip(run_grid(&specs, repeats)) {
        let series = mean_delay_series(&reports);
        json.push(JsonSeries {
            label: algo.name().to_string(),
            reports: reports.clone(),
        });
        if first {
            let xs: Vec<String> = (1..=series.len()).map(|t| t.to_string()).collect();
            delay.x_values(xs.clone());
            runtime.x_values(xs);
            first = false;
        }
        let rt: Vec<f64> = (0..series.len())
            .map(|t| {
                reports.iter().map(|r| r.slots[t].decide_us).sum::<f64>()
                    / reports.len() as f64
                    / 1_000.0
            })
            .collect();
        means.push((
            algo.name(),
            series.iter().sum::<f64>() / series.len() as f64,
        ));
        delay.series(algo.name(), series);
        runtime.series(algo.name(), rt);
    }
    println!("{}", delay.render());
    println!("{}", runtime.render());

    println!("# Headline");
    let ol = means.iter().find(|(n, _)| *n == "OL_GD").expect("ran").1;
    for (name, m) in &means {
        if *name != "OL_GD" {
            println!(
                "AS1755: OL_GD vs {name}: {:.2} vs {:.2} ms ({:+.1}%)",
                ol,
                m,
                (ol - m) / m * 100.0
            );
        }
    }
    println!("(compare against the synthetic-topology gap printed by `fig3`)");

    maybe_write_json("fig5", &json);
    let profile: Vec<(&str, RunSpec)> = algos.iter().map(|&a| (a.name(), as_spec(a))).collect();
    maybe_obs_profile("fig5", &profile);
    bench::maybe_trace_export("fig5");
}
