//! Ablation: predictor family under unknown bursty demands.
//!
//! `OL_GAN` (Info-RNN-GAN) vs `OL_Reg` (paper ARMA) vs EWMA vs naive
//! last-value, plus the clairvoyant upper bound (`OL_GD` with the true
//! demands revealed).

use bench::{maybe_obs_profile, mean_std, repeats, run_grid, Algo, RunSpec, Table};

fn main() {
    bench::init_bin("ablation_predictor");
    let repeats = repeats().min(8);
    println!(
        "Ablation — predictor family, Fig. 6 setting, {} topologies\n",
        repeats
    );

    let algos = [
        ("OL_GAN", Algo::OlGan),
        ("OL_Reg (ARMA)", Algo::OlReg),
        ("OL_EWMA", Algo::OlEwma),
        ("OL_Naive", Algo::OlNaive),
        ("OL_Holt", Algo::OlHolt),
        ("OL_GD (clairvoyant)", Algo::OlGd),
    ];
    let mut table = Table::new("delay vs predictor family", "predictor");
    table.x_values(algos.iter().map(|(n, _)| n.to_string()));
    // `OL_GD` rides along as the clairvoyant reference: `fig6` keeps
    // the bursty scenario, and the given-demand regime reveals it.
    let specs: Vec<RunSpec> = algos.iter().map(|&(_, algo)| RunSpec::fig6(algo)).collect();
    let mut delays = Vec::new();
    let mut stds = Vec::new();
    for reports in run_grid(&specs, repeats) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        delays.push(m);
        stds.push(s);
    }
    table.series("mean_delay_ms", delays);
    table.series("std", stds);
    println!("{}", table.render());
    println!("expectation: clairvoyant <= OL_GAN < classical forecasters");

    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&(name, algo)| (name, RunSpec::fig6(algo)))
        .collect();
    maybe_obs_profile("ablation_predictor", &profile);
    bench::maybe_trace_export("ablation_predictor");
}
