//! Ablation: hidden delay process — where does online learning pay?
//!
//! Under IID uniform delays the tier prior already ranks stations well
//! and `OL_GD`'s edge shrinks; under congestion-modulated delays with
//! heterogeneous congestion-proneness the learner's advantage widens.

use bench::{maybe_obs_profile, mean_std, repeats, Algo, RunSpec, Table};
use lexcache_core::{DelayModelKind, Episode, EpisodeConfig};
use mec_net::NetworkConfig;

fn main() {
    bench::init_bin("ablation_delay_model");
    let repeats = repeats();
    println!(
        "Ablation — delay model, Fig. 3 setting, {} topologies\n",
        repeats
    );
    let models: [(&str, DelayModelKind); 3] = [
        ("uniform_iid", DelayModelKind::Uniform),
        ("congestion_default", DelayModelKind::default_congestion()),
        (
            "congestion_heavy",
            DelayModelKind::Congestion {
                p_enter: 0.2,
                p_exit: 0.2,
                factor: 4.0,
            },
        ),
    ];

    let mut table = Table::new("OL_GD vs Greedy_GD across delay models", "delay model");
    table.x_values(models.iter().map(|(n, _)| n.to_string()));
    // Job graph: one series per (delay model, algorithm) pair, seeds
    // positional per repeat — identical to the old serial loops.
    let points: Vec<(DelayModelKind, Algo)> = models
        .iter()
        .flat_map(|&(_, model)| [(model, Algo::OlGd), (model, Algo::GreedyGd)])
        .collect();
    let cells = bench::run_cells(points.len(), repeats, |series, seed| {
        let (model, algo) = points[series];
        run_with_model(algo, model, seed)
    });
    let mut ol = Vec::new();
    let mut greedy = Vec::new();
    let mut advantage = Vec::new();
    for pair in cells.chunks(2) {
        let (om, _) = mean_std(&pair[0]);
        let (gm, _) = mean_std(&pair[1]);
        ol.push(om);
        greedy.push(gm);
        advantage.push((gm - om) / gm * 100.0);
    }
    table.series("OL_GD", ol);
    table.series("Greedy_GD", greedy);
    table.series("advantage_%", advantage);
    println!("{}", table.render());

    let profile = [
        ("OL_GD", RunSpec::fig3(Algo::OlGd)),
        ("Greedy_GD", RunSpec::fig3(Algo::GreedyGd)),
    ];
    maybe_obs_profile("ablation_delay_model", &profile);
    bench::maybe_trace_export("ablation_delay_model");
}

fn run_with_model(algo: Algo, model: DelayModelKind, seed: u64) -> f64 {
    // Mirror bench::run_one but with an explicit delay model.
    let spec = RunSpec::fig3(algo);
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = spec.topo.build(spec.n_stations, &net_cfg, seed);
    let scenario = spec.scenario.build(&topo, seed);
    let mut policy = bench::make_policy(&spec, &scenario, seed);
    let ep_cfg = EpisodeConfig::new(seed).with_delay_model(model);
    let mut episode = Episode::with_config(topo, net_cfg, scenario, ep_cfg);
    let report = episode.run(policy.as_mut(), spec.horizon);
    report.mean_avg_delay_ms()
}
