//! Ablation: instantiation accounting — the paper's per-slot ILP charges
//! `d_ins` for every instance used each slot; a warm cache charges only
//! new instantiations. This bounds how much the paper's modelling choice
//! inflates absolute delays (it does not change algorithm rankings,
//! which is why the reproduction keeps the paper's accounting as
//! default).

use bench::{maybe_obs_profile, mean_std, repeats, Algo, RunSpec, Table};
use lexcache_core::{Episode, EpisodeConfig};
use mec_net::NetworkConfig;

fn run(algo: Algo, amortize: bool, seed: u64) -> f64 {
    let spec = RunSpec::fig3(algo);
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = spec.topo.build(spec.n_stations, &net_cfg, seed);
    let scenario = spec.scenario.build(&topo, seed);
    let mut policy = bench::make_policy(&spec, &scenario, seed);
    let mut ep_cfg = EpisodeConfig::new(seed);
    if amortize {
        ep_cfg = ep_cfg.with_amortized_instantiation();
    }
    let mut episode = Episode::with_config(topo, net_cfg, scenario, ep_cfg);
    episode
        .run(policy.as_mut(), spec.horizon)
        .mean_avg_delay_ms()
}

fn main() {
    bench::init_bin("ablation_cache");
    let repeats = repeats();
    println!(
        "Ablation — instantiation accounting, Fig. 3 setting, {} topologies\n",
        repeats
    );
    let mut table = Table::new(
        "per-slot (paper) vs warm-cache instantiation accounting",
        "algorithm",
    );
    let algos = [Algo::OlGd, Algo::GreedyGd, Algo::PriGd];
    table.x_values(algos.iter().map(|a| a.name().to_string()));
    // Job graph: one series per (algo, accounting) pair, seeds
    // positional per repeat — identical to the old serial loops.
    let points: Vec<(Algo, bool)> = algos
        .iter()
        .flat_map(|&algo| [(algo, false), (algo, true)])
        .collect();
    let cells = bench::run_cells(points.len(), repeats, |series, seed| {
        let (algo, amortize) = points[series];
        run(algo, amortize, seed)
    });
    let mut per_slot = Vec::new();
    let mut amortized = Vec::new();
    for pair in cells.chunks(2) {
        per_slot.push(mean_std(&pair[0]).0);
        amortized.push(mean_std(&pair[1]).0);
    }
    table.series("per_slot_ms", per_slot.clone());
    table.series("warm_cache_ms", amortized.clone());
    table.series(
        "saving_%",
        per_slot
            .iter()
            .zip(&amortized)
            .map(|(p, a)| (p - a) / p * 100.0)
            .collect(),
    );
    println!("{}", table.render());
    println!("ranking must be unchanged between the two accountings");

    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&a| (a.name(), RunSpec::fig3(a)))
        .collect();
    maybe_obs_profile("ablation_cache", &profile);
    bench::maybe_trace_export("ablation_cache");
}
