//! Statistical perf harness: times the episode decide/step hot paths
//! per policy under the runner's measurement discipline (fixed warmup,
//! fixed iteration counts, median/p90 over repeats, monotonic clock
//! only) and writes `BENCH_runner.json` at the repo root.
//!
//! Flags:
//!
//! * `--smoke` — the CI plan: tiny episodes, minimal repeats;
//! * `--update-baseline` — also rewrite `ci/BENCH_baseline.json` with
//!   this run (do this on a quiet machine, then commit the file);
//! * `--seed N` — base seed for the measured episodes.
//!
//! Every cell stores both absolute ns and `ratio` — the median
//! normalised by a fixed integer calibration spin timed on the same
//! machine — so the committed baseline compares *shape* across
//! hardware. When `ci/BENCH_baseline.json` exists the run compares
//! against it and exits non-zero if any cell's ratio regressed by more
//! than 25%. Measurement runs strictly serially: worker threads would
//! share cores with the measured episode and corrupt the timings.

use bench::{run_one, Algo, RunSpec};
use lexcache_runner::{calibrate, compare, summarize, BenchOpts, BenchReport};
use mec_workload::ScenarioConfig;

/// Regression threshold enforced against the committed baseline.
const THRESHOLD_PCT: f64 = 25.0;
/// Report written at the repo root (run the bin from there).
const REPORT_PATH: &str = "BENCH_runner.json";
/// Committed baseline the CI gate compares against.
const BASELINE_PATH: &str = "ci/BENCH_baseline.json";

/// The measured policy set. `OL_GAN` is excluded: its per-episode GAN
/// pretraining dwarfs the decide/step paths this harness tracks.
const POLICIES: [Algo; 5] = [
    Algo::OlGd,
    Algo::OlUcb,
    Algo::GreedyGd,
    Algo::PriGd,
    Algo::OlReg,
];

/// The episode each measured iteration runs.
fn spec_for(algo: Algo, smoke: bool) -> RunSpec {
    let base = if algo.hidden_demands() {
        RunSpec::fig6(algo)
    } else {
        RunSpec::fig3(algo)
    };
    if smoke {
        RunSpec {
            n_stations: 12,
            scenario: ScenarioConfig::small(),
            horizon: 6,
            ..base
        }
    } else {
        RunSpec {
            n_stations: 50,
            horizon: 40,
            ..base
        }
    }
}

/// Times one policy's episodes: returns per-slot decide and step
/// measurements (ns). Decide comes from the episode's own per-slot
/// stopwatch; step is the remaining per-slot time (demand advance,
/// assignment realization, cache application, feedback).
fn time_policy(
    spec: &RunSpec,
    opts: BenchOpts,
    seed: u64,
) -> (lexcache_runner::Measurement, lexcache_runner::Measurement) {
    let horizon = spec.horizon.max(1) as f64;
    for _ in 0..opts.warmup_iters {
        std::hint::black_box(run_one(spec, seed));
    }
    let iters = opts.iters.max(1);
    let mut decide_ns = Vec::with_capacity(opts.repeats);
    let mut step_ns = Vec::with_capacity(opts.repeats);
    for _ in 0..opts.repeats {
        let mut batch_total_ns = 0.0;
        let mut batch_decide_ns = 0.0;
        for _ in 0..iters {
            let mut report = None;
            batch_total_ns += lexcache_runner::time_once_ns(|| {
                report = Some(run_one(spec, seed));
            });
            let report = report.expect("episode ran");
            batch_decide_ns += report.mean_decide_us() * 1_000.0;
            std::hint::black_box(&report);
        }
        let slot_ns = batch_total_ns / iters as f64 / horizon;
        let decide = batch_decide_ns / iters as f64;
        decide_ns.push(decide);
        step_ns.push((slot_ns - decide).max(0.0));
    }
    (summarize(iters, &decide_ns), summarize(iters, &step_ns))
}

fn main() {
    // Strict CLI validation; journaling is armed but never touched —
    // this bin times serially and runs no sweep cells.
    let cli = bench::init_bin("bench_runner");
    let update_baseline = cli.update_baseline;
    let (mode, opts) = if cli.smoke {
        ("smoke", BenchOpts::smoke())
    } else {
        ("standard", BenchOpts::standard())
    };
    let seed = bench::base_seed();
    println!(
        "bench_runner — mode {mode}: warmup {}, {} iters x {} repeats per policy, seed {seed}",
        opts.warmup_iters, opts.iters, opts.repeats
    );

    let calibration_ns = calibrate();
    println!("calibration spin: {calibration_ns:.1} ns/iter\n");
    let mut report = BenchReport::new(mode, calibration_ns);
    report.note = format!("seed {seed}; per-slot decide/step ns per policy");

    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "policy", "decide_med_ns", "decide_p90_ns", "step_med_ns", "step_p90_ns"
    );
    for algo in POLICIES {
        let spec = spec_for(algo, cli.smoke);
        let (decide, step) = time_policy(&spec, opts, seed);
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            algo.name(),
            decide.median_ns,
            decide.p90_ns,
            step.median_ns,
            step.p90_ns
        );
        report.push(format!("{}/decide", algo.name()), &decide);
        report.push(format!("{}/step", algo.name()), &step);
    }

    // Reports are published atomically (temp + rename): a crash or
    // Ctrl-C mid-write can never leave a torn JSON for the CI gate or
    // a later --update-baseline commit to trip over.
    let json = report.to_json();
    match lexcache_runner::atomic_write(std::path::Path::new(REPORT_PATH), &json) {
        Ok(()) => println!("\nreport written to {REPORT_PATH}"),
        Err(e) => {
            eprintln!("cannot write {REPORT_PATH}: {e}");
            std::process::exit(2);
        }
    }
    bench::maybe_trace_export("bench_runner");

    if update_baseline {
        if let Err(e) = lexcache_runner::atomic_write(std::path::Path::new(BASELINE_PATH), &json) {
            eprintln!("cannot write {BASELINE_PATH}: {e}");
            std::process::exit(2);
        }
        println!("baseline updated at {BASELINE_PATH}");
        return;
    }

    // Gate: a missing or malformed baseline is a hard failure, not a
    // silent skip — an accidentally deleted or corrupted committed
    // baseline must not read as "gate passed" in CI.
    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match BenchReport::from_json(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!(
                    "bench gate: cannot parse {BASELINE_PATH}: {e}\n\
                     regenerate it with --update-baseline on a quiet machine and commit it"
                );
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!(
                "bench gate: cannot read {BASELINE_PATH}: {e}\n\
                 regenerate it with --update-baseline on a quiet machine and commit it"
            );
            std::process::exit(2);
        }
    };
    if baseline.mode != report.mode {
        println!(
            "\nbaseline mode {:?} differs from this run ({:?}); gate skipped",
            baseline.mode, report.mode
        );
        return;
    }
    // An all-zero baseline means nothing would actually be gated;
    // `compare` skips such cells, so a green exit here would read as
    // "gate passed" in CI while measuring nothing. Fail loudly instead.
    if baseline.cells.iter().all(|c| c.ratio <= 0.0) {
        eprintln!("bench gate: {BASELINE_PATH} is provisional (every ratio <= 0) — nothing gated");
        eprintln!("regenerate it: run `bench_runner --update-baseline` on a quiet machine and commit {BASELINE_PATH}");
        std::process::exit(2);
    }
    let cmp = compare(&baseline, &report, THRESHOLD_PCT);
    print!("\n{}", cmp.render());
    if !cmp.passed() {
        std::process::exit(1);
    }
}
