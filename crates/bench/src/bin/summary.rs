//! §VI headline: "the performance of the proposed algorithms outperform
//! existing algorithms by around 15%".
//!
//! Aggregates the Fig. 3 (given-demand) and Fig. 6 (unknown-demand)
//! settings into one improvement table.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_many, Algo, JsonSeries, RunSpec,
    Table,
};

fn main() {
    let repeats = repeats();
    println!(
        "Headline summary — 100 stations, {} slots, {} topologies per cell\n",
        bench::slots(),
        repeats
    );

    let mut table = Table::new(
        "Mean average delay (ms) and std over topologies",
        "algorithm",
    );
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut json = Vec::new();
    for algo in [Algo::OlGd, Algo::GreedyGd, Algo::PriGd] {
        let reports = run_many(&RunSpec::fig3(algo), repeats);
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        rows.push((format!("{} (given)", algo.name()), m, s));
        json.push(JsonSeries {
            label: format!("{}/given", algo.name()),
            reports,
        });
    }
    for algo in [Algo::OlGan, Algo::OlReg] {
        let reports = run_many(&RunSpec::fig6(algo), repeats);
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        rows.push((format!("{} (unknown)", algo.name()), m, s));
        json.push(JsonSeries {
            label: format!("{}/unknown", algo.name()),
            reports,
        });
    }
    table.x_values(rows.iter().map(|(n, _, _)| n.clone()));
    table.series("mean_delay_ms", rows.iter().map(|(_, m, _)| *m).collect());
    table.series("std", rows.iter().map(|(_, _, s)| *s).collect());
    println!("{}", table.render());

    println!("# Improvements (positive = proposed algorithm is better)");
    let get = |name: &str| {
        rows.iter()
            .find(|(n, _, _)| n.starts_with(name))
            .expect("ran")
            .1
    };
    let ol_gd = get("OL_GD");
    let ol_gan = get("OL_GAN");
    for baseline in ["Greedy_GD", "Pri_GD"] {
        let b = get(baseline);
        println!("OL_GD vs {baseline}: {:.1}%", (b - ol_gd) / b * 100.0);
    }
    let reg = get("OL_Reg");
    println!("OL_GAN vs OL_Reg: {:.1}%", (reg - ol_gan) / reg * 100.0);
    println!("\npaper claim: proposed algorithms outperform baselines by around 15%");

    maybe_write_json("summary", &json);
    let profile = [
        ("OL_GD", RunSpec::fig3(Algo::OlGd)),
        ("Greedy_GD", RunSpec::fig3(Algo::GreedyGd)),
        ("Pri_GD", RunSpec::fig3(Algo::PriGd)),
        ("OL_GAN", RunSpec::fig6(Algo::OlGan)),
        ("OL_Reg", RunSpec::fig6(Algo::OlReg)),
    ];
    maybe_obs_profile("summary", &profile);
}
