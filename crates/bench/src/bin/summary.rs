//! §VI headline: "the performance of the proposed algorithms outperform
//! existing algorithms by around 15%".
//!
//! Aggregates the Fig. 3 (given-demand) and Fig. 6 (unknown-demand)
//! settings into one improvement table.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, JsonSeries, RunSpec,
    Table,
};

fn main() {
    bench::init_bin("summary");
    let repeats = repeats();
    println!(
        "Headline summary — 100 stations, {} slots, {} topologies per cell\n",
        bench::slots(),
        repeats
    );

    let mut table = Table::new(
        "Mean average delay (ms) and std over topologies",
        "algorithm",
    );
    // One job graph covering both regimes: the three given-demand
    // policies on the Fig. 3 setting, the two unknown-demand ones on
    // the Fig. 6 setting.
    let cells: Vec<(Algo, &str, RunSpec)> = vec![
        (Algo::OlGd, "given", RunSpec::fig3(Algo::OlGd)),
        (Algo::GreedyGd, "given", RunSpec::fig3(Algo::GreedyGd)),
        (Algo::PriGd, "given", RunSpec::fig3(Algo::PriGd)),
        (Algo::OlGan, "unknown", RunSpec::fig6(Algo::OlGan)),
        (Algo::OlReg, "unknown", RunSpec::fig6(Algo::OlReg)),
    ];
    let specs: Vec<RunSpec> = cells.iter().map(|(_, _, s)| s.clone()).collect();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut json = Vec::new();
    for ((algo, regime, _), reports) in cells.iter().zip(run_grid(&specs, repeats)) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        rows.push((format!("{} ({regime})", algo.name()), m, s));
        json.push(JsonSeries {
            label: format!("{}/{regime}", algo.name()),
            reports,
        });
    }
    table.x_values(rows.iter().map(|(n, _, _)| n.clone()));
    table.series("mean_delay_ms", rows.iter().map(|(_, m, _)| *m).collect());
    table.series("std", rows.iter().map(|(_, _, s)| *s).collect());
    println!("{}", table.render());

    println!("# Improvements (positive = proposed algorithm is better)");
    let get = |name: &str| {
        rows.iter()
            .find(|(n, _, _)| n.starts_with(name))
            .expect("ran")
            .1
    };
    let ol_gd = get("OL_GD");
    let ol_gan = get("OL_GAN");
    for baseline in ["Greedy_GD", "Pri_GD"] {
        let b = get(baseline);
        println!("OL_GD vs {baseline}: {:.1}%", (b - ol_gd) / b * 100.0);
    }
    let reg = get("OL_Reg");
    println!("OL_GAN vs OL_Reg: {:.1}%", (reg - ol_gan) / reg * 100.0);
    println!("\npaper claim: proposed algorithms outperform baselines by around 15%");

    maybe_write_json("summary", &json);
    let profile = [
        ("OL_GD", RunSpec::fig3(Algo::OlGd)),
        ("Greedy_GD", RunSpec::fig3(Algo::GreedyGd)),
        ("Pri_GD", RunSpec::fig3(Algo::PriGd)),
        ("OL_GAN", RunSpec::fig6(Algo::OlGan)),
        ("OL_Reg", RunSpec::fig6(Algo::OlReg)),
    ];
    maybe_obs_profile("summary", &profile);
    bench::maybe_trace_export("summary");
}
