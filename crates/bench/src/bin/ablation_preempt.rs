//! Ablation: preemption warnings — reactive vs proactive graceful
//! degradation of the caching pipeline under scheduled station kills.
//!
//! Every station is subject to a seeded preemption process
//! ([`FaultConfig::preempt`]): a doomed station first announces its kill
//! `notice` slots ahead, drains (the episode migrates its warm cache
//! entries to the cheapest safe station, the LP down-weights its
//! columns, the repair pass evacuates its requests one slot before the
//! kill), then goes down and later returns. The sweep crosses the
//! notice window ∈ {0, 1, 3, 10 slots} with the preemption intensity
//! over every policy family, under amortized instantiation accounting
//! (so warm-cache value — the thing warnings protect — shows up in the
//! delay numbers).
//!
//! Expected shape: at notice 0 nobody can react and the numbers
//! reproduce the unannounced-outage ablation; as the window widens the
//! warning-aware pipeline recovers most of the preemption penalty
//! (fewer cold restarts, fewer post-outage repairs), with the learning
//! policies benefiting ahead of the warning-blind greedy baselines.
//!
//! `--smoke` runs a tiny grid through the full parallel sweep harness
//! and is byte-comparable across worker counts with
//! `LEXCACHE_ZERO_TIMINGS=1` (the preempt-smoke CI diff).

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, FaultConfig,
    JsonSeries, RunSpec, Table,
};
use mec_workload::ScenarioConfig;

const NOTICES: [usize; 4] = [0, 1, 3, 10];
const RATES: [f64; 2] = [0.05, 0.15];
const ALGOS: [Algo; 6] = [
    Algo::OlGd,
    Algo::OlUcb,
    Algo::GreedyGd,
    Algo::PriGd,
    Algo::OlReg,
    Algo::OlGan,
];

/// Fig. 3 (given demands) or Fig. 6 (hidden demands) spec, shrunk to
/// 60 stations, preemption dialled to `rate` with a `notice`-slot
/// warning window, amortized accounting.
fn spec_for(algo: Algo, rate: f64, notice: usize) -> RunSpec {
    let base = if algo.hidden_demands() {
        RunSpec::fig6(algo)
    } else {
        RunSpec::fig3(algo)
    };
    RunSpec {
        n_stations: 60,
        ..base
    }
    .with_faults(FaultConfig::preempt(rate, notice))
    .with_amortize()
    // Unique per-cell label: one policy appears at every (rate, notice)
    // point, so trace tracks and decide-phase attribution need more
    // than the bare policy name.
    .with_label(format!("{}@{rate}/n{notice}", algo.name()))
}

fn main() {
    bench::init_bin("ablation_preempt");
    if bench::smoke_requested() {
        smoke();
        bench::maybe_trace_export("ablation_preempt");
        return;
    }
    let repeats = repeats().min(3);
    println!(
        "Ablation — preemption warnings, 60 stations, rates {RATES:?}, \
         notice windows {NOTICES:?} slots, {repeats} topologies, amortized accounting\n"
    );

    // One job graph over every (algo, rate, notice) sweep point.
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| {
            RATES.iter().flat_map(move |&rate| {
                NOTICES
                    .iter()
                    .map(move |&notice| spec_for(algo, rate, notice))
            })
        })
        .collect();
    let results = run_grid(&specs, repeats);

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    let mut delay_tables: Vec<Table> = RATES
        .iter()
        .map(|rate| {
            let mut t = Table::new(
                format!("mean delay (ms) by notice window, preempt rate {rate}"),
                "notice slots",
            );
            t.x_values(NOTICES.iter().map(|n| n.to_string()));
            t
        })
        .collect();
    let mut drainage = Table::new(
        format!(
            "drain pipeline per episode at rate {} (warned stations / migrated entries / \
             proactive reroutes), notice 3",
            RATES[RATES.len() - 1]
        ),
        "metric",
    );
    drainage.x_values(["warned".into(), "migrated".into(), "proactive".into()]);
    for algo in ALGOS {
        for (r, &rate) in RATES.iter().enumerate() {
            let mut delays = Vec::new();
            for &notice in &NOTICES {
                let reports = rows.next().expect("one row per sweep point");
                let vals: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
                delays.push(mean_std(&vals).0);
                if r == RATES.len() - 1 && notice == 3 {
                    let stat = |f: fn(&bench::EpisodeReport) -> usize| {
                        mean_std(&reports.iter().map(|r| f(r) as f64).collect::<Vec<_>>()).0
                    };
                    drainage.series(
                        algo.name(),
                        vec![
                            stat(|r| r.total_drained()),
                            stat(|r| r.total_migrated()),
                            stat(|r| r.total_proactive_reroutes()),
                        ],
                    );
                }
                json.push(JsonSeries {
                    label: format!("{}@{rate}/n{notice}", algo.name()),
                    reports,
                });
            }
            delay_tables[r].series(algo.name(), delays);
        }
        println!("{} swept", algo.name());
    }
    for t in &delay_tables {
        println!("\n{}", t.render());
    }
    println!("{}", drainage.render());
    println!("expectation: notice 0 reproduces the unannounced-outage numbers; from");
    println!("notice >= 3 the warned pipeline (cache drain + pre-emptive reroute +");
    println!("warning-aware learners) recovers most of the preemption penalty, and the");
    println!("learning policies stay ahead of the warning-blind greedy baselines");

    maybe_write_json("ablation_preempt", &json);

    let profile: Vec<(&str, RunSpec)> = ALGOS
        .iter()
        .map(|&a| (a.name(), spec_for(a, RATES[RATES.len() - 1], 3)))
        .collect();
    maybe_obs_profile("ablation_preempt", &profile);
    bench::maybe_trace_export("ablation_preempt");
}

/// A tiny notice-window grid through the full parallel sweep harness —
/// fast enough for CI, and (with `LEXCACHE_ZERO_TIMINGS=1` and
/// `--json`) byte-identical across `--threads` counts, which the
/// preempt-smoke CI job diffs.
fn smoke() {
    println!("ablation_preempt --smoke: tiny notice-window grid per policy\n");
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| {
            NOTICES.iter().map(move |&notice| RunSpec {
                n_stations: 12,
                scenario: ScenarioConfig::small(),
                horizon: 6,
                ..spec_for(algo, 0.1, notice)
            })
        })
        .collect();
    let results = run_grid(&specs, 2);
    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in ALGOS {
        for &notice in &NOTICES {
            let reports = rows.next().expect("one row per smoke point");
            for report in &reports {
                let delay = report.mean_avg_delay_ms();
                assert!(
                    delay.is_finite() && delay >= 0.0,
                    "{} produced a non-finite mean delay at notice {notice}",
                    algo.name()
                );
            }
            let mean = mean_std(
                &reports
                    .iter()
                    .map(|r| r.mean_avg_delay_ms())
                    .collect::<Vec<_>>(),
            )
            .0;
            println!(
                "  {:>9}  notice {notice:>2}: {mean:>8.2} ms  warned {:>2}  migrated {:>3}  \
                 proactive {:>3}",
                algo.name(),
                reports.iter().map(|r| r.total_drained()).sum::<usize>(),
                reports.iter().map(|r| r.total_migrated()).sum::<usize>(),
                reports
                    .iter()
                    .map(|r| r.total_proactive_reroutes())
                    .sum::<usize>(),
            );
            json.push(JsonSeries {
                label: format!("{}/n{notice}", algo.name()),
                reports,
            });
        }
    }
    maybe_write_json("ablation_preempt", &json);
    println!("\nsmoke ok");
}
