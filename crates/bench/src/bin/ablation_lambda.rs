//! Ablation: the mutual-information weight `λ` (and the supervised
//! weight `μ`) in the Info-RNN-GAN loss (24)/(26).
//!
//! `λ = 0` degenerates to a plain RNN-GAN (no InfoGAN term — the model
//! the paper argues collapses without the latent-code regularizer);
//! `μ = 0` removes the supervised prediction term.

use bench::{maybe_obs_profile, mean_std, repeats, run_grid, Algo, RunSpec, Table};

fn main() {
    bench::init_bin("ablation_lambda");
    let cells: [(&str, f64, f64); 5] = [
        ("lambda=0 (plain GAN)", 0.0, 1.0),
        ("lambda=0.1", 0.1, 1.0),
        ("lambda=0.5 (default)", 0.5, 1.0),
        ("lambda=1.0", 1.0, 1.0),
        ("mu=0 (adv. only)", 0.5, 0.0),
    ];
    let repeats = repeats().min(5);
    println!(
        "Ablation — GAN loss weights, Fig. 6 setting, {} topologies\n",
        repeats
    );

    let mut table = Table::new("OL_GAN delay vs loss weights", "setting");
    table.x_values(cells.iter().map(|(n, _, _)| n.to_string()));
    let specs: Vec<RunSpec> = cells
        .iter()
        .map(|&(_, lambda, mu)| RunSpec::fig6(Algo::OlGanWith { lambda, mu }))
        .collect();
    let mut delays = Vec::new();
    let mut stds = Vec::new();
    for reports in run_grid(&specs, repeats) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        delays.push(m);
        stds.push(s);
    }
    table.series("mean_delay_ms", delays);
    table.series("std", stds);
    println!("{}", table.render());

    let profile: Vec<(&str, RunSpec)> = cells
        .iter()
        .map(|&(name, lambda, mu)| (name, RunSpec::fig6(Algo::OlGanWith { lambda, mu })))
        .collect();
    maybe_obs_profile("ablation_lambda", &profile);
    bench::maybe_trace_export("ablation_lambda");
}
