//! Ablation: believed-delay estimator under drifting (congestion-
//! modulated) delays — the paper's plain sample mean vs the drift-aware
//! windowed and discounted means.
//!
//! The hidden congestion state is Markov, so the *current* best station
//! changes on the congestion time scale. The sample mean converges to
//! the long-run mean; windowed/discounted estimators track regimes.

use bench::{maybe_obs_profile, mean_std, repeats, run_grid, Algo, RunSpec, Table};
use lexcache_core::policy::EstimatorKind;
use lexcache_core::PolicyConfig;

fn main() {
    bench::init_bin("ablation_estimator");
    let estimators: [(&str, EstimatorKind); 4] = [
        ("sample_mean (paper)", EstimatorKind::SampleMean),
        ("windowed_10", EstimatorKind::Windowed { window: 10 }),
        ("discounted_0.9", EstimatorKind::Discounted { gamma: 0.9 }),
        ("discounted_0.7", EstimatorKind::Discounted { gamma: 0.7 }),
    ];
    let repeats = repeats();
    println!(
        "Ablation — believed-delay estimator, Fig. 3 setting, {} topologies\n",
        repeats
    );

    let mut table = Table::new("OL_GD delay vs estimator", "estimator");
    table.x_values(estimators.iter().map(|(n, _)| n.to_string()));
    let specs: Vec<RunSpec> = estimators
        .iter()
        .map(|&(_, estimator)| {
            RunSpec::fig3(Algo::OlGdWith(
                PolicyConfig::default().with_estimator(estimator),
            ))
        })
        .collect();
    let mut delays = Vec::new();
    let mut stds = Vec::new();
    for reports in run_grid(&specs, repeats) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        delays.push(m);
        stds.push(s);
    }
    table.series("mean_delay_ms", delays);
    table.series("std", stds);
    println!("{}", table.render());

    let profile: Vec<(&str, RunSpec)> = estimators
        .iter()
        .map(|&(name, estimator)| {
            (
                name,
                RunSpec::fig3(Algo::OlGdWith(
                    PolicyConfig::default().with_estimator(estimator),
                )),
            )
        })
        .collect();
    maybe_obs_profile("ablation_estimator", &profile);
    bench::maybe_trace_export("ablation_estimator");
}
