//! Fig. 3: `OL_GD` vs `Greedy_GD` vs `Pri_GD` on a 100-station GT-ITM
//! network over 100 time slots with given demands.
//!
//! (a) average delay per time slot; (b) running time per time slot.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_delay_series, repeats, run_grid, Algo, JsonSeries,
    RunSpec, Table,
};

fn main() {
    bench::init_bin("fig3");
    let repeats = repeats();
    let algos = [Algo::OlGd, Algo::GreedyGd, Algo::PriGd];
    println!(
        "Fig. 3 — given demands, 100 stations, {} slots, {} topologies\n",
        bench::slots(),
        repeats
    );

    let mut delay = Table::new("Fig. 3(a) — average delay per time slot (ms)", "slot");
    let mut runtime = Table::new("Fig. 3(b) — running time per time slot (ms)", "slot");
    let mut first = true;
    let mut means = Vec::new();
    let mut json = Vec::new();
    let specs: Vec<RunSpec> = algos.iter().map(|&a| RunSpec::fig3(a)).collect();
    for (algo, reports) in algos.iter().copied().zip(run_grid(&specs, repeats)) {
        let series = mean_delay_series(&reports);
        json.push(JsonSeries {
            label: algo.name().to_string(),
            reports: reports.clone(),
        });
        if first {
            let xs: Vec<String> = (1..=series.len()).map(|t| t.to_string()).collect();
            delay.x_values(xs.clone());
            runtime.x_values(xs);
            first = false;
        }
        let rt_series: Vec<f64> = (0..series.len())
            .map(|t| {
                reports.iter().map(|r| r.slots[t].decide_us).sum::<f64>()
                    / reports.len() as f64
                    / 1_000.0
            })
            .collect();
        let overall: f64 = series.iter().sum::<f64>() / series.len() as f64;
        means.push((algo.name(), overall));
        delay.series(algo.name(), series);
        runtime.series(algo.name(), rt_series);
    }
    println!("{}", delay.render());
    println!("{}", runtime.render());

    println!("# Headline");
    let ol = means.iter().find(|(n, _)| *n == "OL_GD").expect("ran").1;
    for (name, m) in &means {
        if *name != "OL_GD" {
            println!(
                "OL_GD vs {name}: {:.2} vs {:.2} ms ({:+.1}% delay)",
                ol,
                m,
                (ol - m) / m * 100.0
            );
        }
    }

    maybe_write_json("fig3", &json);
    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&a| (a.name(), RunSpec::fig3(a)))
        .collect();
    maybe_obs_profile("fig3", &profile);
    bench::maybe_trace_export("fig3");
}
