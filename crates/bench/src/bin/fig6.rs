//! Fig. 6: `OL_GAN` vs `OL_Reg` on a 100-station network over 100 time
//! slots with *unknown* bursty demands.
//!
//! (a) average delay per time slot; (b) running time per time slot —
//! the paper reports `OL_GAN` costing roughly 4× `OL_Reg`'s runtime for
//! a clearly lower delay.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_delay_series, repeats, run_grid, Algo, JsonSeries,
    RunSpec, Table,
};

fn main() {
    bench::init_bin("fig6");
    let repeats = repeats();
    let algos = [Algo::OlGan, Algo::OlReg];
    println!(
        "Fig. 6 — unknown flash-crowd demands, 100 stations, {} slots, {} topologies\n",
        bench::slots(),
        repeats
    );

    let mut delay = Table::new("Fig. 6(a) — average delay per time slot (ms)", "slot");
    let mut runtime = Table::new("Fig. 6(b) — running time per time slot (ms)", "slot");
    let mut first = true;
    let mut summary = Vec::new();
    let mut json = Vec::new();
    let specs: Vec<RunSpec> = algos.iter().map(|&a| RunSpec::fig6(a)).collect();
    for (algo, reports) in algos.iter().copied().zip(run_grid(&specs, repeats)) {
        let series = mean_delay_series(&reports);
        json.push(JsonSeries {
            label: algo.name().to_string(),
            reports: reports.clone(),
        });
        if first {
            let xs: Vec<String> = (1..=series.len()).map(|t| t.to_string()).collect();
            delay.x_values(xs.clone());
            runtime.x_values(xs);
            first = false;
        }
        let rt: Vec<f64> = (0..series.len())
            .map(|t| {
                reports.iter().map(|r| r.slots[t].decide_us).sum::<f64>()
                    / reports.len() as f64
                    / 1_000.0
            })
            .collect();
        summary.push((
            algo.name(),
            series.iter().sum::<f64>() / series.len() as f64,
            rt.iter().sum::<f64>() / rt.len() as f64,
        ));
        delay.series(algo.name(), series);
        runtime.series(algo.name(), rt);
    }
    println!("{}", delay.render());
    println!("{}", runtime.render());

    println!("# Headline");
    let gan = summary
        .iter()
        .find(|(n, _, _)| *n == "OL_GAN")
        .expect("ran");
    let reg = summary
        .iter()
        .find(|(n, _, _)| *n == "OL_Reg")
        .expect("ran");
    println!(
        "delay: OL_GAN {:.2} vs OL_Reg {:.2} ms ({:+.1}%)",
        gan.1,
        reg.1,
        (gan.1 - reg.1) / reg.1 * 100.0
    );
    println!(
        "runtime: OL_GAN {:.2} vs OL_Reg {:.2} ms/slot ({:.1}x)",
        gan.2,
        reg.2,
        gan.2 / reg.2
    );

    maybe_write_json("fig6", &json);
    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&a| (a.name(), RunSpec::fig6(a)))
        .collect();
    maybe_obs_profile("fig6", &profile);
    bench::maybe_trace_export("fig6");
}
