//! Latency figure: per-request sojourn percentiles under open-loop
//! load — the regime the paper's slot-level delay proxy cannot see.
//!
//! Every sweep point attaches the event-driven queue core
//! ([`bench::QueueConfig`]) to an otherwise unchanged episode: requests
//! arrive at hashed instants inside each slot, queue at the station
//! their policy picked, and are served at a rate normalized so the
//! whole system runs at offered load ρ. The sweep crosses
//! ρ ∈ {0.5, 0.8, 0.95, 1.1} with every policy family.
//!
//! Expected shape: the mean delay proxy (the paper's metric) is
//! ρ-invariant by construction — the queue layer is pure measurement —
//! while the p99 sojourn diverges from p50 as ρ → 1 and explodes past
//! saturation (ρ = 1.1), where the open-loop backlog compounds across
//! the horizon. Policies with better placement spread load more evenly
//! and keep the tail shorter at the same ρ.
//!
//! `--smoke` runs a tiny grid through the full parallel sweep harness
//! and is byte-comparable across worker counts with
//! `LEXCACHE_ZERO_TIMINGS=1` (the queue-smoke CI diff).

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, JsonSeries,
    QueueConfig, RunSpec, Table,
};
use mec_workload::ScenarioConfig;

const RHOS: [f64; 4] = [0.5, 0.8, 0.95, 1.1];
const ALGOS: [Algo; 6] = [
    Algo::OlGd,
    Algo::OlUcb,
    Algo::GreedyGd,
    Algo::PriGd,
    Algo::OlReg,
    Algo::OlGan,
];

/// Waiting-room depth per station: deep enough that sub-critical loads
/// never drop, shallow enough that the ρ = 1.1 point shows loss.
const QUEUE_CAPACITY: usize = 256;

/// Fig. 3 (given demands) or Fig. 6 (hidden demands) spec, shrunk to
/// 60 stations, with the queue core attached at offered load `rho`.
fn spec_for(algo: Algo, rho: f64) -> RunSpec {
    let base = if algo.hidden_demands() {
        RunSpec::fig6(algo)
    } else {
        RunSpec::fig3(algo)
    };
    RunSpec {
        n_stations: 60,
        ..base
    }
    .with_queue(QueueConfig::open_loop(rho).with_queue_capacity(QUEUE_CAPACITY))
    // Unique per-cell label: one policy appears at every ρ point, so
    // trace tracks and decide-phase attribution need more than the
    // bare policy name.
    .with_label(format!("{}@rho{rho}", algo.name()))
}

fn main() {
    bench::init_bin("fig_latency");
    if bench::smoke_requested() {
        smoke();
        bench::maybe_trace_export("fig_latency");
        return;
    }
    let repeats = repeats().min(3);
    println!(
        "Latency figure — sojourn percentiles under open-loop load, 60 stations, \
         rho {RHOS:?}, {repeats} topologies\n"
    );

    // One job graph over every (algo, rho) sweep point.
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| RHOS.iter().map(move |&rho| spec_for(algo, rho)))
        .collect();
    let results = run_grid(&specs, repeats);

    let mut proxy = Table::new("mean delay proxy (ms) by offered load", "rho");
    let mut p50 = Table::new("mean p50 sojourn (ms) by offered load", "rho");
    let mut p99 = Table::new("mean p99 sojourn (ms) by offered load", "rho");
    let mut drops = Table::new(
        format!("queue drops per episode by offered load (waiting room {QUEUE_CAPACITY})"),
        "rho",
    );
    for t in [&mut proxy, &mut p50, &mut p99, &mut drops] {
        t.x_values(RHOS.iter().map(|r| r.to_string()));
    }

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in ALGOS {
        let (mut proxies, mut p50s, mut p99s, mut dropped) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for &rho in &RHOS {
            let reports = rows.next().expect("one row per sweep point");
            let mean_of = |f: &dyn Fn(&bench::EpisodeReport) -> f64| {
                mean_std(&reports.iter().map(f).collect::<Vec<_>>()).0
            };
            proxies.push(mean_of(&|r| r.mean_avg_delay_ms()));
            p50s.push(mean_of(&|r| r.mean_p50_sojourn_ms()));
            p99s.push(mean_of(&|r| r.mean_p99_sojourn_ms()));
            dropped.push(mean_of(&|r| r.total_queue_dropped() as f64));
            json.push(JsonSeries {
                label: format!("{}@rho{rho}", algo.name()),
                reports,
            });
        }
        proxy.series(algo.name(), proxies);
        p50.series(algo.name(), p50s);
        p99.series(algo.name(), p99s);
        drops.series(algo.name(), dropped);
        println!("{} swept", algo.name());
    }
    for t in [&proxy, &p50, &p99, &drops] {
        println!("\n{}", t.render());
    }
    println!("expectation: the delay proxy is flat in rho (the queue layer is pure");
    println!("measurement); p99 pulls away from p50 as rho -> 1 and explodes past");
    println!("saturation at rho 1.1, where finite waiting rooms also start dropping");

    maybe_write_json("fig_latency", &json);

    let profile: Vec<(&str, RunSpec)> = ALGOS
        .iter()
        .map(|&a| (a.name(), spec_for(a, RHOS[2])))
        .collect();
    maybe_obs_profile("fig_latency", &profile);
    bench::maybe_trace_export("fig_latency");
}

/// A tiny ρ-grid through the full parallel sweep harness — fast enough
/// for CI, and (with `LEXCACHE_ZERO_TIMINGS=1` and `--json`)
/// byte-identical across `--threads` counts, which the queue-smoke CI
/// job diffs.
fn smoke() {
    println!("fig_latency --smoke: tiny rho grid per policy\n");
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| {
            RHOS.iter().map(move |&rho| RunSpec {
                n_stations: 12,
                scenario: ScenarioConfig::small(),
                horizon: 6,
                ..spec_for(algo, rho)
            })
        })
        .collect();
    let results = run_grid(&specs, 2);
    let mut json = Vec::new();
    let mut rows = results.into_iter();
    let mut measured_any_sojourn = false;
    for algo in ALGOS {
        for &rho in &RHOS {
            let reports = rows.next().expect("one row per smoke point");
            for report in &reports {
                let delay = report.mean_avg_delay_ms();
                assert!(
                    delay.is_finite() && delay >= 0.0,
                    "{} produced a non-finite mean delay at rho {rho}",
                    algo.name()
                );
                for s in &report.slots {
                    assert!(
                        s.p99_sojourn_ms.is_finite() && s.p99_sojourn_ms >= s.p50_sojourn_ms,
                        "{} violated p99 >= p50 at rho {rho}",
                        algo.name()
                    );
                    measured_any_sojourn |= s.p99_sojourn_ms > 0.0;
                }
            }
            let mean_p99 = mean_std(
                &reports
                    .iter()
                    .map(|r| r.mean_p99_sojourn_ms())
                    .collect::<Vec<_>>(),
            )
            .0;
            println!(
                "  {:>9}  rho {rho:>4}: p99 sojourn {mean_p99:>9.2} ms  dropped {:>4}",
                algo.name(),
                reports
                    .iter()
                    .map(|r| r.total_queue_dropped())
                    .sum::<usize>(),
            );
            json.push(JsonSeries {
                label: format!("{}@rho{rho}", algo.name()),
                reports,
            });
        }
    }
    assert!(
        measured_any_sojourn,
        "a loaded queue must measure at least one non-zero sojourn"
    );
    maybe_write_json("fig_latency", &json);
    println!("\nsmoke ok");
}
