//! Prediction-accuracy audit: one-step-ahead MAE of the Info-RNN-GAN
//! versus the Eq. 27 ARMA on held-out flash-crowd cell series, overall
//! and restricted to burst slots.
//!
//! This isolates the §V claim — the GAN predicts bursty demand better
//! from small samples — from the assignment machinery around it.

use forecast::{mae, MultiSeries, PaperArma};
use infogan::{InfoGanConfig, InfoRnnGan};
use mec_net::{topology::gtitm, NetworkConfig};
use mec_workload::demand::{DemandProcess as _, FlashCrowd, FlashCrowdConfig};
use mec_workload::ScenarioConfig;

fn main() {
    bench::init_bin("prediction_mae");
    let obs_session = bench::maybe_obs_begin("prediction_mae");
    // All seeds shift together under `--seed` / `LEXCACHE_SEED`; the
    // defaults (base 0) match the original fixed seeds exactly.
    let base = bench::base_seed();
    let net = NetworkConfig::paper_defaults();
    let topo = gtitm::generate(100, &net, base + 1);
    let scenario = ScenarioConfig::paper_defaults().build(&topo, base + 1);
    let n_cells = scenario.n_cells();
    let mut cell_basics = vec![0.0; n_cells];
    for r in scenario.requests() {
        cell_basics[r.location_cell()] += r.basic_demand();
    }
    println!("prediction audit: {n_cells} cells, pretrain 60 slots, evaluate 80 slots\n");

    // Small-sample pretraining trace (burst residuals).
    let (series, cells) = bench::pretraining_series(&scenario, base + 999, 60);
    let mut gan_cfg = InfoGanConfig::paper_defaults(n_cells);
    gan_cfg.window = 10;
    gan_cfg.mu = 3.0;
    gan_cfg.bins = 24;
    let mut gan = InfoRnnGan::new(gan_cfg, base + 7);
    gan.fit(&series, &cells, 120);

    // Held-out evaluation realization.
    let mut process = FlashCrowd::new(scenario.requests(), FlashCrowdConfig::default(), base + 1);
    let horizon = 80;
    let mut cell_series = vec![Vec::new(); n_cells];
    for _ in 0..horizon {
        process.advance();
        let mut agg = vec![0.0; n_cells];
        for r in scenario.requests() {
            agg[r.location_cell()] += process.demand(r.id());
        }
        for (c, series) in cell_series.iter_mut().enumerate() {
            series.push(agg[c]);
        }
    }

    let mut gan_preds = Vec::new();
    let mut arma_preds = Vec::new();
    let mut actuals = Vec::new();
    let mut armas = MultiSeries::from_fn(n_cells, || PaperArma::with_linear_weights(3));
    for t in 0..horizon - 1 {
        for c in 0..n_cells {
            let hist: Vec<f64> = cell_series[c][..=t]
                .iter()
                .map(|v| (v - cell_basics[c]).max(0.0))
                .collect();
            let mut g = 0.0;
            for _ in 0..8 {
                g += gan.predict_next(&hist, c) / 8.0;
            }
            gan_preds.push(g + cell_basics[c]);
            gan.online_update(&hist, c);
            actuals.push(cell_series[c][t + 1]);
        }
        let obs: Vec<f64> = (0..n_cells).map(|c| cell_series[c][t]).collect();
        armas.observe_all(&obs);
        arma_preds.extend(armas.predict_all());
    }

    println!("overall one-step MAE (data units):");
    println!("  Info-RNN-GAN: {:.2}", mae(&gan_preds, &actuals));
    println!("  ARMA (Eq.27): {:.2}", mae(&arma_preds, &actuals));

    let mut sorted = actuals.clone();
    lexcache_core::float_ord::sort_floats(&mut sorted);
    let median = sorted[sorted.len() / 2];
    let burst_idx: Vec<usize> = (0..actuals.len())
        .filter(|&i| actuals[i] > 2.0 * median)
        .collect();
    if !burst_idx.is_empty() {
        let pick = |xs: &[f64]| -> Vec<f64> { burst_idx.iter().map(|&i| xs[i]).collect() };
        let (ga, aa, ac) = (pick(&gan_preds), pick(&arma_preds), pick(&actuals));
        println!(
            "\nburst slots only ({} of {}):",
            burst_idx.len(),
            actuals.len()
        );
        println!("  Info-RNN-GAN: {:.2}", mae(&ga, &ac));
        println!("  ARMA (Eq.27): {:.2}", mae(&aa, &ac));
    }

    bench::maybe_obs_finish(obs_session);
    bench::maybe_trace_export("prediction_mae");
}
