//! Resilience figure: graceful degradation under overload — deadlines,
//! deterministic retries, circuit breakers and SLO-aware admission
//! control layered on the open-loop queue core.
//!
//! Every sweep point attaches the queue core under processor sharing
//! with a 300 ms per-request deadline and a bounded retry budget, then
//! crosses ρ ∈ {0.8, 0.95, 1.1, 1.3} × every policy family × two arms:
//!
//! * `off` — deadlines and retries only ([`bench::ResilConfig::slo`]
//!   with breakers and admission disabled): the queue keeps accepting
//!   everything, and past saturation processor sharing spreads capacity
//!   across jobs that are already doomed to miss.
//! * `on` — the full SLO stack: per-station circuit breakers
//!   (Closed → Open → HalfOpen) down-weight troubled stations in the
//!   caching LP, and backlog-threshold admission sheds low-priority
//!   work at the door instead of reaping it at the deadline.
//!
//! Expected shape: below saturation the two arms are near-identical
//! (gates that never trip cost nothing). Past saturation (ρ ≥ 1.1) the
//! `on` arm sheds load early, keeps the p99 sojourn and deadline-miss
//! rate strictly lower, and completes *more* jobs inside their
//! deadline — shedding beats reaping because a shed job never consumed
//! service capacity.
//!
//! `--smoke` runs a tiny grid through the full parallel sweep harness,
//! asserts the breakers actually fired at ρ = 1.3, and is
//! byte-comparable across worker counts with `LEXCACHE_ZERO_TIMINGS=1`
//! (the resilience-smoke CI diff).

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, JsonSeries,
    QueueConfig, QueueDiscipline, ResilConfig, RunSpec, Table,
};
use mec_workload::ScenarioConfig;

const RHOS: [f64; 4] = [0.8, 0.95, 1.1, 1.3];
const ALGOS: [Algo; 6] = [
    Algo::OlGd,
    Algo::OlUcb,
    Algo::GreedyGd,
    Algo::PriGd,
    Algo::OlReg,
    Algo::OlGan,
];

/// The two resilience arms of the sweep.
const MODES: [Mode; 2] = [Mode::Off, Mode::On];

/// Per-request deadline for the full figure (3 slots of headroom).
const DEADLINE_MS: f64 = 300.0;

/// Waiting-room depth per station, matching `fig_latency` so the two
/// figures' drop behaviour is comparable.
const QUEUE_CAPACITY: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Deadlines + retries only — no breakers, no admission control.
    Off,
    /// The full stack: breakers and admission gates armed.
    On,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::On => "on",
        }
    }

    /// The figure-scale resilience config of this arm.
    fn resil(self) -> ResilConfig {
        match self {
            Mode::Off => ResilConfig::slo(DEADLINE_MS)
                .without_breakers()
                .without_admission(),
            // Backlog threshold 3: under processor sharing a station
            // holding more than ~2× that many residents cannot finish
            // any of them inside the deadline, so shedding there is
            // strictly better than admitting-and-reaping.
            Mode::On => ResilConfig::slo(DEADLINE_MS).with_admission(3, 0),
        }
    }

    /// A tighter config for the smoke grid (horizon 8, 12 stations):
    /// a 150 ms deadline with a 2-slot breaker window and a backlog-2
    /// admission gate, so breakers and sheds observably fire within
    /// the tiny horizon at ρ = 1.3.
    fn smoke_resil(self) -> ResilConfig {
        match self {
            Mode::Off => ResilConfig::slo(150.0)
                .without_breakers()
                .without_admission(),
            Mode::On => ResilConfig::slo(150.0)
                .with_breaker(2, 0.2, 100.0, 1, 1)
                .with_admission(2, 0),
        }
    }
}

/// Fig. 3 (given demands) or Fig. 6 (hidden demands) spec, shrunk to
/// 60 stations, with the queue core attached at offered load `rho`
/// under processor sharing and this arm's resilience config.
fn spec_for(algo: Algo, rho: f64, mode: Mode) -> RunSpec {
    let base = if algo.hidden_demands() {
        RunSpec::fig6(algo)
    } else {
        RunSpec::fig3(algo)
    };
    RunSpec {
        n_stations: 60,
        ..base
    }
    .with_queue(
        QueueConfig::open_loop(rho)
            .with_discipline(QueueDiscipline::ProcessorSharing)
            .with_queue_capacity(QUEUE_CAPACITY)
            .with_resilience(mode.resil()),
    )
    .with_label(format!("{}@rho{rho}/{}", algo.name(), mode.name()))
}

fn main() {
    bench::init_bin("fig_resilience");
    if bench::smoke_requested() {
        smoke();
        bench::maybe_trace_export("fig_resilience");
        return;
    }
    let repeats = repeats().min(3);
    println!(
        "Resilience figure — graceful degradation under overload, 60 stations, \
         deadline {DEADLINE_MS} ms, rho {RHOS:?}, arms off/on, {repeats} topologies\n"
    );

    // One job graph over every (algo, rho, mode) sweep point.
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| {
            RHOS.iter()
                .flat_map(move |&rho| MODES.iter().map(move |&mode| spec_for(algo, rho, mode)))
        })
        .collect();
    let results = run_grid(&specs, repeats);

    let mut goodput = Table::new(
        "jobs completed inside deadline per episode by offered load",
        "rho",
    );
    let mut miss = Table::new("deadline-miss rate by offered load", "rho");
    let mut p99 = Table::new("mean p99 sojourn (ms) by offered load", "rho");
    let mut gates = Table::new(
        "shed jobs + breaker-open station-slots per episode by offered load",
        "rho",
    );
    for t in [&mut goodput, &mut miss, &mut p99, &mut gates] {
        t.x_values(RHOS.iter().map(|r| r.to_string()));
    }

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in ALGOS {
        // One accumulator per (mode, metric), filled in ρ order.
        let mut acc: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 4]; 2];
        for &rho in &RHOS {
            for (m, mode) in MODES.into_iter().enumerate() {
                let reports = rows.next().expect("one row per sweep point");
                let mean_of = |f: &dyn Fn(&bench::EpisodeReport) -> f64| {
                    mean_std(&reports.iter().map(f).collect::<Vec<_>>()).0
                };
                acc[m][0].push(mean_of(&|r| r.total_queue_completed() as f64));
                acc[m][1].push(mean_of(&|r| r.deadline_miss_rate()));
                acc[m][2].push(mean_of(&|r| r.mean_p99_sojourn_ms()));
                acc[m][3].push(mean_of(&|r| {
                    (r.total_shed() + r.total_breaker_open_slots()) as f64
                }));
                json.push(JsonSeries {
                    label: format!("{}@rho{rho}/{}", algo.name(), mode.name()),
                    reports,
                });
            }
        }
        for (m, mode) in MODES.into_iter().enumerate() {
            let series = format!("{}/{}", algo.name(), mode.name());
            let mut cols = std::mem::take(&mut acc[m]).into_iter();
            goodput.series(series.clone(), cols.next().unwrap());
            miss.series(series.clone(), cols.next().unwrap());
            p99.series(series.clone(), cols.next().unwrap());
            gates.series(series, cols.next().unwrap());
        }
        println!("{} swept", algo.name());
    }
    for t in [&goodput, &miss, &p99, &gates] {
        println!("\n{}", t.render());
    }
    println!("expectation: below saturation the off/on arms coincide (idle gates are");
    println!("free); past rho 1.1 the on arm sheds early, trips breakers, and keeps");
    println!("goodput higher and the deadline-miss rate and p99 sojourn lower than");
    println!("admitting everything and reaping it at the deadline");

    maybe_write_json("fig_resilience", &json);

    let profile: Vec<(&str, RunSpec)> = ALGOS
        .iter()
        .map(|&a| (a.name(), spec_for(a, RHOS[2], Mode::On)))
        .collect();
    maybe_obs_profile("fig_resilience", &profile);
    bench::maybe_trace_export("fig_resilience");
}

/// Smoke ρ values: one near-critical point and one deep-overload point
/// where the gates must observably fire.
const SMOKE_RHOS: [f64; 2] = [0.95, 1.3];

/// A tiny grid through the full parallel sweep harness — fast enough
/// for CI, byte-identical across `--threads` counts under
/// `LEXCACHE_ZERO_TIMINGS=1`, and a live check that the breaker and
/// admission machinery actually engages under deep overload.
fn smoke() {
    println!("fig_resilience --smoke: tiny rho grid per policy and arm\n");
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| {
            SMOKE_RHOS.iter().flat_map(move |&rho| {
                MODES.iter().map(move |&mode| RunSpec {
                    n_stations: 12,
                    scenario: ScenarioConfig::small(),
                    horizon: 8,
                    ..spec_for(algo, rho, mode).with_queue(
                        QueueConfig::open_loop(rho)
                            .with_discipline(QueueDiscipline::ProcessorSharing)
                            .with_queue_capacity(QUEUE_CAPACITY)
                            .with_resilience(mode.smoke_resil()),
                    )
                })
            })
        })
        .collect();
    let results = run_grid(&specs, 2);
    let mut json = Vec::new();
    let mut rows = results.into_iter();
    let (mut overload_missed, mut overload_shed, mut overload_breaker) = (0usize, 0usize, 0usize);
    for algo in ALGOS {
        for &rho in &SMOKE_RHOS {
            for mode in MODES {
                let reports = rows.next().expect("one row per smoke point");
                for report in &reports {
                    let delay = report.mean_avg_delay_ms();
                    assert!(
                        delay.is_finite() && delay >= 0.0,
                        "{} produced a non-finite mean delay at rho {rho}/{}",
                        algo.name(),
                        mode.name()
                    );
                    // Retries either exhaust their budget (a miss) or
                    // land (a completion); successes can never exceed
                    // attempts.
                    assert!(
                        report.total_retries_succeeded() <= report.total_retries_attempted(),
                        "{} recorded more retry successes than attempts at rho {rho}",
                        algo.name()
                    );
                    if rho > 1.0 {
                        match mode {
                            Mode::Off => overload_missed += report.total_deadline_missed(),
                            Mode::On => {
                                overload_shed += report.total_shed();
                                overload_breaker += report.total_breaker_open_slots();
                            }
                        }
                    }
                }
                let mean_miss = mean_std(
                    &reports
                        .iter()
                        .map(|r| r.deadline_miss_rate())
                        .collect::<Vec<_>>(),
                )
                .0;
                println!(
                    "  {:>9}  rho {rho:>4} {:>3}: miss rate {mean_miss:>6.3}  shed {:>4}  breaker-open {:>3}",
                    algo.name(),
                    mode.name(),
                    reports.iter().map(|r| r.total_shed()).sum::<usize>(),
                    reports
                        .iter()
                        .map(|r| r.total_breaker_open_slots())
                        .sum::<usize>(),
                );
                json.push(JsonSeries {
                    label: format!("{}@rho{rho}/{}", algo.name(), mode.name()),
                    reports,
                });
            }
        }
    }
    assert!(
        overload_missed > 0,
        "deep overload without gates must miss deadlines"
    );
    assert!(
        overload_shed > 0,
        "admission control must shed at rho 1.3 (backlog threshold 2)"
    );
    assert!(
        overload_breaker > 0,
        "circuit breakers must trip at rho 1.3 (2-slot window, p99 100 ms)"
    );
    maybe_write_json("fig_resilience", &json);
    println!("\nsmoke ok");
}
