//! Ablation: topology family × congestion mechanism.
//!
//! Fig. 5's claim — the learning gap is *enlarged* on real topologies
//! because of bottleneck links — depends on congestion being endogenous
//! (stations slow down because load concentrates on them). This sweep
//! compares `OL_GD` vs `Greedy_GD` across flat GT-ITM, transit-stub and
//! AS1755-shaped graphs of the same size, with exogenous congestion only
//! and with load-driven congestion added
//! (`EpisodeConfig::with_load_sensitivity`).

use bench::{maybe_obs_profile, mean_std, repeats, Algo, RunSpec, Table, TopoKind};
use lexcache_core::{Episode, EpisodeConfig};
use mec_net::topology::transit_stub;
use mec_net::NetworkConfig;
use mec_workload::scenario::DemandKind;
use mec_workload::ScenarioConfig;

const STATIONS: usize = 87;

fn run(algo: Algo, topo_name: &str, load_sensitivity: f64, seed: u64) -> f64 {
    let net_cfg = NetworkConfig::paper_defaults();
    let topo = match topo_name {
        "gtitm" => TopoKind::Gtitm.build(STATIONS, &net_cfg, seed),
        "transit-stub" => transit_stub::generate(
            transit_stub::TransitStubConfig::for_size(STATIONS),
            &net_cfg,
            seed,
        ),
        "as1755" => TopoKind::As1755.build(STATIONS, &net_cfg, seed),
        other => unreachable!("unknown topology {other}"),
    };
    let scenario = ScenarioConfig::paper_defaults()
        .with_demand(DemandKind::Fixed)
        .build(&topo, seed);
    let spec = RunSpec::fig3(algo);
    let mut policy = bench::make_policy(&spec, &scenario, seed);
    let ep_cfg = EpisodeConfig::new(seed).with_load_sensitivity(load_sensitivity);
    let mut episode = Episode::with_config(topo, net_cfg, scenario, ep_cfg);
    episode
        .run(policy.as_mut(), bench::slots())
        .mean_avg_delay_ms()
}

fn main() {
    bench::init_bin("ablation_topology");
    let repeats = repeats();
    println!(
        "Ablation — topology family x congestion mechanism, {STATIONS} stations, {} topologies\n",
        repeats
    );
    let topologies = ["gtitm", "transit-stub", "as1755"];
    for &sensitivity in &[0.0, 2.0] {
        // lexlint: allow(LX06): sentinel compare — 0.0 is the exact "disabled" config value
        let label = if sensitivity == 0.0 {
            "exogenous congestion only"
        } else {
            "with load-driven congestion (s = 2)"
        };
        let mut table = Table::new(format!("OL_GD advantage by topology — {label}"), "topology");
        table.x_values(topologies.iter().map(|t| t.to_string()));
        // Job graph: one series per (topology, algorithm) pair at this
        // sensitivity, seeds positional per repeat.
        let points: Vec<(&str, Algo)> = topologies
            .iter()
            .flat_map(|&topo| [(topo, Algo::OlGd), (topo, Algo::GreedyGd)])
            .collect();
        let cells = bench::run_cells(points.len(), repeats, |series, seed| {
            let (topo, algo) = points[series];
            run(algo, topo, sensitivity, seed)
        });
        let mut ol = Vec::new();
        let mut greedy = Vec::new();
        let mut advantage = Vec::new();
        for pair in cells.chunks(2) {
            let (om, _) = mean_std(&pair[0]);
            let (gm, _) = mean_std(&pair[1]);
            ol.push(om);
            greedy.push(gm);
            advantage.push((gm - om) / gm * 100.0);
        }
        table.series("OL_GD", ol);
        table.series("Greedy_GD", greedy);
        table.series("advantage_%", advantage);
        println!("{}", table.render());
    }
    println!("expectation: with load-driven congestion the advantage grows on");
    println!("path-concentrated topologies (as1755 > transit-stub > gtitm)");

    let profile = [
        ("OL_GD", RunSpec::fig3(Algo::OlGd)),
        ("Greedy_GD", RunSpec::fig3(Algo::GreedyGd)),
    ];
    maybe_obs_profile("ablation_topology", &profile);
    bench::maybe_trace_export("ablation_topology");
}
