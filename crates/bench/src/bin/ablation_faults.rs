//! Ablation: fault injection — graceful degradation of the whole
//! decision pipeline under seeded station outages, link failures and
//! capacity brown-outs (`FaultConfig::intensity`).
//!
//! Sweeps the outage intensity over every policy family. Expected
//! shape: mean delay degrades *gracefully* (no cliffs, no panics) as
//! faults intensify, the learning policies keep their advantage over
//! the greedy baselines, and every displaced request is accounted for
//! as rerouted or dropped — never silently lost. At rate 0 the fault
//! machinery is disabled entirely and episodes reproduce the fault-free
//! figures bit-for-bit at the same seed.
//!
//! `--smoke` runs one tiny faulty episode per policy (the CI smoke
//! job) and asserts the reported metrics are finite.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, FaultConfig,
    JsonSeries, RunSpec, Table,
};
use mec_workload::ScenarioConfig;

const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];
const ALGOS: [Algo; 6] = [
    Algo::OlGd,
    Algo::OlUcb,
    Algo::GreedyGd,
    Algo::PriGd,
    Algo::OlReg,
    Algo::OlGan,
];

/// Fig. 3 (given demands) or Fig. 6 (hidden demands) spec, shrunk to
/// 60 stations, with the fault process dialled to `rate`.
fn spec_for(algo: Algo, rate: f64) -> RunSpec {
    let base = if algo.hidden_demands() {
        RunSpec::fig6(algo)
    } else {
        RunSpec::fig3(algo)
    };
    RunSpec {
        n_stations: 60,
        ..base
    }
    .with_faults(FaultConfig::intensity(rate))
    // Unique per-cell label: the sweep runs each policy at every rate,
    // so trace tracks and decide-phase attribution need more than the
    // bare policy name.
    .with_label(format!("{}@{rate}", algo.name()))
}

fn main() {
    bench::init_bin("ablation_faults");
    if bench::smoke_requested() {
        smoke();
        bench::maybe_trace_export("ablation_faults");
        return;
    }
    let repeats = repeats().min(5);
    println!(
        "Ablation — fault injection, 60 stations, outage intensities {RATES:?}, \
         {repeats} topologies\n"
    );

    let mut delay = Table::new("mean delay (ms) by outage intensity", "outage rate");
    delay.x_values(RATES.iter().map(|r| format!("{r}")));
    let mut disruption = Table::new(
        "mean displaced requests per episode (rerouted + dropped)",
        "outage rate",
    );
    disruption.x_values(RATES.iter().map(|r| format!("{r}")));
    // One job graph over every (algo, rate) sweep point.
    let specs: Vec<RunSpec> = ALGOS
        .iter()
        .flat_map(|&algo| RATES.iter().map(move |&rate| spec_for(algo, rate)))
        .collect();
    let results = run_grid(&specs, repeats);

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in ALGOS {
        let mut delays = Vec::new();
        let mut displaced = Vec::new();
        for &rate in &RATES {
            let reports = rows.next().expect("one row per sweep point");
            let vals: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
            delays.push(mean_std(&vals).0);
            let moved: Vec<f64> = reports
                .iter()
                .map(|r| (r.total_rerouted() + r.total_dropped()) as f64)
                .collect();
            displaced.push(mean_std(&moved).0);
            json.push(JsonSeries {
                label: format!("{}@{rate}", algo.name()),
                reports,
            });
        }
        delay.series(algo.name(), delays);
        disruption.series(algo.name(), displaced);
        println!("{} swept", algo.name());
    }
    println!("\n{}", delay.render());
    println!("{}", disruption.render());
    println!("expectation: delay degrades gracefully with the outage rate (no cliffs),");
    println!("the learning policies keep their advantage over the greedy baselines, and");
    println!("rate 0 reproduces the fault-free figures bit-for-bit at the same seed");

    maybe_write_json("ablation_faults", &json);

    let profile: Vec<(&str, RunSpec)> = ALGOS
        .iter()
        .map(|&a| (a.name(), spec_for(a, 0.1)))
        .collect();
    maybe_obs_profile("ablation_faults", &profile);
    bench::maybe_trace_export("ablation_faults");
}

/// One tiny fault-injected episode per policy — fast enough for CI.
fn smoke() {
    println!("ablation_faults --smoke: one tiny faulty episode per policy\n");
    for algo in ALGOS {
        for rate in [0.0, 0.1] {
            let spec = RunSpec {
                n_stations: 12,
                scenario: ScenarioConfig::small(),
                horizon: 6,
                ..spec_for(algo, rate)
            };
            let report = bench::run_one(&spec, bench::base_seed());
            let delay = report.mean_avg_delay_ms();
            assert!(
                delay.is_finite() && delay >= 0.0,
                "{} produced a non-finite mean delay at rate {rate}",
                algo.name()
            );
            println!(
                "  {:>9}  rate {rate:>4}: {delay:>8.2} ms  rerouted {:>3}  dropped {:>3}",
                algo.name(),
                report.total_rerouted(),
                report.total_dropped()
            );
        }
    }
    println!("\nsmoke ok");
}
