//! Fig. 4: `OL_GD` vs `Greedy_GD` vs `Pri_GD` with the network size
//! varied from 50 to 200 stations (given demands).
//!
//! (a) mean average delay vs network size; (b) mean per-slot running
//! time vs network size.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, JsonSeries, RunSpec,
    Table,
};
use mec_workload::scenario::DemandKind;
use mec_workload::ScenarioConfig;

fn main() {
    bench::init_bin("fig4");
    let sizes = [50usize, 100, 150, 200];
    let algos = [Algo::OlGd, Algo::GreedyGd, Algo::PriGd];
    let repeats = repeats();
    println!(
        "Fig. 4 — given demands, sizes {:?}, {} slots, {} topologies\n",
        sizes,
        bench::slots(),
        repeats
    );

    let mut delay = Table::new("Fig. 4(a) — average delay vs network size (ms)", "stations");
    let mut runtime = Table::new(
        "Fig. 4(b) — running time per slot vs network size (ms)",
        "stations",
    );
    delay.x_values(sizes.iter().map(|n| n.to_string()));
    runtime.x_values(sizes.iter().map(|n| n.to_string()));

    // One flat job graph over every (algo, size) sweep point.
    let points: Vec<(Algo, usize)> = algos
        .iter()
        .flat_map(|&algo| sizes.iter().map(move |&n| (algo, n)))
        .collect();
    let specs: Vec<RunSpec> = points
        .iter()
        .map(|&(algo, n)| RunSpec {
            n_stations: n,
            scenario: ScenarioConfig::paper_defaults().with_demand(DemandKind::Fixed),
            ..RunSpec::fig3(algo)
        })
        .collect();
    let results = run_grid(&specs, repeats);

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in algos {
        let mut delays = Vec::new();
        let mut runtimes = Vec::new();
        for &n in &sizes {
            let reports = rows.next().expect("one row per sweep point");
            json.push(JsonSeries {
                label: format!("{}/{n}", algo.name()),
                reports: reports.clone(),
            });
            let (d, _) = mean_std(
                &reports
                    .iter()
                    .map(|r| r.mean_avg_delay_ms())
                    .collect::<Vec<_>>(),
            );
            let (rt, _) = mean_std(
                &reports
                    .iter()
                    .map(|r| r.mean_decide_us() / 1_000.0)
                    .collect::<Vec<_>>(),
            );
            delays.push(d);
            runtimes.push(rt);
        }
        delay.series(algo.name(), delays);
        runtime.series(algo.name(), runtimes);
    }
    println!("{}", delay.render());
    println!("{}", runtime.render());

    maybe_write_json("fig4", &json);
    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&a| (a.name(), RunSpec::fig3(a)))
        .collect();
    maybe_obs_profile("fig4", &profile);
    bench::maybe_trace_export("fig4");
}
