//! Theorem 1 audit: empirical cumulative regret of `OL_GD` against the
//! theoretical bound `σ·log((T−1)/(e^{1/c}+1))`.
//!
//! The bound uses the Lemma 1 gap `σ` computed from the episode's true
//! delay support and instantiation-delay spread. The empirical curve
//! should stay below the bound and flatten logarithmically.

use bandit::{theorem1_bound, EpsilonSchedule, GapParams};
use bench::{maybe_obs_profile, repeats, run_many, Algo, FaultConfig, RunSpec, Table, TopoKind};
use lexcache_core::PolicyConfig;
use mec_workload::scenario::DemandKind;
use mec_workload::ScenarioConfig;

fn main() {
    bench::init_bin("regret_bound");
    let repeats = repeats().min(5);
    let horizon = bench::slots();
    let c = 0.5;
    let gamma = 0.1;
    println!(
        "Theorem 1 audit — OL_GD with eps_t = {c}/t, gamma = {gamma}, {horizon} slots, {repeats} topologies\n"
    );

    let spec = RunSpec {
        topo: TopoKind::Gtitm,
        n_stations: 50,
        scenario: ScenarioConfig::paper_defaults()
            .with_requests(60)
            .with_demand(DemandKind::Fixed),
        horizon,
        algo: Algo::OlGdWith(
            PolicyConfig::default()
                .with_gamma(gamma)
                .with_epsilon(EpsilonSchedule::Decay { c }),
        ),
        track_regret: true,
        faults: FaultConfig::none(),
        amortize: false,
        label: None,
    };
    let reports = run_many(&spec, repeats);

    // Average the empirical cumulative-regret curves.
    let curves: Vec<Vec<f64>> = reports
        .iter()
        .map(|r| r.regret_curve().expect("regret tracked"))
        .collect();
    let mean_curve: Vec<f64> = (0..horizon)
        .map(|t| curves.iter().map(|c| c[t]).sum::<f64>() / curves.len() as f64)
        .collect();

    // Lemma 1 gap from the environment's actual parameter ranges:
    // congestion triples the upper tier delay, jitter widens by 25%.
    let gap = GapParams {
        n_requests: 60,
        d_max: 50.0 * 1.25 * 3.0,
        d_min: 5.0 * 0.75,
        delta_ins: 30.0,
        gamma,
    };
    let sigma = gap.sigma();
    let bound_curve: Vec<f64> = (1..=horizon).map(|t| theorem1_bound(sigma, t, c)).collect();

    let mut table = Table::new(
        "Cumulative regret: empirical (per-request ms) vs Theorem 1 bound",
        "slot",
    );
    let checkpoints: Vec<usize> = (0..horizon)
        .filter(|t| (t + 1) % 10 == 0 || *t == 0)
        .collect();
    table.x_values(checkpoints.iter().map(|t| (t + 1).to_string()));
    table.series(
        "empirical",
        checkpoints.iter().map(|&t| mean_curve[t]).collect(),
    );
    table.series(
        "theorem1_bound",
        checkpoints.iter().map(|&t| bound_curve[t]).collect(),
    );
    println!("{}", table.render());

    println!("# Checks");
    let final_emp = *mean_curve.last().expect("non-empty");
    let final_bound = *bound_curve.last().expect("non-empty");
    println!("sigma (Lemma 1 gap): {sigma:.1}");
    println!("final empirical regret: {final_emp:.2}, bound: {final_bound:.2}");
    println!(
        "empirical within bound: {}",
        if final_emp <= final_bound {
            "yes"
        } else {
            "NO"
        }
    );
    // Logarithmic growth check: the second half should add less regret
    // than the first half.
    let half = mean_curve[horizon / 2];
    println!(
        "second-half regret ({:.2}) < first-half regret ({half:.2}): {}",
        final_emp - half,
        if final_emp - half < half { "yes" } else { "NO" }
    );

    maybe_obs_profile("regret_bound", &[("OL_GD", spec.clone())]);
    bench::maybe_trace_export("regret_bound");
}
