//! Fig. 7: `OL_GAN` vs `OL_Reg` (unknown demands) with the network size
//! varied from 50 to 300 stations, plus the AS1755 real topology.

use bench::{
    maybe_obs_profile, maybe_write_json, mean_std, repeats, run_grid, Algo, JsonSeries, RunSpec,
    Table, TopoKind,
};
use mec_net::topology::as1755;
use mec_workload::demand::FlashCrowdConfig;
use mec_workload::scenario::DemandKind;
use mec_workload::ScenarioConfig;

/// With `LEXCACHE_SCALE_LOAD=1`, load scales with the network
/// (1.5 requests per station) so that the demand-to-capacity ratio — and
/// with it the value of accurate burst prediction — is comparable across
/// sizes. The default keeps the paper-style fixed 150-request population,
/// under which big networks absorb bursts without contention and the two
/// predictors converge (see EXPERIMENTS.md).
fn requests_for(stations: usize) -> usize {
    if bench::cli::env_var("LEXCACHE_SCALE_LOAD").is_some_and(|v| v == "1") {
        (stations * 3) / 2
    } else {
        150
    }
}

fn main() {
    bench::init_bin("fig7");
    let sizes = [50usize, 100, 150, 200, 250, 300];
    let algos = [Algo::OlGan, Algo::OlReg];
    let repeats = repeats();
    println!(
        "Fig. 7 — unknown flash-crowd demands, sizes {:?} + AS1755, {} slots, {} topologies\n",
        sizes,
        bench::slots(),
        repeats
    );

    let mut delay = Table::new("Fig. 7(a) — average delay vs network size (ms)", "stations");
    delay.x_values(sizes.iter().map(|n| n.to_string()));
    // One flat job graph over every (algo, size) sweep point.
    let points: Vec<(Algo, usize)> = algos
        .iter()
        .flat_map(|&algo| sizes.iter().map(move |&n| (algo, n)))
        .collect();
    let specs: Vec<RunSpec> = points
        .iter()
        .map(|&(algo, n)| {
            let base = RunSpec::fig6(algo);
            RunSpec {
                n_stations: n,
                scenario: base.scenario.with_requests(requests_for(n)),
                ..base
            }
        })
        .collect();
    let results = run_grid(&specs, repeats);

    let mut json = Vec::new();
    let mut rows = results.into_iter();
    for algo in algos {
        let mut delays = Vec::new();
        for &n in &sizes {
            let reports = rows.next().expect("one row per sweep point");
            json.push(JsonSeries {
                label: format!("{}/{n}", algo.name()),
                reports: reports.clone(),
            });
            let (d, _) = mean_std(
                &reports
                    .iter()
                    .map(|r| r.mean_avg_delay_ms())
                    .collect::<Vec<_>>(),
            );
            delays.push(d);
        }
        delay.series(algo.name(), delays);
    }
    println!("{}", delay.render());

    let mut real = Table::new(
        "Fig. 7(b) — AS1755: delay (ms) and runtime (ms/slot)",
        "metric",
    );
    real.x_values(["avg_delay_ms".into(), "runtime_ms_per_slot".into()]);
    let real_specs: Vec<RunSpec> = algos
        .iter()
        .map(|&algo| RunSpec {
            topo: TopoKind::As1755,
            n_stations: as1755::AS1755_NODES,
            scenario: ScenarioConfig::paper_defaults()
                .with_demand(DemandKind::Flash(FlashCrowdConfig::default())),
            ..RunSpec::fig6(algo)
        })
        .collect();
    for (algo, reports) in algos.iter().copied().zip(run_grid(&real_specs, repeats)) {
        let (d, _) = mean_std(
            &reports
                .iter()
                .map(|r| r.mean_avg_delay_ms())
                .collect::<Vec<_>>(),
        );
        let (rt, _) = mean_std(
            &reports
                .iter()
                .map(|r| r.mean_decide_us() / 1_000.0)
                .collect::<Vec<_>>(),
        );
        real.series(algo.name(), vec![d, rt]);
    }
    println!("{}", real.render());

    maybe_write_json("fig7", &json);
    let profile: Vec<(&str, RunSpec)> = algos
        .iter()
        .map(|&a| (a.name(), RunSpec::fig6(a)))
        .collect();
    maybe_obs_profile("fig7", &profile);
    bench::maybe_trace_export("fig7");
}
