//! Ablation: the candidate threshold `γ` of Eq. (9).
//!
//! Small `γ` admits many candidate stations (more spread, closer to the
//! LP), large `γ` collapses the candidate set (forcing the fallback to
//! the top fractional columns). The paper fixes `γ` implicitly; this
//! sweep shows the sensitivity.

use bandit::EpsilonSchedule;
use bench::{maybe_obs_profile, mean_std, repeats, run_grid, Algo, RunSpec, Table};
use lexcache_core::PolicyConfig;

fn main() {
    bench::init_bin("ablation_gamma");
    let gammas = [0.05, 0.1, 0.2, 0.3, 0.5];
    let repeats = repeats();
    println!(
        "Ablation — candidate threshold gamma, Fig. 3 setting, {} topologies\n",
        repeats
    );

    let mut table = Table::new("OL_GD delay vs gamma", "gamma");
    table.x_values(gammas.iter().map(|g| format!("{g}")));
    let specs: Vec<RunSpec> = gammas
        .iter()
        .map(|&gamma| {
            RunSpec::fig3(Algo::OlGdWith(
                PolicyConfig::default()
                    .with_gamma(gamma)
                    .with_epsilon(EpsilonSchedule::Decay { c: 0.5 }),
            ))
        })
        .collect();
    let mut delays = Vec::new();
    let mut stds = Vec::new();
    for reports in run_grid(&specs, repeats) {
        let values: Vec<f64> = reports.iter().map(|r| r.mean_avg_delay_ms()).collect();
        let (m, s) = mean_std(&values);
        delays.push(m);
        stds.push(s);
    }
    table.series("mean_delay_ms", delays);
    table.series("std", stds);
    println!("{}", table.render());

    let labels: Vec<String> = gammas.iter().map(|g| format!("gamma={g}")).collect();
    let profile: Vec<(&str, RunSpec)> = labels
        .iter()
        .zip(&gammas)
        .map(|(label, &gamma)| {
            (
                label.as_str(),
                RunSpec::fig3(Algo::OlGdWith(
                    PolicyConfig::default()
                        .with_gamma(gamma)
                        .with_epsilon(EpsilonSchedule::Decay { c: 0.5 }),
                )),
            )
        })
        .collect();
    maybe_obs_profile("ablation_gamma", &profile);
    bench::maybe_trace_export("ablation_gamma");
}
