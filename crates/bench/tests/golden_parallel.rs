//! Golden-trace regression test for the parallel experiment engine.
//!
//! The runner's determinism contract says `--threads N` must be
//! bit-identical to `--threads 1` — positional seeds, canonical-order
//! reduction, per-cell obs shards merged in canonical order. This test
//! pins that end to end for two sweep shapes drawn from the real bins
//! (a figure-style policy sweep and a fault-injection ablation sweep):
//!
//! * every [`EpisodeReport`] must serialize to the **same bytes**
//!   (after stripping the one wall-clock field, `decide_us`), and
//! * the merged observability registries must agree on every counter,
//!   marker, gauge, histogram and span count.
//!
//! Everything runs in a single `#[test]` because the obs sink is
//! process-global: concurrent tests installing their own sinks would
//! race on it.

use bench::{Algo, FaultConfig, RunSpec};
use lexcache_obs::{Registry, ShardedRegistry};
use mec_workload::ScenarioConfig;

/// Shrinks a figure spec to smoke size so the four sweeps finish in
/// seconds.
fn tiny(spec: RunSpec) -> RunSpec {
    RunSpec {
        n_stations: 12,
        scenario: ScenarioConfig::small(),
        horizon: 6,
        ..spec
    }
}

/// Runs one sweep with the obs pipeline attached and returns the
/// serialized (timing-stripped) reports in canonical cell order plus
/// the canonically merged registry.
fn run_instrumented(
    specs: &[RunSpec],
    repeats: usize,
    threads: usize,
    base: u64,
) -> (Vec<String>, Registry) {
    let sharded = ShardedRegistry::new(bench::grid_cells(specs.len(), repeats));
    lexcache_obs::install(Box::new(sharded.clone()));
    let rows = bench::run_grid_with(specs, repeats, threads, base);
    drop(lexcache_obs::uninstall());
    let json: Vec<String> = rows
        .iter()
        .flatten()
        .map(|r| lexcache_obs::json::to_string(&r.with_zeroed_timings()).expect("serialize"))
        .collect();
    (json, sharded.merged())
}

#[test]
fn parallel_runs_are_byte_identical_to_serial() {
    const REPEATS: usize = 3;
    const BASE: u64 = 42;
    let sweeps: [(&str, Vec<RunSpec>); 2] = [
        (
            "fig3/fig6-shaped policy sweep",
            vec![
                tiny(RunSpec::fig3(Algo::OlGd)),
                tiny(RunSpec::fig3(Algo::GreedyGd)),
                tiny(RunSpec::fig6(Algo::OlReg)),
            ],
        ),
        (
            "ablation_faults-shaped sweep",
            vec![
                tiny(RunSpec::fig3(Algo::OlGd).with_faults(FaultConfig::intensity(0.1))),
                tiny(RunSpec::fig6(Algo::OlReg).with_faults(FaultConfig::intensity(0.05))),
            ],
        ),
    ];

    for (name, specs) in &sweeps {
        let (serial_json, serial_obs) = run_instrumented(specs, REPEATS, 1, BASE);
        let (parallel_json, parallel_obs) = run_instrumented(specs, REPEATS, 4, BASE);

        // The reports themselves: one JSON string per cell, canonical
        // order, byte-for-byte equal.
        assert_eq!(
            serial_json.len(),
            specs.len() * REPEATS,
            "{name}: unexpected cell count"
        );
        assert_eq!(
            serial_json, parallel_json,
            "{name}: EpisodeReport bytes diverged between 1 and 4 threads"
        );

        // The merged obs registries: same aggregates bit for bit.
        assert!(
            !serial_obs.counters().is_empty(),
            "{name}: episodes emitted no counters — the comparison would be vacuous"
        );
        assert_eq!(
            serial_obs.counters(),
            parallel_obs.counters(),
            "{name}: merged counters diverged"
        );
        assert_eq!(
            serial_obs.marks(),
            parallel_obs.marks(),
            "{name}: merged markers diverged"
        );
        assert_eq!(
            serial_obs.gauges(),
            parallel_obs.gauges(),
            "{name}: merged gauges diverged"
        );
        assert_eq!(
            serial_obs.hists(),
            parallel_obs.hists(),
            "{name}: merged histograms diverged"
        );
        // Span durations are wall-clock; only the counts are part of
        // the determinism contract.
        let span_counts = |reg: &Registry| -> Vec<(String, u64)> {
            reg.spans()
                .iter()
                .map(|(k, s)| (k.clone(), s.count))
                .collect()
        };
        assert_eq!(
            span_counts(&serial_obs),
            span_counts(&parallel_obs),
            "{name}: merged span counts diverged"
        );
    }
}
