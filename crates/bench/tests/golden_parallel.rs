//! Golden-trace regression test for the parallel experiment engine.
//!
//! The runner's determinism contract says `--threads N` must be
//! bit-identical to `--threads 1` — positional seeds, canonical-order
//! reduction, per-cell obs shards merged in canonical order. This test
//! pins that end to end for five sweep shapes drawn from the real bins
//! (a figure-style policy sweep, a fault-injection ablation sweep, a
//! preemption-warning ablation sweep with live drain/migration, a
//! fig_latency-shaped sweep with the open-loop queue core attached,
//! and a fig_resilience-shaped sweep with deadlines, deterministic
//! retries, breakers and admission control all live):
//!
//! * every [`EpisodeReport`] must serialize to the **same bytes**
//!   (after stripping the one wall-clock field, `decide_us`), and
//! * the merged observability registries must agree on every counter,
//!   marker, gauge, histogram and span count.
//!
//! It then pins the crash-safety half of the contract:
//!
//! * a sweep killed after N cells and resumed from its checkpoint
//!   journal (`--resume`) must produce **byte-identical**
//!   timing-stripped reports to an uninterrupted run, at 1 and at 4
//!   worker threads, re-running only the missing cells;
//! * a cell that panics once is retried with the *same* positional
//!   seed and the sweep's final reports are unchanged.
//!
//! Everything runs in a single `#[test]` because the obs sink and the
//! sweep journaling (`BIN`) state are process-global: concurrent tests
//! installing their own would race on them.

use bench::sweep::{self, arm_journaling, disarm_journaling};
use bench::{Algo, FaultConfig, QueueConfig, QueueDiscipline, ResilConfig, RunSpec, SweepOptions};
use lexcache_obs::{Registry, ShardedRegistry};
use lexcache_runner::Journal;
use mec_workload::ScenarioConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shrinks a figure spec to smoke size so the four sweeps finish in
/// seconds.
fn tiny(spec: RunSpec) -> RunSpec {
    RunSpec {
        n_stations: 12,
        scenario: ScenarioConfig::small(),
        horizon: 6,
        ..spec
    }
}

/// Runs one sweep with the obs pipeline attached and returns the
/// serialized (timing-stripped) reports in canonical cell order plus
/// the canonically merged registry.
fn run_instrumented(
    specs: &[RunSpec],
    repeats: usize,
    threads: usize,
    base: u64,
) -> (Vec<String>, Registry) {
    let sharded = ShardedRegistry::new(bench::grid_cells(specs.len(), repeats));
    lexcache_obs::install(Box::new(sharded.clone()));
    let rows = bench::run_grid_with(specs, repeats, threads, base);
    drop(lexcache_obs::uninstall());
    let json: Vec<String> = rows
        .iter()
        .flatten()
        .map(|r| lexcache_obs::json::to_string(&r.with_zeroed_timings()).expect("serialize"))
        .collect();
    (json, sharded.merged())
}

#[test]
fn parallel_runs_are_byte_identical_to_serial() {
    const REPEATS: usize = 3;
    const BASE: u64 = 42;
    let sweeps: [(&str, Vec<RunSpec>); 5] = [
        (
            "fig3/fig6-shaped policy sweep",
            vec![
                tiny(RunSpec::fig3(Algo::OlGd)),
                tiny(RunSpec::fig3(Algo::GreedyGd)),
                tiny(RunSpec::fig6(Algo::OlReg)),
            ],
        ),
        (
            "ablation_faults-shaped sweep",
            vec![
                tiny(RunSpec::fig3(Algo::OlGd).with_faults(FaultConfig::intensity(0.1))),
                tiny(RunSpec::fig6(Algo::OlReg).with_faults(FaultConfig::intensity(0.05))),
            ],
        ),
        (
            "ablation_preempt-shaped sweep",
            vec![
                tiny(
                    RunSpec::fig3(Algo::OlGd)
                        .with_faults(FaultConfig::preempt(0.2, 3))
                        .with_amortize()
                        .with_label("OL_GD@0.2/n3"),
                ),
                tiny(
                    RunSpec::fig3(Algo::GreedyGd)
                        .with_faults(FaultConfig::preempt(0.2, 1))
                        .with_amortize()
                        .with_label("GREEDY_GD@0.2/n1"),
                ),
                tiny(
                    RunSpec::fig6(Algo::OlUcb)
                        .with_faults(FaultConfig::preempt(0.2, 3))
                        .with_amortize()
                        .with_label("OL_UCB@0.2/n3"),
                ),
            ],
        ),
        (
            "fig_latency-shaped queue sweep",
            vec![
                tiny(
                    RunSpec::fig3(Algo::OlGd)
                        .with_queue(QueueConfig::open_loop(0.95))
                        .with_label("OL_GD@rho0.95"),
                ),
                tiny(
                    RunSpec::fig3(Algo::GreedyGd)
                        .with_queue(
                            QueueConfig::open_loop(1.1)
                                .with_queue_capacity(8)
                                .with_discipline(QueueDiscipline::ProcessorSharing),
                        )
                        .with_label("GREEDY_GD@rho1.1/ps"),
                ),
                tiny(
                    RunSpec::fig6(Algo::OlReg)
                        .with_faults(FaultConfig::intensity(0.1))
                        .with_queue(QueueConfig::open_loop(0.8))
                        .with_label("OL_REG@rho0.8/faulty"),
                ),
            ],
        ),
        (
            "fig_resilience-shaped sweep",
            vec![
                // Full SLO stack at heavy overload: deadline misses,
                // retries with hashed jitter/failover, breaker trips
                // and admission sheds all exercise their side-streams.
                tiny(
                    RunSpec::fig3(Algo::OlGd)
                        .with_queue(
                            QueueConfig::open_loop(1.3)
                                .with_discipline(QueueDiscipline::ProcessorSharing)
                                .with_resilience(ResilConfig::slo(300.0).with_admission(3, 0)),
                        )
                        .with_label("OL_GD@rho1.3/slo"),
                ),
                // Deadlines + retries only (no gates): the retry
                // re-enqueue path under FIFO.
                tiny(
                    RunSpec::fig3(Algo::GreedyGd)
                        .with_queue(
                            QueueConfig::open_loop(1.1).with_resilience(
                                ResilConfig::slo(250.0)
                                    .without_breakers()
                                    .without_admission(),
                            ),
                        )
                        .with_label("GREEDY_GD@rho1.1/deadline"),
                ),
                // Breakers composed with live preemption drains: the
                // drain interlock must replay identically in parallel.
                tiny(
                    RunSpec::fig6(Algo::OlReg)
                        .with_faults(FaultConfig::preempt(0.2, 2))
                        .with_queue(
                            QueueConfig::open_loop(1.1).with_resilience(ResilConfig::slo(300.0)),
                        )
                        .with_label("OL_REG@rho1.1/preempt+slo"),
                ),
            ],
        ),
    ];

    for (name, specs) in &sweeps {
        let (serial_json, serial_obs) = run_instrumented(specs, REPEATS, 1, BASE);
        let (parallel_json, parallel_obs) = run_instrumented(specs, REPEATS, 4, BASE);

        // The reports themselves: one JSON string per cell, canonical
        // order, byte-for-byte equal.
        assert_eq!(
            serial_json.len(),
            specs.len() * REPEATS,
            "{name}: unexpected cell count"
        );
        assert_eq!(
            serial_json, parallel_json,
            "{name}: EpisodeReport bytes diverged between 1 and 4 threads"
        );

        // The merged obs registries: same aggregates bit for bit.
        assert!(
            !serial_obs.counters().is_empty(),
            "{name}: episodes emitted no counters — the comparison would be vacuous"
        );
        assert_eq!(
            serial_obs.counters(),
            parallel_obs.counters(),
            "{name}: merged counters diverged"
        );
        assert_eq!(
            serial_obs.marks(),
            parallel_obs.marks(),
            "{name}: merged markers diverged"
        );
        assert_eq!(
            serial_obs.gauges(),
            parallel_obs.gauges(),
            "{name}: merged gauges diverged"
        );
        assert_eq!(
            serial_obs.hists(),
            parallel_obs.hists(),
            "{name}: merged histograms diverged"
        );
        // Span durations are wall-clock; only the counts are part of
        // the determinism contract.
        let span_counts = |reg: &Registry| -> Vec<(String, u64)> {
            reg.spans()
                .iter()
                .map(|(k, s)| (k.clone(), s.count))
                .collect()
        };
        assert_eq!(
            span_counts(&serial_obs),
            span_counts(&parallel_obs),
            "{name}: merged span counts diverged"
        );
    }

    resume_is_byte_identical();
    flaky_cell_recovers_bit_identically();
}

/// Serializes every report of a sweep with its wall-clock timings
/// zeroed — the byte-comparison currency of the golden contract.
fn zeroed_json(rows: &[Vec<lexcache_core::EpisodeReport>]) -> Vec<String> {
    rows.iter()
        .flatten()
        .map(|r| lexcache_obs::json::to_string(&r.with_zeroed_timings()).expect("serialize"))
        .collect()
}

/// The checkpoint/resume golden: journal a clean serial sweep, simulate
/// a `kill -9` after 3 of 6 cells by truncating the journal, resume
/// from the stub at 1 and 4 threads, and require byte-identical reports
/// while only the 3 missing cells re-run.
fn resume_is_byte_identical() {
    const REPEATS: usize = 3;
    const BASE: u64 = 42;
    let specs = vec![
        tiny(RunSpec::fig3(Algo::OlGd)),
        tiny(RunSpec::fig6(Algo::OlReg)),
    ];
    let n_cells = specs.len() * REPEATS;

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let ref_journal = dir.join(format!("lexcache_golden_{pid}_ref.jsonl"));
    let trunc_journal = dir.join(format!("lexcache_golden_{pid}_trunc.jsonl"));

    // Uninterrupted serial reference, journaled.
    arm_journaling("golden", Some(ref_journal.clone()), None).expect("arm");
    let clean = bench::run_grid_with(&specs, REPEATS, 1, BASE);
    disarm_journaling();
    let clean_json = zeroed_json(&clean);
    let full_text = std::fs::read_to_string(&ref_journal).expect("journal written");
    assert_eq!(
        full_text.lines().count(),
        1 + n_cells,
        "journal must hold one header plus one record per cell"
    );

    // "kill -9 after 3 cells": keep the header and the first 3 records.
    let stub: String = full_text
        .lines()
        .take(4)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&trunc_journal, &stub).expect("write stub");

    for threads in [1usize, 4] {
        let fresh_journal = dir.join(format!("lexcache_golden_{pid}_resume_{threads}.jsonl"));
        let ran = AtomicUsize::new(0);
        arm_journaling("golden", Some(fresh_journal.clone()), Some(&trunc_journal)).expect("arm");
        let resumed = sweep::run_sweep(
            specs.len(),
            REPEATS,
            &SweepOptions::explicit(threads, BASE),
            |s, seed| {
                ran.fetch_add(1, Ordering::SeqCst);
                bench::run_one(&specs[s], seed)
            },
        )
        .expect("no quarantine");
        disarm_journaling();

        assert_eq!(
            ran.load(Ordering::SeqCst),
            n_cells - 3,
            "threads {threads}: resume must re-run only the cells missing from the journal"
        );
        assert_eq!(
            zeroed_json(&resumed),
            clean_json,
            "threads {threads}: resumed reports diverged from the uninterrupted run"
        );
        // The fresh journal is itself complete and resumable (spliced
        // cells re-recorded verbatim, new cells appended).
        let reloaded = Journal::load(&fresh_journal).expect("fresh journal loads");
        assert_eq!(
            reloaded.cells_for(0).len(),
            n_cells,
            "threads {threads}: resumed run must leave a complete journal"
        );
        if threads == 1 {
            // Serial completion order is canonical, so the resumed
            // journal reproduces the reference byte for byte.
            let fresh_text = std::fs::read_to_string(&fresh_journal).expect("read");
            assert_eq!(fresh_text, full_text, "serial resumed journal diverged");
        }
        let _ = std::fs::remove_file(&fresh_journal);
    }
    let _ = std::fs::remove_file(&ref_journal);
    let _ = std::fs::remove_file(&trunc_journal);
}

/// A cell that panics on its first attempt is retried with the same
/// positional seed; the sweep's reports must match a clean run exactly.
fn flaky_cell_recovers_bit_identically() {
    const REPEATS: usize = 2;
    const BASE: u64 = 7;
    let specs = vec![
        tiny(RunSpec::fig3(Algo::GreedyGd)),
        tiny(RunSpec::fig3(Algo::PriGd)),
    ];

    let clean = bench::run_grid_with(&specs, REPEATS, 1, BASE);
    let tripped = AtomicUsize::new(0);
    let flaky = sweep::run_sweep(
        specs.len(),
        REPEATS,
        &SweepOptions::explicit(4, BASE),
        |s, seed| {
            if s == 1 && seed == BASE + 1 && tripped.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure injected by the golden test");
            }
            bench::run_one(&specs[s], seed)
        },
    )
    .expect("retry must recover the flaky cell");
    assert_eq!(
        tripped.load(Ordering::SeqCst),
        2,
        "the flaky cell must run exactly twice (panic, then retry)"
    );
    assert_eq!(
        zeroed_json(&flaky),
        zeroed_json(&clean),
        "reports after a retried panic diverged from the clean run"
    );
}
