//! Golden-trace regression test for `lexcache-trace`.
//!
//! The tracing determinism contract extends the runner's: with
//! timings zeroed (`LEXCACHE_ZERO_TIMINGS=1`), a traced sweep at
//! `--threads 4` must export the **same bytes** as at `--threads 1` —
//! every event stamped with its `(epoch, cell)` track at record time,
//! collection stable-sorted into canonical cell order, names interned
//! identically. This is what makes a trace diffable evidence rather
//! than a per-run curiosity.
//!
//! Runs as a single `#[test]` in its own integration binary: the
//! trace recorder (like the obs sink and sweep journaling) is
//! process-global state, and this binary never arms journaling, so
//! the sweeps here cannot race the `golden_parallel` suite.

use bench::{Algo, RunSpec};
use lexcache_obs::trace;
use mec_workload::ScenarioConfig;

/// Shrinks a figure spec to smoke size so the traced sweeps finish in
/// seconds.
fn tiny(spec: RunSpec) -> RunSpec {
    RunSpec {
        n_stations: 12,
        scenario: ScenarioConfig::small(),
        horizon: 6,
        ..spec
    }
}

/// Runs one traced sweep (timings zeroed) and returns the Chrome
/// trace bytes, the flame fold, and the recorded event count.
fn traced_run(
    specs: &[RunSpec],
    repeats: usize,
    threads: usize,
    base: u64,
) -> (String, String, usize) {
    trace::enable(trace::TraceConfig {
        zero_timings: true,
        capacity: 1 << 16,
    });
    let rows = bench::run_grid_with(specs, repeats, threads, base);
    assert_eq!(rows.len(), specs.len(), "sweep must complete every series");
    let snap = trace::collect();
    trace::disable();
    assert_eq!(snap.dropped(), 0, "ring overflow would void the comparison");
    (snap.to_chrome_json(), snap.to_folded(), snap.event_count())
}

#[test]
fn zeroed_traces_are_byte_identical_across_thread_counts() {
    const REPEATS: usize = 3;
    const BASE: u64 = 42;
    let specs = vec![
        tiny(RunSpec::fig3(Algo::OlGd)),
        tiny(RunSpec::fig3(Algo::GreedyGd)),
        tiny(RunSpec::fig6(Algo::OlReg)),
    ];

    let (serial_json, serial_fold, serial_n) = traced_run(&specs, REPEATS, 1, BASE);
    let (parallel_json, parallel_fold, parallel_n) = traced_run(&specs, REPEATS, 4, BASE);

    assert!(serial_n > 0, "traced sweep recorded no events");
    assert_eq!(
        serial_n, parallel_n,
        "event counts diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial_json, parallel_json,
        "Chrome trace bytes diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial_fold, parallel_fold,
        "flame fold diverged between 1 and 4 threads"
    );

    // Content sanity: the runner spans, the queue-wait instants and
    // the per-cell track naming all made it into the export.
    assert!(serial_json.contains("runner/cell"), "missing cell spans");
    assert!(
        serial_json.contains("runner/queue_wait"),
        "missing queue-wait instants"
    );
    assert!(
        serial_json.contains("sweep 1 cell 0 — OL_GD repeat 0"),
        "missing labelled cell track metadata"
    );

    // Re-enabling discards the previous recording: a third run traces
    // from a clean slate and reproduces the same bytes again.
    let (again_json, _, again_n) = traced_run(&specs, REPEATS, 4, BASE);
    assert_eq!(again_n, serial_n, "re-enable must reset the recording");
    assert_eq!(again_json, serial_json, "third run diverged");
}
