//! Criterion benches of end-to-end per-slot decisions: what Figs.
//! 3(b)–7(b) measure, isolated per policy at the 100-station scale.

use bench::{make_policy, Algo, RunSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lexcache_core::{Episode, EpisodeConfig};
use mec_net::NetworkConfig;

fn bench_slot_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_decision");
    group.sample_size(10);
    for algo in [Algo::OlGd, Algo::GreedyGd, Algo::PriGd, Algo::OlReg] {
        let spec = if algo.hidden_demands() {
            RunSpec::fig6(algo)
        } else {
            RunSpec::fig3(algo)
        };
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter_batched(
                || {
                    let net_cfg = NetworkConfig::paper_defaults();
                    let topo = spec.topo.build(spec.n_stations, &net_cfg, 1);
                    let scenario = spec.scenario.build(&topo, 1);
                    let policy = make_policy(&spec, &scenario, 1);
                    let mut cfg = EpisodeConfig::new(1);
                    if spec.algo.hidden_demands() {
                        cfg = cfg.hidden_demands();
                    }
                    (Episode::with_config(topo, net_cfg, scenario, cfg), policy)
                },
                |(mut episode, mut policy)| episode.run(policy.as_mut(), 3),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_topology_generation(c: &mut Criterion) {
    let net_cfg = NetworkConfig::paper_defaults();
    let mut group = c.benchmark_group("topology");
    for &n in &[100usize, 300] {
        group.bench_with_input(BenchmarkId::new("gtitm", n), &n, |b, &n| {
            b.iter(|| mec_net::topology::gtitm::generate(n, &net_cfg, 1))
        });
    }
    group.bench_function("as1755", |b| {
        b.iter(|| mec_net::topology::as1755::generate(&net_cfg, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_slot_decisions, bench_topology_generation);
criterion_main!(benches);
