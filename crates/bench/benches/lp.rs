//! Criterion benches of the LP substrate: the dense two-phase simplex,
//! the transportation simplex, and the full caching-LP fast path at the
//! paper's Fig. 3 scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simplex::transport::TransportProblem;
use simplex::{CachingLp, LinearProgram, Relation};

fn random_caching_lp(nr: usize, ns: usize, seed: u64) -> CachingLp {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand: Vec<f64> = (0..nr).map(|_| rng.random_range(1.0..5.0)).collect();
    let total: f64 = demand.iter().sum();
    let mut capacity: Vec<f64> = (0..ns).map(|_| rng.random_range(20.0..250.0)).collect();
    let cap_total: f64 = capacity.iter().sum();
    if cap_total < total * 1.5 {
        capacity[0] += total * 1.5 - cap_total;
    }
    let unit_cost: Vec<Vec<f64>> = (0..nr)
        .map(|_| (0..ns).map(|_| rng.random_range(4.0..80.0)).collect())
        .collect();
    let inst: Vec<Vec<f64>> = (0..ns)
        .map(|_| (0..10).map(|_| rng.random_range(10.0..40.0)).collect())
        .collect();
    let service_of: Vec<usize> = (0..nr).map(|_| rng.random_range(0..10)).collect();
    CachingLp::new(demand, service_of, unit_cost, capacity, inst, 10)
}

fn bench_dense_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_simplex");
    for &n in &[5usize, 10, 20] {
        // Diet-style LP: n variables, n cover rows, n bounds.
        let mut rng = StdRng::seed_from_u64(1);
        let mut lp = LinearProgram::minimize((0..n).map(|_| rng.random_range(1.0..5.0)).collect());
        for i in 0..n {
            let terms: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, if (i + j) % 3 == 0 { 2.0 } else { 1.0 }))
                .collect();
            lp.constrain(terms, Relation::Ge, 10.0 + i as f64);
        }
        for j in 0..n {
            lp.constrain(vec![(j, 1.0)], Relation::Le, 30.0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| simplex::dense::solve(lp).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_simplex");
    for &(m, n) in &[(50usize, 50usize), (150, 100), (150, 200)] {
        let mut rng = StdRng::seed_from_u64(2);
        let supply: Vec<f64> = (0..m).map(|_| rng.random_range(1.0..5.0)).collect();
        let total: f64 = supply.iter().sum();
        let mut capacity: Vec<f64> = (0..n).map(|_| rng.random_range(5.0..50.0)).collect();
        let cap_total: f64 = capacity.iter().sum();
        if cap_total < total {
            capacity[0] += total - cap_total + 1.0;
        }
        let cost: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.random_range(1.0..80.0)).collect())
            .collect();
        let problem = TransportProblem::new(supply, capacity, cost);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &problem,
            |b, p| b.iter(|| p.solve().expect("balanced")),
        );
    }
    group.finish();
}

fn bench_caching_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("caching_lp_fast");
    group.sample_size(20);
    for &(nr, ns) in &[(50usize, 50usize), (150, 101), (150, 201)] {
        let lp = random_caching_lp(nr, ns, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nr}req_{ns}bs")),
            &lp,
            |b, lp| b.iter(|| lp.solve_fast().expect("feasible")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_simplex,
    bench_transport,
    bench_caching_lp
);
criterion_main!(benches);
