//! Criterion benches of the neural substrate: LSTM forward/BPTT and one
//! full Info-RNN-GAN adversarial step at the policy's configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infogan::{InfoGanConfig, InfoRnnGan};
use neural::{BiLstm, LstmCell};

fn bench_lstm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm");
    for &(hidden, steps) in &[(16usize, 12usize), (32, 12), (16, 48)] {
        let cell = LstmCell::new(8, hidden, 1);
        let xs: Vec<Vec<f64>> = (0..steps)
            .map(|t| (0..8).map(|j| ((t * 7 + j) % 5) as f64 / 5.0).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("forward", format!("h{hidden}_t{steps}")),
            &(&cell, &xs),
            |b, (cell, xs)| b.iter(|| cell.forward_seq(xs)),
        );
        let mut cell_bw = cell.clone();
        let dhs: Vec<Vec<f64>> = (0..steps).map(|_| vec![0.1; hidden]).collect();
        group.bench_function(
            BenchmarkId::new("forward_backward", format!("h{hidden}_t{steps}")),
            |b| {
                b.iter(|| {
                    cell_bw.zero_grad();
                    let trace = cell_bw.forward_seq(&xs);
                    cell_bw.backward_seq(&trace, &dhs)
                })
            },
        );
    }
    group.finish();
}

fn bench_bilstm(c: &mut Criterion) {
    let net = BiLstm::new(8, 16, 2);
    let xs: Vec<Vec<f64>> = (0..12)
        .map(|t| (0..8).map(|j| ((t + j) % 4) as f64 / 4.0).collect())
        .collect();
    c.bench_function("bilstm_forward_h16_t12", |b| {
        b.iter(|| net.forward_seq(&xs))
    });
}

fn bench_gan_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("infogan");
    group.sample_size(20);
    let mut cfg = InfoGanConfig::paper_defaults(10);
    cfg.window = 10;
    let mut gan = InfoRnnGan::new(cfg, 3);
    let window: Vec<f64> = (0..11)
        .map(|t| if t % 5 == 0 { 40.0 } else { 2.0 })
        .collect();
    group.bench_function("train_window_paper_cfg", |b| {
        b.iter(|| gan.train_window(&window, 3))
    });
    let history: Vec<f64> = (0..30).map(|t| (t % 6) as f64).collect();
    group.bench_function("predict_next", |b| b.iter(|| gan.predict_next(&history, 3)));
    group.finish();
}

criterion_group!(benches, bench_lstm, bench_bilstm, bench_gan_step);
criterion_main!(benches);
