//! The `BENCH_runner.json` schema, its encoder/parser, and the
//! baseline comparison behind the `bench-smoke` CI gate.
//!
//! A report is a flat list of measured cells (`"<policy>/<phase>"`,
//! e.g. `"OL_GD/decide"`), each carrying its iteration plan, the
//! median/p90/min/mean ns per iteration, and `ratio` — the median
//! normalised by the machine's [`crate::calibrate`] spin. Regression
//! comparison runs on `ratio`, so a committed baseline from one
//! machine remains meaningful on another: both numerator and
//! denominator scale with the hardware.

use crate::mini_json::{fmt_f64, parse, quote, Value};
use crate::stats::Measurement;
use std::fmt::Write as _;

/// Schema tag written into every report.
pub const SCHEMA: &str = "lexcache-bench/1";

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Cell id, `"<policy>/<phase>"`.
    pub id: String,
    /// Iterations per measured batch.
    pub iters: u64,
    /// Measured batches.
    pub repeats: u64,
    /// Median ns/iter across batches.
    pub median_ns: f64,
    /// p90 ns/iter across batches.
    pub p90_ns: f64,
    /// Fastest batch ns/iter.
    pub min_ns: f64,
    /// Mean ns/iter across batches.
    pub mean_ns: f64,
    /// `median_ns / calibration_ns` — the machine-relative statistic
    /// baselines compare.
    pub ratio: f64,
}

/// A full bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Measurement plan label (`"smoke"`, `"full"`, …).
    pub mode: String,
    /// Median ns/iter of the calibration spin on this machine.
    pub calibration_ns: f64,
    /// Free-text provenance note (e.g. "provisional seed baseline").
    pub note: String,
    /// Measured cells, in measurement order.
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    /// An empty report for `mode` on a machine whose calibration spin
    /// measured `calibration_ns`.
    pub fn new(mode: impl Into<String>, calibration_ns: f64) -> Self {
        BenchReport {
            mode: mode.into(),
            calibration_ns,
            note: String::new(),
            cells: Vec::new(),
        }
    }

    /// Appends one measured cell, deriving its calibration ratio.
    pub fn push(&mut self, id: impl Into<String>, m: &Measurement) {
        let ratio = if self.calibration_ns > 0.0 {
            m.median_ns / self.calibration_ns
        } else {
            0.0
        };
        self.cells.push(BenchCell {
            id: id.into(),
            iters: m.iters,
            repeats: m.repeats,
            median_ns: m.median_ns,
            p90_ns: m.p90_ns,
            min_ns: m.min_ns,
            mean_ns: m.mean_ns,
            ratio,
        });
    }

    /// Looks a cell up by id.
    pub fn cell(&self, id: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// Encodes the report as diff-friendly JSON (one cell per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(out, "  \"mode\": {},", quote(&self.mode));
        let _ = writeln!(
            out,
            "  \"calibration_ns\": {},",
            fmt_f64(self.calibration_ns)
        );
        let _ = writeln!(out, "  \"note\": {},", quote(&self.note));
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"iters\": {}, \"repeats\": {}, \
                 \"median_ns\": {}, \"p90_ns\": {}, \"min_ns\": {}, \
                 \"mean_ns\": {}, \"ratio\": {}}}{comma}",
                quote(&c.id),
                c.iters,
                c.repeats,
                fmt_f64(c.median_ns),
                fmt_f64(c.p90_ns),
                fmt_f64(c.min_ns),
                fmt_f64(c.mean_ns),
                fmt_f64(c.ratio),
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report back from [`BenchReport::to_json`] output (or
    /// any JSON document with the same shape).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let num = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number {key:?}"))
        };
        let mut report = BenchReport::new(
            doc.get("mode").and_then(Value::as_str).unwrap_or("unknown"),
            num(&doc, "calibration_ns")?,
        );
        report.note = doc
            .get("note")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let cells = doc
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing cells array")?;
        for c in cells {
            report.cells.push(BenchCell {
                id: c
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or("cell missing id")?
                    .to_string(),
                iters: num(c, "iters")? as u64,
                repeats: num(c, "repeats")? as u64,
                median_ns: num(c, "median_ns")?,
                p90_ns: num(c, "p90_ns")?,
                min_ns: num(c, "min_ns")?,
                mean_ns: num(c, "mean_ns")?,
                ratio: num(c, "ratio")?,
            });
        }
        Ok(report)
    }
}

/// One cell whose calibration ratio moved versus the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Cell id.
    pub id: String,
    /// Baseline ratio.
    pub baseline: f64,
    /// Current ratio.
    pub current: f64,
    /// Signed change in percent (positive = slower).
    pub change_pct: f64,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Cells slower than baseline by more than the threshold.
    pub regressions: Vec<Regression>,
    /// Cells faster than baseline by more than the threshold.
    pub improvements: Vec<Regression>,
    /// Baseline cells absent from the current report.
    pub missing: Vec<String>,
    /// The threshold applied, percent.
    pub threshold_pct: f64,
}

impl Comparison {
    /// Whether the gate passes (no regression beyond the threshold).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary, one line per moved cell.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION  {:<24} ratio {:.3} -> {:.3} ({:+.1}%)",
                r.id, r.baseline, r.current, r.change_pct
            );
        }
        for r in &self.improvements {
            let _ = writeln!(
                out,
                "improved    {:<24} ratio {:.3} -> {:.3} ({:+.1}%)",
                r.id, r.baseline, r.current, r.change_pct
            );
        }
        for id in &self.missing {
            let _ = writeln!(out, "missing     {id:<24} (in baseline, not measured now)");
        }
        if self.passed() {
            let _ = writeln!(
                out,
                "bench gate: PASS (no cell regressed > {:.0}%)",
                self.threshold_pct
            );
        } else {
            let _ = writeln!(
                out,
                "bench gate: FAIL ({} cell(s) regressed > {:.0}%)",
                self.regressions.len(),
                self.threshold_pct
            );
        }
        out
    }
}

/// Compares calibration-normalised medians: a cell regresses when its
/// current ratio exceeds the baseline ratio by more than
/// `threshold_pct` percent. Cells new in `current` are ignored (a new
/// benchmark cannot regress); baseline cells with a non-positive ratio
/// are skipped (nothing meaningful to compare).
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut out = Comparison {
        threshold_pct,
        ..Comparison::default()
    };
    for b in &baseline.cells {
        if b.ratio <= 0.0 {
            continue;
        }
        let Some(c) = current.cell(&b.id) else {
            out.missing.push(b.id.clone());
            continue;
        };
        let change_pct = (c.ratio - b.ratio) / b.ratio * 100.0;
        let moved = Regression {
            id: b.id.clone(),
            baseline: b.ratio,
            current: c.ratio,
            change_pct,
        };
        if change_pct > threshold_pct {
            out.regressions.push(moved);
        } else if change_pct < -threshold_pct {
            out.improvements.push(moved);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(median: f64) -> Measurement {
        Measurement {
            iters: 3,
            repeats: 5,
            median_ns: median,
            p90_ns: median * 1.2,
            min_ns: median * 0.9,
            mean_ns: median * 1.05,
        }
    }

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("smoke", 100.0);
        r.note = "unit fixture".to_string();
        r.push("OL_GD/decide", &m(500.0));
        r.push("OL_GD/step", &m(50.0));
        r
    }

    #[test]
    fn ratios_are_calibration_relative() {
        let r = sample_report();
        let cell = r.cell("OL_GD/decide").expect("present");
        assert!((cell.ratio - 5.0).abs() < 1e-12);
        assert_eq!(r.cell("nope"), None);
    }

    #[test]
    fn zero_calibration_yields_zero_ratio() {
        let mut r = BenchReport::new("smoke", 0.0);
        r.push("x", &m(10.0));
        assert_eq!(r.cells[0].ratio, 0.0);
    }

    #[test]
    fn json_roundtrips_exactly() {
        let r = sample_report();
        let text = r.to_json();
        assert!(text.contains("\"schema\": \"lexcache-bench/1\""));
        let back = BenchReport::from_json(&text).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let text = sample_report()
            .to_json()
            .replace("lexcache-bench/1", "other/9");
        assert!(BenchReport::from_json(&text).is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn compare_flags_only_beyond_threshold() {
        let base = sample_report();
        let mut cur = BenchReport::new("smoke", 100.0);
        cur.push("OL_GD/decide", &m(700.0)); // +40%: regression
        cur.push("OL_GD/step", &m(55.0)); // +10%: within threshold
        let cmp = compare(&base, &cur, 25.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "OL_GD/decide");
        assert!((cmp.regressions[0].change_pct - 40.0).abs() < 1e-9);
        assert!(cmp.improvements.is_empty());
        assert!(cmp.missing.is_empty());
        assert!(cmp.render().contains("FAIL"));
    }

    #[test]
    fn compare_normalises_across_machine_speed() {
        // Same workload on a machine 3x slower: ns triple everywhere,
        // including calibration, so ratios — and the gate — hold.
        let base = sample_report();
        let mut cur = BenchReport::new("smoke", 300.0);
        cur.push("OL_GD/decide", &m(1500.0));
        cur.push("OL_GD/step", &m(150.0));
        let cmp = compare(&base, &cur, 25.0);
        assert!(cmp.passed(), "{}", cmp.render());
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn compare_reports_missing_and_improvements() {
        let mut base = sample_report();
        base.push("OL_UCB/decide", &m(400.0));
        let mut cur = BenchReport::new("smoke", 100.0);
        cur.push("OL_GD/decide", &m(200.0)); // -60%: improvement
        cur.push("OL_GD/step", &m(50.0));
        let cmp = compare(&base, &cur, 25.0);
        assert!(cmp.passed(), "missing cells do not fail the gate");
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.missing, vec!["OL_UCB/decide".to_string()]);
        assert!(cmp.render().contains("missing"));
    }

    #[test]
    fn provisional_baseline_cells_are_skipped() {
        // ratio <= 0 marks a cell as "schema only, never measured".
        let mut base = BenchReport::new("provisional", 0.0);
        base.push("OL_GD/decide", &m(500.0)); // ratio 0 (calibration 0)
        let mut cur = BenchReport::new("smoke", 100.0);
        cur.push("OL_GD/decide", &m(999999.0));
        assert!(compare(&base, &cur, 25.0).passed());
    }
}
