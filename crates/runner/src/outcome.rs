//! Per-cell execution outcomes, retry policy and lifecycle events for
//! the fault-tolerant executor ([`crate::pool::run_robust`]).
//!
//! The plain pool ([`crate::pool::map_indexed`]) propagates the first
//! worker panic and tears the whole sweep down — correct for unit
//! tests, fatal for an hours-long evaluation grid. The robust executor
//! instead captures each cell's fate as a [`CellOutcome`]: the value,
//! a value flagged as over-budget, or a quarantined panic after the
//! retry budget is spent. Retries always re-run the *same* cell index,
//! so the positional seed a caller derives from it is unchanged —
//! retrying is about transient environment failures, never about
//! reshuffling randomness.

use std::any::Any;

/// Failure-handling policy for one sweep: how often a panicked cell is
/// re-executed before quarantine, and an optional per-cell wall-clock
/// budget enforced by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Re-executions of a panicked cell before it is quarantined; the
    /// cell runs at most `max_retries + 1` times. `0` quarantines on
    /// the first panic.
    pub max_retries: u32,
    /// Per-cell wall-clock budget in milliseconds. Cells exceeding it
    /// are *flagged* as [`CellOutcome::TimedOut`] (the worker is never
    /// killed — the result is still produced and still deterministic);
    /// `None` disables the watchdog.
    pub cell_budget_ms: Option<u64>,
}

impl Default for RunPolicy {
    /// One retry, no watchdog — survive a single transient failure per
    /// cell without masking a systematically broken one.
    fn default() -> Self {
        RunPolicy {
            max_retries: 1,
            cell_budget_ms: None,
        }
    }
}

impl RunPolicy {
    /// This policy with the retry budget set to `max_retries`.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// This policy with the watchdog budget set to `budget_ms`.
    pub fn with_budget_ms(mut self, budget_ms: u64) -> Self {
        self.cell_budget_ms = Some(budget_ms);
        self
    }
}

/// The fate of one cell under the robust executor.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The cell produced a value within budget.
    Ok(T),
    /// The cell produced a value but exceeded the watchdog budget.
    /// The value is just as valid (and just as deterministic) as an
    /// [`CellOutcome::Ok`] one — the flag exists so hung LP solves or
    /// diverged trainings are visible in reports, not silent.
    TimedOut {
        /// The produced value.
        value: T,
        /// Observed wall-clock time of the final attempt.
        elapsed_ms: u64,
        /// The budget it exceeded.
        budget_ms: u64,
    },
    /// Every attempt panicked; the cell is quarantined.
    Panicked {
        /// Panic payload of the last attempt, rendered as text.
        message: String,
        /// Total attempts made (`max_retries + 1`).
        attempts: u32,
    },
}

impl<T> CellOutcome<T> {
    /// The produced value, if any ([`CellOutcome::Ok`] or
    /// [`CellOutcome::TimedOut`]).
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { value: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Consumes the outcome, returning the produced value if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::TimedOut { value: v, .. } => Some(v),
            CellOutcome::Panicked { .. } => None,
        }
    }

    /// Whether the cell was quarantined.
    pub fn is_panicked(&self) -> bool {
        matches!(self, CellOutcome::Panicked { .. })
    }

    /// Whether the cell finished over the watchdog budget.
    pub fn is_timed_out(&self) -> bool {
        matches!(self, CellOutcome::TimedOut { .. })
    }
}

/// Lifecycle notifications emitted by the robust executor while a
/// sweep runs. The callback fires on whichever thread observed the
/// event (worker or watchdog), so handlers must be `Sync`; cell
/// indices are canonical flat indices into the executor's `0..n`.
#[derive(Debug)]
pub enum CellEvent<'a, T> {
    /// An attempt of a cell panicked; `will_retry` tells whether the
    /// executor is about to re-run it or quarantine it.
    PanicCaught {
        /// Canonical index of the cell.
        cell: usize,
        /// 1-based attempt number that panicked.
        attempt: u32,
        /// Rendered panic payload.
        message: &'a str,
        /// Whether another attempt follows.
        will_retry: bool,
    },
    /// The watchdog noticed a cell still running past its budget.
    /// Fired at most once per cell; the worker keeps running.
    LongRunning {
        /// Canonical index of the cell.
        cell: usize,
        /// Elapsed wall-clock time when the watchdog looked.
        elapsed_ms: u64,
        /// The configured budget.
        budget_ms: u64,
    },
    /// A cell reached its final outcome (in any order across cells).
    /// For `Ok` / `TimedOut` outcomes this is the journaling point:
    /// the value is complete and will not change.
    Finished {
        /// Canonical index of the cell.
        cell: usize,
        /// The final outcome.
        outcome: &'a CellOutcome<T>,
    },
}

/// Renders a `catch_unwind` payload as text: `&str` and `String`
/// payloads (everything `panic!` produces) pass through, anything
/// exotic gets a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_one_retry_no_watchdog() {
        let p = RunPolicy::default();
        assert_eq!(p.max_retries, 1);
        assert_eq!(p.cell_budget_ms, None);
        let p = p.with_retries(3).with_budget_ms(250);
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.cell_budget_ms, Some(250));
    }

    #[test]
    fn outcome_accessors() {
        let ok: CellOutcome<u32> = CellOutcome::Ok(7);
        assert_eq!(ok.value(), Some(&7));
        assert!(!ok.is_panicked() && !ok.is_timed_out());

        let late: CellOutcome<u32> = CellOutcome::TimedOut {
            value: 8,
            elapsed_ms: 120,
            budget_ms: 100,
        };
        assert_eq!(late.value(), Some(&8));
        assert!(late.is_timed_out());
        assert_eq!(late.into_value(), Some(8));

        let dead: CellOutcome<u32> = CellOutcome::Panicked {
            message: "boom".to_string(),
            attempts: 2,
        };
        assert_eq!(dead.value(), None);
        assert!(dead.is_panicked());
        assert_eq!(dead.into_value(), None);
    }

    #[test]
    fn panic_payloads_render_as_text() {
        let static_payload: Box<dyn Any + Send> = Box::new("static boom");
        assert_eq!(panic_message(static_payload.as_ref()), "static boom");
        let owned: Box<dyn Any + Send> = Box::new("formatted 42".to_string());
        assert_eq!(panic_message(owned.as_ref()), "formatted 42");
        let exotic: Box<dyn Any + Send> = Box::new(17u64);
        assert_eq!(panic_message(exotic.as_ref()), "<non-string panic payload>");
    }
}
