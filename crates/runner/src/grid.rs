//! The experiment job graph: a rectangular grid of
//! `(series, repeat)` cells in canonical row-major order.
//!
//! A "series" is one sweep point — a policy, an ε value, a topology
//! family, a fault intensity — and a "repeat" is one seeded topology.
//! Canonical order is *all repeats of series 0, then series 1, …*: the
//! exact order the pre-runner nested serial loops visited cells, so a
//! cell's flat index (and any seed derived from its repeat index) is
//! independent of the worker count.

use crate::pool::map_indexed;

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Sweep-point index (policy / parameter value / topology …).
    pub series: usize,
    /// Repeat index within the series; callers derive the episode seed
    /// as `base_seed + repeat`, exactly as the serial loops did.
    pub repeat: usize,
}

/// A rectangular `n_series × repeats` job graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of sweep points.
    pub n_series: usize,
    /// Seeded repeats per sweep point.
    pub repeats: usize,
}

impl Grid {
    /// A grid of `n_series` sweep points × `repeats` seeds each.
    pub fn new(n_series: usize, repeats: usize) -> Self {
        Grid { n_series, repeats }
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.n_series * self.repeats
    }

    /// The cell at canonical flat index `idx` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty (`repeats == 0`).
    pub fn cell(&self, idx: usize) -> CellId {
        CellId {
            series: idx / self.repeats,
            repeat: idx % self.repeats,
        }
    }

    /// The canonical flat index of `cell` (inverse of [`Grid::cell`]).
    pub fn index(&self, cell: CellId) -> usize {
        cell.series * self.repeats + cell.repeat
    }

    /// Executes every cell on up to `threads` workers and returns the
    /// results grouped per series, each series' repeats in seed order —
    /// bit-identical to running the same closure in a serial nested
    /// loop (`threads = 1` *is* that loop).
    pub fn run<T, F>(&self, threads: usize, f: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(CellId) -> T + Sync,
    {
        if self.repeats == 0 {
            return (0..self.n_series).map(|_| Vec::new()).collect();
        }
        let flat = map_indexed(self.n_cells(), threads, |i| f(self.cell(i)));
        let mut rows = Vec::with_capacity(self.n_series);
        let mut it = flat.into_iter();
        for _ in 0..self.n_series {
            rows.push(it.by_ref().take(self.repeats).collect());
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrips() {
        let g = Grid::new(5, 7);
        for idx in 0..g.n_cells() {
            let c = g.cell(idx);
            assert_eq!(g.index(c), idx);
            assert!(c.series < 5 && c.repeat < 7);
        }
        // Row-major: all repeats of one series are contiguous.
        assert_eq!(
            g.cell(0),
            CellId {
                series: 0,
                repeat: 0
            }
        );
        assert_eq!(
            g.cell(6),
            CellId {
                series: 0,
                repeat: 6
            }
        );
        assert_eq!(
            g.cell(7),
            CellId {
                series: 1,
                repeat: 0
            }
        );
    }

    #[test]
    fn run_groups_rows_in_canonical_order() {
        let g = Grid::new(3, 4);
        let serial = g.run(1, |c| (c.series, c.repeat));
        assert_eq!(serial.len(), 3);
        for (s, row) in serial.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (r, &cell) in row.iter().enumerate() {
                assert_eq!(cell, (s, r));
            }
        }
        for threads in [2, 5, 12] {
            assert_eq!(g.run(threads, |c| (c.series, c.repeat)), serial);
        }
    }

    #[test]
    fn empty_grids_yield_empty_rows() {
        let g = Grid::new(3, 0);
        let rows = g.run(4, |c| c.repeat);
        assert_eq!(rows, vec![Vec::new(), Vec::new(), Vec::new()]);
        let g0 = Grid::new(0, 5);
        assert!(g0.run(4, |c| c.repeat).is_empty());
    }
}
