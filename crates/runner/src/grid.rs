//! The experiment job graph: a rectangular grid of
//! `(series, repeat)` cells in canonical row-major order.
//!
//! A "series" is one sweep point — a policy, an ε value, a topology
//! family, a fault intensity — and a "repeat" is one seeded topology.
//! Canonical order is *all repeats of series 0, then series 1, …*: the
//! exact order the pre-runner nested serial loops visited cells, so a
//! cell's flat index (and any seed derived from its repeat index) is
//! independent of the worker count.

use crate::pool::map_indexed;

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Sweep-point index (policy / parameter value / topology …).
    pub series: usize,
    /// Repeat index within the series; callers derive the episode seed
    /// as `base_seed + repeat`, exactly as the serial loops did.
    pub repeat: usize,
}

/// A rectangular `n_series × repeats` job graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of sweep points.
    pub n_series: usize,
    /// Seeded repeats per sweep point.
    pub repeats: usize,
}

impl Grid {
    /// A grid of `n_series` sweep points × `repeats` seeds each.
    pub fn new(n_series: usize, repeats: usize) -> Self {
        Grid { n_series, repeats }
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.n_series * self.repeats
    }

    /// The cell at canonical flat index `idx` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty (`repeats == 0`).
    pub fn cell(&self, idx: usize) -> CellId {
        CellId {
            series: idx / self.repeats,
            repeat: idx % self.repeats,
        }
    }

    /// The canonical flat index of `cell` (inverse of [`Grid::cell`]).
    pub fn index(&self, cell: CellId) -> usize {
        cell.series * self.repeats + cell.repeat
    }

    /// Executes every cell on up to `threads` workers and returns the
    /// results grouped per series, each series' repeats in seed order —
    /// bit-identical to running the same closure in a serial nested
    /// loop (`threads = 1` *is* that loop).
    pub fn run<T, F>(&self, threads: usize, f: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(CellId) -> T + Sync,
    {
        if self.repeats == 0 {
            return (0..self.n_series).map(|_| Vec::new()).collect();
        }
        let flat = map_indexed(self.n_cells(), threads, |i| f(self.cell(i)));
        self.rows_from_flat(flat)
    }

    /// Groups a flat canonical-order result vector into per-series
    /// rows (the [`Grid::run`] return shape).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` is not exactly [`Grid::n_cells`].
    pub fn rows_from_flat<T>(&self, flat: Vec<T>) -> Vec<Vec<T>> {
        assert_eq!(
            flat.len(),
            self.n_cells(),
            "flat results must cover the grid"
        );
        let mut rows = Vec::with_capacity(self.n_series);
        let mut it = flat.into_iter();
        for _ in 0..self.n_series {
            rows.push(it.by_ref().take(self.repeats).collect());
        }
        rows
    }

    /// Groups index-tagged results — produced in *any* order, e.g. a
    /// mix of freshly executed cells and cells spliced back from a
    /// resume journal — into canonical per-series rows.
    ///
    /// # Panics
    ///
    /// Panics unless `indexed` carries every flat index `0..n_cells`
    /// exactly once (a duplicate or gap means the sweep lost a cell,
    /// which must never be papered over).
    pub fn rows_from_indexed<T>(&self, mut indexed: Vec<(usize, T)>) -> Vec<Vec<T>> {
        indexed.sort_by_key(|&(i, _)| i);
        assert_eq!(
            indexed.len(),
            self.n_cells(),
            "indexed results must cover the grid"
        );
        for (pos, &(i, _)) in indexed.iter().enumerate() {
            assert_eq!(i, pos, "indexed results must cover every cell exactly once");
        }
        self.rows_from_flat(indexed.into_iter().map(|(_, v)| v).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrips() {
        let g = Grid::new(5, 7);
        for idx in 0..g.n_cells() {
            let c = g.cell(idx);
            assert_eq!(g.index(c), idx);
            assert!(c.series < 5 && c.repeat < 7);
        }
        // Row-major: all repeats of one series are contiguous.
        assert_eq!(
            g.cell(0),
            CellId {
                series: 0,
                repeat: 0
            }
        );
        assert_eq!(
            g.cell(6),
            CellId {
                series: 0,
                repeat: 6
            }
        );
        assert_eq!(
            g.cell(7),
            CellId {
                series: 1,
                repeat: 0
            }
        );
    }

    #[test]
    fn run_groups_rows_in_canonical_order() {
        let g = Grid::new(3, 4);
        let serial = g.run(1, |c| (c.series, c.repeat));
        assert_eq!(serial.len(), 3);
        for (s, row) in serial.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (r, &cell) in row.iter().enumerate() {
                assert_eq!(cell, (s, r));
            }
        }
        for threads in [2, 5, 12] {
            assert_eq!(g.run(threads, |c| (c.series, c.repeat)), serial);
        }
    }

    #[test]
    fn rows_from_indexed_restores_canonical_order() {
        let g = Grid::new(2, 3);
        // Completion order scrambled, as a resumed parallel sweep
        // would produce it.
        let indexed = vec![(4, "e"), (0, "a"), (5, "f"), (2, "c"), (1, "b"), (3, "d")];
        assert_eq!(
            g.rows_from_indexed(indexed),
            vec![vec!["a", "b", "c"], vec!["d", "e", "f"]]
        );
    }

    #[test]
    fn rows_from_indexed_rejects_gaps_and_duplicates() {
        let g = Grid::new(1, 3);
        let dup = std::panic::catch_unwind(|| g.rows_from_indexed(vec![(0, 1), (0, 2), (2, 3)]));
        assert!(dup.is_err(), "duplicate index must panic");
        let short = std::panic::catch_unwind(|| g.rows_from_indexed(vec![(0, 1)]));
        assert!(short.is_err(), "missing cells must panic");
    }

    #[test]
    fn empty_grids_yield_empty_rows() {
        let g = Grid::new(3, 0);
        let rows = g.run(4, |c| c.repeat);
        assert_eq!(rows, vec![Vec::new(), Vec::new(), Vec::new()]);
        let g0 = Grid::new(0, 5);
        assert!(g0.run(4, |c| c.repeat).is_empty());
    }
}
