//! A minimal JSON value model, parser and string/number formatting —
//! just enough to read and write `BENCH_runner.json` without a JSON
//! crate (this crate carries zero dependencies by design; the serde
//! encoder in `lexcache-obs` is not visible from here).
//!
//! Objects preserve insertion order in a `Vec` of pairs — no hashed
//! containers anywhere near a reduction path — and non-finite numbers
//! encode as `null`, mirroring the `lexcache-obs` encoder's rules.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number; non-finite values become `null`
/// (matching the `lexcache-obs` encoder).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a fractional part; keep
        // the `.0` so the value re-parses as the same token shape.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected byte {other:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates are not paired up: the bench
                            // schema never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at offset {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ascii number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' but got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}' but got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("false"), Ok(Value::Bool(false)));
        assert_eq!(parse("-12.5e2"), Ok(Value::Num(-1250.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::Str("a\nb".to_string())));
        assert_eq!(parse("\"\\u0041\""), Ok(Value::Str("A".to_string())));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let v = parse(r#"{"b": [1, 2.5, {"x": null}], "a": "s"}"#).expect("valid");
        match &v {
            Value::Obj(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let arr = v.get("b").and_then(Value::as_array).expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("x"), Some(&Value::Null));
        assert_eq!(v.get("a").and_then(Value::as_str), Some("s"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "nul", "{\"a\" 1}", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = parse("\"héllo → 世界\"").expect("valid");
        assert_eq!(v.as_str(), Some("héllo → 世界"));
        let quoted = quote("héllo → 世界");
        let back = parse(&quoted).expect("re-parses");
        assert_eq!(back.as_str(), Some("héllo → 世界"));
    }

    #[test]
    fn quote_escapes_controls() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_always_reparses() {
        for v in [0.0, 1.0, -3.25, 1e9, 123.456] {
            let text = fmt_f64(v);
            let back = parse(&text).expect("number re-parses").as_f64();
            assert_eq!(back, Some(v), "{text}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(2.0), "2.0", "integral floats keep the dot");
    }
}
