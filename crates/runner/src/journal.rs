//! Checkpoint journal for crash-safe sweeps: completed cells are
//! recorded as JSONL, so a killed sweep resumes where it died and the
//! final report is byte-identical to an uninterrupted run.
//!
//! One journal file covers one *bin invocation*, which may execute
//! several sweeps (grids) in sequence; each sweep writes one header
//! record binding its index to the grid shape and base seed, then one
//! record per completed cell carrying the cell's canonical index, its
//! positional seed, an FNV-1a digest of the payload, and the payload
//! itself (the caller's checkpoint encoding, stored as one JSON
//! string). Records are parsed with [`crate::mini_json`] — zero
//! dependencies, insertion-ordered, no hashed containers.
//!
//! Two deliberate choices:
//!
//! * **Seeds travel as strings.** JSON numbers are `f64`; a `u64` seed
//!   above 2^53 would silently lose bits. The digest is a string for
//!   the same reason.
//! * **Every append rewrites the file atomically** (write
//!   `<path>.tmp`, then `rename`). A kill at any instant leaves either
//!   the previous complete journal or the new complete journal — never
//!   a torn file. Journals are experiment-sized (hundreds of cells),
//!   so the quadratic rewrite cost is noise next to one episode.
//!
//! Loading is deliberately forgiving about *tails* (a final line cut
//! short by a crash of a non-atomic writer is skipped, not fatal) and
//! about digest mismatches (the record is dropped and the cell simply
//! re-runs), but strict about garbage in the middle of the file —
//! that is corruption worth stopping for.

use crate::mini_json::{parse, quote, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag stamped into every sweep header record.
pub const JOURNAL_SCHEMA: &str = "lexcache-journal/1";

/// Writes `contents` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are `rename`d over `path`, so readers (and
/// crashes) see either the old file or the new one, never a torn mix.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// 64-bit FNV-1a over `bytes` — the payload digest. Not cryptographic;
/// it detects torn or hand-edited payloads, which is all resume needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Header record: one sweep (grid) executed by the journaled bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMeta {
    /// 0-based index of this sweep within the bin invocation.
    pub sweep: usize,
    /// Name of the bin that ran the sweep.
    pub bin: String,
    /// Grid height (sweep points).
    pub n_series: usize,
    /// Grid width (seeded repeats per point).
    pub repeats: usize,
    /// Base seed; cell `(series, repeat)` ran with `base_seed + repeat`.
    pub base_seed: u64,
}

/// One completed cell: canonical index, positional seed and the
/// caller's checkpoint payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellEntry {
    /// Sweep index the cell belongs to.
    pub sweep: usize,
    /// Canonical flat index of the cell within its grid.
    pub cell: usize,
    /// The positional seed the cell ran with.
    pub seed: u64,
    /// Checkpoint encoding of the cell's result.
    pub payload: String,
}

fn encode_sweep_line(m: &SweepMeta) -> String {
    format!(
        "{{\"kind\":\"sweep\",\"schema\":{},\"sweep\":{},\"bin\":{},\"n_series\":{},\"repeats\":{},\"base_seed\":{}}}",
        quote(JOURNAL_SCHEMA),
        m.sweep,
        quote(&m.bin),
        m.n_series,
        m.repeats,
        quote(&m.base_seed.to_string()),
    )
}

fn encode_cell_line(c: &CellEntry) -> String {
    format!(
        "{{\"kind\":\"cell\",\"sweep\":{},\"cell\":{},\"seed\":{},\"digest\":{},\"payload\":{}}}",
        c.sweep,
        c.cell,
        quote(&c.seed.to_string()),
        quote(&format!("{:016x}", fnv1a64(c.payload.as_bytes()))),
        quote(&c.payload),
    )
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    let num = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if num != num.trunc() || !(0.0..=9_007_199_254_740_992.0).contains(&num) {
        return Err(format!("field {key:?} is not a non-negative integer"));
    }
    Ok(num as usize)
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn seed_field(v: &Value, key: &str) -> Result<u64, String> {
    str_field(v, key)?
        .parse::<u64>()
        .map_err(|_| format!("field {key:?} is not a u64 string"))
}

enum Line {
    Sweep(SweepMeta),
    Cell(CellEntry),
}

/// `Err(reason)` on malformed lines, `Ok(None)` on well-formed records
/// whose digest does not match (droppable — the cell re-runs).
fn parse_line(line: &str) -> Result<Option<Line>, String> {
    let v = parse(line)?;
    match str_field(&v, "kind")? {
        "sweep" => {
            let schema = str_field(&v, "schema")?;
            if schema != JOURNAL_SCHEMA {
                return Err(format!("unknown journal schema {schema:?}"));
            }
            Ok(Some(Line::Sweep(SweepMeta {
                sweep: usize_field(&v, "sweep")?,
                bin: str_field(&v, "bin")?.to_string(),
                n_series: usize_field(&v, "n_series")?,
                repeats: usize_field(&v, "repeats")?,
                base_seed: seed_field(&v, "base_seed")?,
            })))
        }
        "cell" => {
            let payload = str_field(&v, "payload")?.to_string();
            let digest = str_field(&v, "digest")?;
            if digest != format!("{:016x}", fnv1a64(payload.as_bytes())) {
                return Ok(None);
            }
            Ok(Some(Line::Cell(CellEntry {
                sweep: usize_field(&v, "sweep")?,
                cell: usize_field(&v, "cell")?,
                seed: seed_field(&v, "seed")?,
                payload,
            })))
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

/// A loaded journal: sweep headers and completed-cell records, in file
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// Sweep headers, in file order.
    pub sweeps: Vec<SweepMeta>,
    /// Completed cells, in completion (file) order.
    pub cells: Vec<CellEntry>,
    /// Records dropped during load: a torn trailing line plus any
    /// digest-mismatched cells. Non-zero is survivable — the affected
    /// cells just re-run.
    pub dropped_records: usize,
}

impl Journal {
    /// Loads and parses a journal file.
    pub fn load(path: &Path) -> Result<Journal, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Journal::from_text(&text)
    }

    /// Parses journal text. A malformed *final* line is tolerated (a
    /// crashed non-atomic writer tears only the tail); malformed lines
    /// elsewhere are corruption and fail the load.
    pub fn from_text(text: &str) -> Result<Journal, String> {
        let lines: Vec<&str> = text.lines().collect();
        let last_content = lines.iter().rposition(|l| !l.trim().is_empty());
        let mut journal = Journal::default();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Ok(Some(Line::Sweep(m))) => journal.sweeps.push(m),
                Ok(Some(Line::Cell(c))) => journal.cells.push(c),
                Ok(None) => journal.dropped_records += 1,
                Err(e) if Some(i) == last_content => {
                    let _ = e;
                    journal.dropped_records += 1;
                }
                Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
            }
        }
        Ok(journal)
    }

    /// The header of sweep `idx`, if that sweep ever started.
    pub fn sweep(&self, idx: usize) -> Option<&SweepMeta> {
        self.sweeps.iter().find(|m| m.sweep == idx)
    }

    /// Completed cells of sweep `idx` keyed by canonical cell index.
    /// If a cell was recorded more than once the later record wins
    /// (results are deterministic, so they can only agree anyway).
    pub fn cells_for(&self, idx: usize) -> BTreeMap<usize, &CellEntry> {
        let mut out = BTreeMap::new();
        for c in self.cells.iter().filter(|c| c.sweep == idx) {
            out.insert(c.cell, c);
        }
        out
    }
}

/// Incremental journal writer. Keeps the full journal text in memory
/// and rewrites the file atomically on every record, so the on-disk
/// journal is complete and well-formed after *every* cell — the
/// crash-safety invariant resume depends on.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    text: String,
}

impl JournalWriter {
    /// A writer targeting `path`. Nothing is written until the first
    /// record; an existing file is replaced at that point.
    pub fn create(path: PathBuf) -> JournalWriter {
        JournalWriter {
            path,
            text: String::new(),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a sweep header and flushes.
    pub fn begin_sweep(&mut self, meta: &SweepMeta) -> io::Result<()> {
        self.text.push_str(&encode_sweep_line(meta));
        self.text.push('\n');
        self.flush()
    }

    /// Appends a completed-cell record and flushes.
    pub fn record(&mut self, cell: &CellEntry) -> io::Result<()> {
        self.text.push_str(&encode_cell_line(cell));
        self.text.push('\n');
        self.flush()
    }

    fn flush(&self) -> io::Result<()> {
        atomic_write(&self.path, &self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SweepMeta {
        SweepMeta {
            sweep: 0,
            bin: "fig3".to_string(),
            n_series: 2,
            repeats: 3,
            base_seed: u64::MAX - 1,
        }
    }

    fn entry(cell: usize, payload: &str) -> CellEntry {
        CellEntry {
            sweep: 0,
            cell,
            seed: u64::MAX - 2 + (cell % 3) as u64,
            payload: payload.to_string(),
        }
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roundtrips_through_text_including_big_seeds() {
        let mut w = JournalWriter::create(PathBuf::from("unused"));
        // Build the text without touching the filesystem.
        w.text.push_str(&encode_sweep_line(&meta()));
        w.text.push('\n');
        for (i, payload) in ["{\"x\":1.5}", "plain text\nwith newline", ""]
            .iter()
            .enumerate()
        {
            w.text.push_str(&encode_cell_line(&entry(i, payload)));
            w.text.push('\n');
        }
        let j = Journal::from_text(&w.text).expect("parses");
        assert_eq!(j.sweeps, vec![meta()]);
        assert_eq!(j.cells.len(), 3);
        assert_eq!(j.cells[1].payload, "plain text\nwith newline");
        assert_eq!(j.cells[0].seed, u64::MAX - 2, "u64 seeds survive exactly");
        assert_eq!(j.dropped_records, 0);
        let by_cell = j.cells_for(0);
        assert_eq!(by_cell.len(), 3);
        assert_eq!(by_cell.get(&2).map(|c| c.payload.as_str()), Some(""));
        assert!(j.cells_for(1).is_empty());
        assert_eq!(j.sweep(0), Some(&meta()));
        assert_eq!(j.sweep(1), None);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let full = format!(
            "{}\n{}\n",
            encode_sweep_line(&meta()),
            encode_cell_line(&entry(0, "ok"))
        );
        let torn = format!("{full}{}", {
            let line = encode_cell_line(&entry(1, "cut"));
            line[..line.len() / 2].to_string()
        });
        let j = Journal::from_text(&torn).expect("torn tail tolerated");
        assert_eq!(j.cells.len(), 1);
        assert_eq!(j.dropped_records, 1);
    }

    #[test]
    fn garbage_mid_file_is_an_error() {
        let text = format!("not json at all\n{}\n", encode_cell_line(&entry(0, "fine")));
        assert!(Journal::from_text(&text).is_err());
    }

    #[test]
    fn digest_mismatch_drops_the_record_anywhere() {
        let mut line = encode_cell_line(&entry(0, "value-a"));
        line = line.replace("value-a", "value-b");
        let text = format!("{line}\n{}\n", encode_cell_line(&entry(1, "good")));
        let j = Journal::from_text(&text).expect("well-formed lines parse");
        assert_eq!(j.cells.len(), 1);
        assert_eq!(j.cells[0].cell, 1);
        assert_eq!(j.dropped_records, 1);
    }

    #[test]
    fn later_duplicate_record_wins() {
        let text = format!(
            "{}\n{}\n",
            encode_cell_line(&entry(4, "first")),
            encode_cell_line(&entry(4, "second"))
        );
        let j = Journal::from_text(&text).expect("parses");
        let by_cell = j.cells_for(0);
        assert_eq!(by_cell.get(&4).map(|c| c.payload.as_str()), Some("second"));
    }

    #[test]
    fn unknown_schema_or_kind_is_an_error() {
        let bad_schema = encode_sweep_line(&meta()).replace("lexcache-journal/1", "other/9");
        assert!(Journal::from_text(&format!("{bad_schema}\nx\n")).is_err());
        let bad_kind = encode_cell_line(&entry(0, "p")).replace("\"cell\"", "\"blob\"");
        let text = format!("{bad_kind}\n{}\n", encode_cell_line(&entry(1, "p")));
        assert!(Journal::from_text(&text).is_err());
    }

    #[test]
    fn atomic_write_and_writer_flush_each_record() {
        let dir = std::env::temp_dir().join(format!("lexcache_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.journal.jsonl");

        let mut w = JournalWriter::create(path.clone());
        w.begin_sweep(&meta()).expect("header write");
        w.record(&entry(0, "r0")).expect("cell write");
        let j = Journal::load(&path).expect("loads after each flush");
        assert_eq!((j.sweeps.len(), j.cells.len()), (1, 1));
        w.record(&entry(1, "r1")).expect("cell write");
        let j = Journal::load(&path).expect("loads");
        assert_eq!(j.cells.len(), 2);
        assert!(
            !path.with_extension("jsonl.tmp").exists(),
            "rename consumed the temp file"
        );

        atomic_write(&path, "").expect("plain atomic write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "");
        std::fs::remove_dir_all(&dir).ok();
    }
}
