//! `lexcache-runner` — deterministic parallel experiment engine and
//! statistical perf harness.
//!
//! The evaluation grid of the paper (§VI) is large: six policy
//! families × many seeds × sweeps over ε, γ, λ, topology, cache size
//! and fault intensity. This crate turns such a sweep into a job graph
//! of `(series, repeat)` cells ([`Grid`]) and executes it on a
//! hand-rolled scoped thread pool ([`pool`]): plain `std` threads
//! pulling chunked index ranges from a closeable [`JobQueue`] built on
//! one `Mutex` + `Condvar`. No external dependencies, no unsafe code.
//!
//! # Determinism contract
//!
//! Parallelism must never change a result bit. The engine guarantees:
//!
//! * **Seed derivation is positional.** A cell's identity — and
//!   therefore whatever seed the caller derives from it — depends only
//!   on its canonical index, never on which worker ran it or when.
//! * **Reduction is canonical.** Results are re-ordered into canonical
//!   cell order (the exact order a serial nested loop visits) before
//!   they are returned, regardless of completion order.
//! * **`threads = 1` is the serial path.** One worker short-circuits
//!   to a plain in-order loop on the calling thread — byte-for-byte
//!   the pre-runner behaviour.
//!
//! Given a pure per-cell function, `threads = 8` output is therefore
//! bit-identical to `threads = 1` (the golden-trace regression test in
//! `crates/bench` pins this end to end, including merged observability
//! registries).
//!
//! # Fault tolerance
//!
//! Long sweeps must survive failures of the harness itself, so the
//! pool has a robust sibling, [`pool::run_robust`]: every cell runs
//! under `catch_unwind` ([`outcome`]), panicked cells are re-executed
//! with the *same* positional seed up to a retry budget and then
//! quarantined instead of tearing the sweep down, and an optional
//! monotonic-clock watchdog flags cells exceeding a wall-clock budget
//! without interrupting them. Completed cells can be checkpointed to
//! an atomically rewritten JSONL journal ([`journal`]) and spliced
//! back in canonical order on `--resume`, so an interrupted sweep's
//! final report is byte-identical to an uninterrupted run.
//!
//! # Statistical bench mode
//!
//! [`stats`] implements the measurement discipline for the repo's perf
//! trajectory: monotonic-clock timing only, explicit warmup, fixed
//! iteration counts, and median / p90 across repeats rather than a
//! single noisy sample. [`report`] defines the `BENCH_runner.json`
//! schema, a hand-rolled encoder/parser for it ([`mini_json`]), and a
//! baseline comparison that fails on regressions beyond a threshold —
//! the contract behind the `bench-smoke` CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod grid;
pub mod journal;
pub mod mini_json;
pub mod outcome;
pub mod pool;
pub mod report;
pub mod stats;

pub use clock::Stopwatch;
pub use grid::{CellId, Grid};
pub use journal::{atomic_write, fnv1a64, CellEntry, Journal, JournalWriter, SweepMeta};
pub use outcome::{panic_message, CellEvent, CellOutcome, RunPolicy};
pub use pool::{available_threads, map_indexed, run_robust, JobQueue};
pub use report::{compare, BenchCell, BenchReport, Comparison, Regression};
pub use stats::{calibrate, measure, summarize, time_once_ns, BenchOpts, Measurement};
