//! `lexcache-runner` — deterministic parallel experiment engine and
//! statistical perf harness.
//!
//! The evaluation grid of the paper (§VI) is large: six policy
//! families × many seeds × sweeps over ε, γ, λ, topology, cache size
//! and fault intensity. This crate turns such a sweep into a job graph
//! of `(series, repeat)` cells ([`Grid`]) and executes it on a
//! hand-rolled scoped thread pool ([`pool`]): plain `std` threads
//! pulling chunked index ranges from a closeable [`JobQueue`] built on
//! one `Mutex` + `Condvar`. No external dependencies, no unsafe code.
//!
//! # Determinism contract
//!
//! Parallelism must never change a result bit. The engine guarantees:
//!
//! * **Seed derivation is positional.** A cell's identity — and
//!   therefore whatever seed the caller derives from it — depends only
//!   on its canonical index, never on which worker ran it or when.
//! * **Reduction is canonical.** Results are re-ordered into canonical
//!   cell order (the exact order a serial nested loop visits) before
//!   they are returned, regardless of completion order.
//! * **`threads = 1` is the serial path.** One worker short-circuits
//!   to a plain in-order loop on the calling thread — byte-for-byte
//!   the pre-runner behaviour.
//!
//! Given a pure per-cell function, `threads = 8` output is therefore
//! bit-identical to `threads = 1` (the golden-trace regression test in
//! `crates/bench` pins this end to end, including merged observability
//! registries).
//!
//! # Statistical bench mode
//!
//! [`stats`] implements the measurement discipline for the repo's perf
//! trajectory: monotonic-clock timing only, explicit warmup, fixed
//! iteration counts, and median / p90 across repeats rather than a
//! single noisy sample. [`report`] defines the `BENCH_runner.json`
//! schema, a hand-rolled encoder/parser for it ([`mini_json`]), and a
//! baseline comparison that fails on regressions beyond a threshold —
//! the contract behind the `bench-smoke` CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod mini_json;
pub mod pool;
pub mod report;
pub mod stats;

pub use grid::{CellId, Grid};
pub use pool::{available_threads, map_indexed, JobQueue};
pub use report::{compare, BenchCell, BenchReport, Comparison, Regression};
pub use stats::{calibrate, measure, summarize, time_once_ns, BenchOpts, Measurement};
