//! The statistical measurement discipline behind the perf trajectory.
//!
//! Every timing follows the same protocol: a fixed number of warmup
//! iterations (never measured), then `repeats` measured batches of a
//! *fixed* iteration count each, on the monotonic clock only. The
//! statistic of record is the **median** ns/iteration across repeats
//! (robust to one preempted batch), with p90 and min reported
//! alongside. Nothing in the measured region may read wall-clock time
//! or derive seeds from it — measured workloads take their seeds as
//! plain inputs.

use crate::clock::Stopwatch;

/// Iteration plan for one measured cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOpts {
    /// Unmeasured warmup iterations executed first.
    pub warmup_iters: u64,
    /// Iterations per measured batch (fixed, never adaptive — adaptive
    /// counts would couple the workload to the clock).
    pub iters: u64,
    /// Measured batches; the median across them is the statistic.
    pub repeats: usize,
}

impl BenchOpts {
    /// CI smoke plan: minimal but still a real median-of-repeats.
    pub fn smoke() -> Self {
        BenchOpts {
            warmup_iters: 1,
            iters: 2,
            repeats: 3,
        }
    }

    /// Default local plan.
    pub fn standard() -> Self {
        BenchOpts {
            warmup_iters: 3,
            iters: 5,
            repeats: 7,
        }
    }
}

/// Aggregated timing of one cell, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations per measured batch.
    pub iters: u64,
    /// Number of measured batches.
    pub repeats: u64,
    /// Median ns/iter across batches — the statistic of record.
    pub median_ns: f64,
    /// 90th-percentile ns/iter across batches (nearest rank).
    pub p90_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Mean ns/iter across batches.
    pub mean_ns: f64,
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Reduces per-batch ns/iteration samples to a [`Measurement`].
pub fn summarize(iters: u64, ns_per_iter: &[f64]) -> Measurement {
    let mut sorted = ns_per_iter.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    Measurement {
        iters,
        repeats: sorted.len() as u64,
        median_ns: quantile_sorted(&sorted, 0.50),
        p90_ns: quantile_sorted(&sorted, 0.90),
        min_ns: sorted.first().copied().unwrap_or(0.0),
        mean_ns: mean,
    }
}

/// Times one closure call on the monotonic clock, in nanoseconds.
pub fn time_once_ns<F: FnOnce()>(f: F) -> f64 {
    let start = Stopwatch::start();
    f();
    start.elapsed_ns()
}

/// Measures `f` under `opts`: warmup, then `repeats` batches of
/// `iters` calls each, reduced by [`summarize`].
pub fn measure<F: FnMut()>(opts: BenchOpts, mut f: F) -> Measurement {
    for _ in 0..opts.warmup_iters {
        f();
    }
    let mut ns_per_iter = Vec::with_capacity(opts.repeats);
    let iters = opts.iters.max(1);
    for _ in 0..opts.repeats {
        let start = Stopwatch::start();
        for _ in 0..iters {
            f();
        }
        let total_ns = start.elapsed_ns();
        ns_per_iter.push(total_ns / iters as f64);
    }
    summarize(iters, &ns_per_iter)
}

/// Spin length of the calibration workload.
const CALIBRATION_STEPS: u64 = 100_000;

/// Times a fixed, seed-free integer workload (an LCG spin) and returns
/// its median ns/iteration. Bench reports store every cell both in
/// absolute ns and as a ratio to this number, so baselines compare
/// *shape* across machines of different speeds instead of absolute
/// nanoseconds.
pub fn calibrate() -> f64 {
    let opts = BenchOpts {
        warmup_iters: 2,
        iters: 10,
        repeats: 5,
    };
    measure(opts, || {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..CALIBRATION_STEPS {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(acc);
    })
    .median_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert_eq!(quantile_sorted(&sorted, 0.50), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.90), 9.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 2.0), 10.0, "q clamps");
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn summarize_is_order_independent() {
        let a = summarize(4, &[3.0, 1.0, 2.0]);
        let b = summarize(4, &[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.median_ns, 2.0);
        assert_eq!(a.min_ns, 1.0);
        assert_eq!(a.p90_ns, 3.0);
        assert!((a.mean_ns - 2.0).abs() < 1e-12);
        assert_eq!(a.repeats, 3);
        assert_eq!(a.iters, 4);
    }

    #[test]
    fn summarize_empty_is_zeroed() {
        let m = summarize(1, &[]);
        assert_eq!(m.median_ns, 0.0);
        assert_eq!(m.repeats, 0);
    }

    #[test]
    fn measure_counts_calls_exactly() {
        let mut calls = 0u64;
        let opts = BenchOpts {
            warmup_iters: 2,
            iters: 3,
            repeats: 4,
        };
        let m = measure(opts, || calls += 1);
        assert_eq!(calls, 2 + 3 * 4, "warmup + iters×repeats");
        assert_eq!(m.repeats, 4);
        assert!(m.median_ns >= 0.0 && m.median_ns.is_finite());
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p90_ns);
    }

    #[test]
    fn time_once_is_nonnegative_and_finite() {
        let ns = time_once_ns(|| {
            std::hint::black_box(21 + 21);
        });
        assert!(ns >= 0.0 && ns.is_finite());
    }

    #[test]
    fn calibration_measures_real_work() {
        let ns = calibrate();
        assert!(ns.is_finite() && ns > 0.0, "calibration spin took {ns} ns");
    }
}
