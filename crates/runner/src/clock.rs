//! The workspace's single wall-clock boundary.
//!
//! Every monotonic-time read in the workspace goes through
//! [`Stopwatch`]; this file is the only place allowed to touch
//! [`std::time::Instant`] directly (lexlint rule LX07 enforces that —
//! see `lexlint.toml` `[lx07]`). Centralising the clock keeps the
//! determinism audit surface to one file: timing can never leak into a
//! seed, a reduction order, or a cached decision without passing
//! through here.
//!
//! The stopwatch is `Copy`, allocation-free and independent of any
//! observability sink, so it is safe to store in shared registries
//! (e.g. the pool's in-flight cell map) and to read from watchdog
//! threads.

use std::time::{Duration, Instant};

/// A plain monotonic stopwatch: starts on construction, reports the
/// elapsed duration on demand. Never reads the system date.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`] as a [`Duration`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e9
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    /// Whole milliseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(a >= 0.0 && a.is_finite());
        assert!(b >= a, "monotonic clock never goes backwards");
    }

    #[test]
    fn units_are_consistent() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        let ns = sw.elapsed_ns();
        let us = sw.elapsed_us();
        let ms = sw.elapsed_ms();
        assert!(ns >= 5e6, "slept at least 5 ms, got {ns} ns");
        assert!(us >= 5e3 && us <= ns, "µs within ns bound");
        assert!((ms as f64) * 1e6 <= ns * 1.01, "ms floor within ns bound");
    }

    #[test]
    fn copy_semantics_share_the_start_point() {
        let sw = Stopwatch::start();
        let copy = sw;
        // The copy shares the original's start instant, so a strictly
        // later read must report at least as much elapsed time.
        let first = sw.elapsed();
        let second = copy.elapsed();
        assert!(second >= first, "{second:?} < {first:?}");
    }
}
