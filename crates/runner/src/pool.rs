//! The scoped thread pool: a closeable chunked work queue behind one
//! `Mutex`/`Condvar`, drained by plain `std::thread::scope` workers.
//!
//! The pool is deliberately minimal: it executes a *fixed* set of
//! index-addressed jobs and returns their results in index order. All
//! determinism-sensitive policy (seed derivation, reduction order)
//! lives in the caller; the pool only promises that every index runs
//! exactly once and that the output `Vec` is canonical.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Worker count of the machine (≥ 1): `std::thread::available_parallelism`
/// with a serial fallback when the platform cannot report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Range<usize>>,
    closed: bool,
}

/// A multi-producer multi-consumer queue of index ranges ("chunks")
/// with close semantics: [`JobQueue::pop`] blocks on the condvar while
/// the queue is open and empty, and returns `None` once it is closed
/// and drained. Poisoning is recovered (the queue state is a plain
/// `VecDeque`, always valid), matching the workspace-wide
/// `lock().unwrap_or_else(PoisonError::into_inner)` idiom.
#[derive(Debug, Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl JobQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one chunk of job indices. Empty ranges are ignored.
    pub fn push(&self, jobs: Range<usize>) {
        if jobs.is_empty() {
            return;
        }
        self.lock().jobs.push_back(jobs);
        self.ready.notify_one();
    }

    /// Closes the queue: pending chunks still drain, then every blocked
    /// and future [`JobQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Dequeues the next chunk, blocking while the queue is open and
    /// empty. Returns `None` once closed and drained.
    pub fn pop(&self) -> Option<Range<usize>> {
        let mut st = self.lock();
        loop {
            if let Some(chunk) = st.jobs.pop_front() {
                return Some(chunk);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Number of chunks currently queued.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Whether no chunk is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Chunk width used to split `n` jobs across `workers`: roughly four
/// chunks per worker so stragglers rebalance, never below one. The
/// split affects scheduling only — results are reduced in canonical
/// order either way.
pub fn chunk_size(n: usize, workers: usize) -> usize {
    (n / workers.max(1).saturating_mul(4)).max(1)
}

/// Runs `f` over every index in `0..n` on up to `threads` workers and
/// returns the results **in index order** regardless of completion
/// order. `threads <= 1` (or `n <= 1`) short-circuits to a plain
/// serial in-order loop on the calling thread — the exact pre-pool
/// code path.
///
/// A panic inside `f` propagates to the caller once the scope joins
/// (std re-raises the first worker payload), so failures are never
/// swallowed into partial results.
///
/// # Panics
///
/// Panics if a worker failed to deliver a result (only possible if `f`
/// panicked, which re-raises first).
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }

    let queue = JobQueue::new();
    let chunk = chunk_size(n, workers);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        queue.push(start..end);
        start = end;
    }
    queue.close();

    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(range) = queue.pop() {
                    // Buffer the chunk locally so the results lock is
                    // taken once per chunk, not once per cell.
                    let mut local: Vec<(usize, T)> = Vec::with_capacity(range.len());
                    for i in range {
                        local.push((i, f(i)));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .append(&mut local);
                }
            });
        }
    });

    let mut out = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    out.sort_by_key(|&(i, _)| i);
    assert_eq!(out.len(), n, "pool delivered a wrong result count");
    out.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_drains_in_fifo_order_then_closes() {
        let q = JobQueue::new();
        q.push(0..2);
        q.push(2..5);
        q.push(5..5); // empty: ignored
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(0..2));
        assert_eq!(q.pop(), Some(2..5));
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = std::sync::Arc::new(JobQueue::new());
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(3..4);
        assert_eq!(handle.join().expect("no panic"), Some(3..4));

        let q3 = q.clone();
        let handle = std::thread::spawn(move || q3.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(handle.join().expect("no panic"), None);
    }

    #[test]
    fn chunking_covers_every_index_once() {
        for (n, workers) in [(1, 8), (7, 2), (100, 16), (64, 64), (5, 1)] {
            let c = chunk_size(n, workers);
            assert!(c >= 1);
            let mut seen = vec![0u32; n];
            let mut start = 0;
            while start < n {
                let end = (start + c).min(n);
                for i in start..end {
                    seen[i] += 1;
                }
                start = end;
            }
            assert!(seen.iter().all(|&s| s == 1), "n={n} workers={workers}");
        }
    }

    #[test]
    fn map_indexed_returns_canonical_order() {
        let out = map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // A cell function whose result depends only on the index.
        let cell = |i: usize| {
            let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let serial = map_indexed(37, 1, cell);
        for threads in [2, 3, 8] {
            assert_eq!(map_indexed(37, threads, cell), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let n = 200;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        map_indexed(n, 6, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(16, 4, |i| {
                if i == 9 {
                    panic!("cell 9 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must not be swallowed");
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
