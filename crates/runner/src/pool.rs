//! The scoped thread pool: a closeable chunked work queue behind one
//! `Mutex`/`Condvar`, drained by plain `std::thread::scope` workers.
//!
//! The pool is deliberately minimal: it executes a *fixed* set of
//! index-addressed jobs and returns their results in index order. All
//! determinism-sensitive policy (seed derivation, reduction order)
//! lives in the caller; the pool only promises that every index runs
//! exactly once and that the output `Vec` is canonical.

use crate::clock::Stopwatch;
use crate::outcome::{panic_message, CellEvent, CellOutcome, RunPolicy};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Worker count of the machine (≥ 1): `std::thread::available_parallelism`
/// with a serial fallback when the platform cannot report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Range<usize>>,
    closed: bool,
}

/// A multi-producer multi-consumer queue of index ranges ("chunks")
/// with close semantics: [`JobQueue::pop`] blocks on the condvar while
/// the queue is open and empty, and returns `None` once it is closed
/// and drained. Poisoning is recovered (the queue state is a plain
/// `VecDeque`, always valid), matching the workspace-wide
/// `lock().unwrap_or_else(PoisonError::into_inner)` idiom.
#[derive(Debug, Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl JobQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one chunk of job indices. Empty ranges are ignored.
    pub fn push(&self, jobs: Range<usize>) {
        if jobs.is_empty() {
            return;
        }
        self.lock().jobs.push_back(jobs);
        self.ready.notify_one();
    }

    /// Closes the queue: pending chunks still drain, then every blocked
    /// and future [`JobQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Dequeues the next chunk, blocking while the queue is open and
    /// empty. Returns `None` once closed and drained.
    pub fn pop(&self) -> Option<Range<usize>> {
        let mut st = self.lock();
        loop {
            if let Some(chunk) = st.jobs.pop_front() {
                return Some(chunk);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Number of chunks currently queued.
    pub fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Whether no chunk is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Chunk width used to split `n` jobs across `workers`: roughly four
/// chunks per worker so stragglers rebalance, never below one. The
/// split affects scheduling only — results are reduced in canonical
/// order either way.
pub fn chunk_size(n: usize, workers: usize) -> usize {
    (n / workers.max(1).saturating_mul(4)).max(1)
}

/// Runs `f` over every index in `0..n` on up to `threads` workers and
/// returns the results **in index order** regardless of completion
/// order. `threads <= 1` (or `n <= 1`) short-circuits to a plain
/// serial in-order loop on the calling thread — the exact pre-pool
/// code path.
///
/// A panic inside `f` propagates to the caller once the scope joins
/// (std re-raises the first worker payload), so failures are never
/// swallowed into partial results.
///
/// # Panics
///
/// Panics if a worker failed to deliver a result (only possible if `f`
/// panicked, which re-raises first).
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }

    let queue = JobQueue::new();
    let chunk = chunk_size(n, workers);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        queue.push(start..end);
        start = end;
    }
    queue.close();

    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(range) = queue.pop() {
                    // Buffer the chunk locally so the results lock is
                    // taken once per chunk, not once per cell.
                    let mut local: Vec<(usize, T)> = Vec::with_capacity(range.len());
                    for i in range {
                        local.push((i, f(i)));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .append(&mut local);
                }
            });
        }
    });

    let mut out = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    out.sort_by_key(|&(i, _)| i);
    assert_eq!(out.len(), n, "pool delivered a wrong result count");
    out.into_iter().map(|(_, v)| v).collect()
}

/// In-flight cell registry shared between workers and the watchdog:
/// which cells are currently executing and since when.
#[derive(Debug, Default)]
struct Inflight {
    cells: Mutex<BTreeMap<usize, Stopwatch>>,
}

impl Inflight {
    fn lock(&self) -> MutexGuard<'_, BTreeMap<usize, Stopwatch>> {
        self.cells.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn enter(&self, cell: usize) {
        self.lock().insert(cell, Stopwatch::start());
    }

    fn exit(&self, cell: usize) {
        self.lock().remove(&cell);
    }

    /// Cells running longer than `budget`, with their elapsed ms.
    fn overdue(&self, budget: Duration) -> Vec<(usize, u64)> {
        self.lock()
            .iter()
            .filter_map(|(&cell, started)| {
                let elapsed = started.elapsed();
                (elapsed > budget).then(|| (cell, elapsed.as_millis() as u64))
            })
            .collect()
    }
}

/// Runs one cell to its final outcome: `catch_unwind` around every
/// attempt, up to `policy.max_retries` re-runs of the *same index* (so
/// the caller's positional seed is unchanged), the last attempt's
/// wall-clock time checked against the watchdog budget.
fn run_cell_robust<T, F, E>(
    cell: usize,
    f: &F,
    policy: &RunPolicy,
    events: &E,
    inflight: Option<&Inflight>,
) -> CellOutcome<T>
where
    F: Fn(usize) -> T + Sync,
    E: Fn(CellEvent<'_, T>) + Sync,
{
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if let Some(inf) = inflight {
            inf.enter(cell);
        }
        let started = Stopwatch::start();
        let run = catch_unwind(AssertUnwindSafe(|| f(cell)));
        let elapsed_ms = started.elapsed_ms();
        if let Some(inf) = inflight {
            inf.exit(cell);
        }
        match run {
            Ok(value) => {
                let outcome = match policy.cell_budget_ms {
                    Some(budget_ms) if elapsed_ms > budget_ms => CellOutcome::TimedOut {
                        value,
                        elapsed_ms,
                        budget_ms,
                    },
                    _ => CellOutcome::Ok(value),
                };
                events(CellEvent::Finished {
                    cell,
                    outcome: &outcome,
                });
                return outcome;
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                let will_retry = attempt <= policy.max_retries;
                events(CellEvent::PanicCaught {
                    cell,
                    attempt,
                    message: &message,
                    will_retry,
                });
                if !will_retry {
                    let outcome = CellOutcome::Panicked {
                        message,
                        attempts: attempt,
                    };
                    events(CellEvent::Finished {
                        cell,
                        outcome: &outcome,
                    });
                    return outcome;
                }
            }
        }
    }
}

/// Watchdog loop: wakes every `poll` tick (or as soon as the sweep
/// finishes) and fires `warn(cell, elapsed_ms)` once per cell found
/// over budget. Purely observational — it never interrupts a worker,
/// so it can never perturb a result.
fn watchdog_loop(
    budget: Duration,
    inflight: &Inflight,
    done: &(Mutex<bool>, Condvar),
    warn: impl Fn(usize, u64),
) {
    let poll = Duration::from_millis((budget.as_millis() as u64 / 4).clamp(10, 1000));
    let mut warned = BTreeSet::new();
    let mut finished = done.0.lock().unwrap_or_else(|p| p.into_inner());
    while !*finished {
        let (next, _) = done
            .1
            .wait_timeout(finished, poll)
            .unwrap_or_else(|p| p.into_inner());
        finished = next;
        if *finished {
            return;
        }
        for (cell, elapsed_ms) in inflight.overdue(budget) {
            if warned.insert(cell) {
                warn(cell, elapsed_ms);
            }
        }
    }
}

/// Fault-tolerant variant of [`map_indexed`]: runs `f` over `0..n` on
/// up to `threads` workers and returns one [`CellOutcome`] per index,
/// **in index order**. Unlike `map_indexed`, a panicking cell never
/// tears the pool down:
///
/// * each attempt runs under `catch_unwind`; a panicked cell is
///   re-executed up to `policy.max_retries` times with the same index
///   (same positional seed), then quarantined as
///   [`CellOutcome::Panicked`] while every other cell still completes;
/// * with `policy.cell_budget_ms` set, a monotonic-clock watchdog
///   thread flags cells exceeding the budget ([`CellEvent::LongRunning`]
///   while running, [`CellOutcome::TimedOut`] once finished) without
///   ever interrupting them;
/// * `events` observes the lifecycle ([`CellEvent`]) from whichever
///   thread saw it — the `Finished` event is the safe journaling point
///   for checkpoint/resume.
///
/// The determinism contract of [`map_indexed`] carries over: outcomes
/// are reduced in canonical index order and `threads = 1` without a
/// watchdog is a plain serial loop on the calling thread.
///
/// # Panics
///
/// Panics only if the pool infrastructure itself fails (a worker
/// panicking *outside* `catch_unwind`, which would be a bug here, is
/// re-raised).
pub fn run_robust<T, F, E>(
    n: usize,
    threads: usize,
    policy: RunPolicy,
    f: F,
    events: E,
) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    E: Fn(CellEvent<'_, T>) + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n).max(1);
    if workers == 1 && policy.cell_budget_ms.is_none() {
        // Serial fast path: no threads, no watchdog, no locks.
        return (0..n)
            .map(|i| run_cell_robust(i, &f, &policy, &events, None))
            .collect();
    }

    let queue = JobQueue::new();
    let chunk = chunk_size(n, workers);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        queue.push(start..end);
        start = end;
    }
    queue.close();

    let inflight = Inflight::default();
    let done = (Mutex::new(false), Condvar::new());
    let collected: Mutex<Vec<(usize, CellOutcome<T>)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                while let Some(range) = queue.pop() {
                    let mut local = Vec::with_capacity(range.len());
                    for i in range {
                        local.push((i, run_cell_robust(i, &f, &policy, &events, Some(&inflight))));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .append(&mut local);
                }
            }));
        }
        let watchdog = policy.cell_budget_ms.map(|budget_ms| {
            let (inflight, done, events) = (&inflight, &done, &events);
            scope.spawn(move || {
                watchdog_loop(
                    Duration::from_millis(budget_ms),
                    &inflight,
                    &done,
                    |cell, elapsed_ms| {
                        events(CellEvent::LongRunning {
                            cell,
                            elapsed_ms,
                            budget_ms,
                        })
                    },
                )
            })
        });
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        // Wake the watchdog whatever happened to the workers, or it
        // would keep the scope alive for one more poll tick.
        *done.0.lock().unwrap_or_else(|p| p.into_inner()) = true;
        done.1.notify_all();
        if let Some(w) = watchdog {
            if let Err(payload) = w.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    });

    let mut out = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    out.sort_by_key(|&(i, _)| i);
    assert_eq!(out.len(), n, "robust pool delivered a wrong outcome count");
    out.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_drains_in_fifo_order_then_closes() {
        let q = JobQueue::new();
        q.push(0..2);
        q.push(2..5);
        q.push(5..5); // empty: ignored
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(0..2));
        assert_eq!(q.pop(), Some(2..5));
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = std::sync::Arc::new(JobQueue::new());
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(3..4);
        assert_eq!(handle.join().expect("no panic"), Some(3..4));

        let q3 = q.clone();
        let handle = std::thread::spawn(move || q3.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(handle.join().expect("no panic"), None);
    }

    #[test]
    fn chunking_covers_every_index_once() {
        for (n, workers) in [(1, 8), (7, 2), (100, 16), (64, 64), (5, 1)] {
            let c = chunk_size(n, workers);
            assert!(c >= 1);
            let mut seen = vec![0u32; n];
            let mut start = 0;
            while start < n {
                let end = (start + c).min(n);
                for i in start..end {
                    seen[i] += 1;
                }
                start = end;
            }
            assert!(seen.iter().all(|&s| s == 1), "n={n} workers={workers}");
        }
    }

    #[test]
    fn map_indexed_returns_canonical_order() {
        let out = map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // A cell function whose result depends only on the index.
        let cell = |i: usize| {
            let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let serial = map_indexed(37, 1, cell);
        for threads in [2, 3, 8] {
            assert_eq!(map_indexed(37, threads, cell), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let n = 200;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        map_indexed(n, 6, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(16, 4, |i| {
                if i == 9 {
                    panic!("cell 9 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must not be swallowed");
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_indexed_with_more_threads_than_cells() {
        // Worker count clamps to the cell count; canonical order holds.
        let out = map_indexed(3, 64, |i| i + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    fn no_events(_: CellEvent<'_, u64>) {}

    #[test]
    fn robust_matches_plain_pool_on_clean_cells() {
        let cell = |i: usize| {
            let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for _ in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let plain = map_indexed(23, 1, cell);
        for threads in [1, 2, 7] {
            let robust: Vec<u64> = run_robust(23, threads, RunPolicy::default(), cell, no_events)
                .into_iter()
                .map(|o| o.into_value().expect("clean cells"))
                .collect();
            assert_eq!(robust, plain, "threads={threads}");
        }
    }

    #[test]
    fn robust_zero_cells_and_more_threads_than_cells() {
        assert!(run_robust(0, 8, RunPolicy::default(), |i| i, |_| ()).is_empty());
        let out = run_robust(2, 32, RunPolicy::default(), |i| i * 3, |_| ());
        assert_eq!(
            out.into_iter()
                .filter_map(CellOutcome::into_value)
                .sum::<usize>(),
            3
        );
    }

    #[test]
    fn panicking_cell_is_retried_then_quarantined_without_deadlock() {
        let n = 12;
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let seeds_seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        let policy = RunPolicy::default().with_retries(2);
        let panic_events: Mutex<Vec<(usize, u32, bool)>> = Mutex::new(Vec::new());
        let outcomes = run_robust(
            n,
            4,
            policy,
            |i| {
                let attempt = attempts[i].fetch_add(1, Ordering::SeqCst);
                // Every attempt sees the same positional identity.
                seeds_seen
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((i, 1000 + i));
                if i == 5 {
                    panic!("cell 5 always fails");
                }
                if i == 7 && attempt == 0 {
                    panic!("cell 7 fails once");
                }
                i as u64
            },
            |ev| {
                if let CellEvent::PanicCaught {
                    cell,
                    attempt,
                    will_retry,
                    ..
                } = ev
                {
                    panic_events
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push((cell, attempt, will_retry));
                }
            },
        );

        // The flaky cell recovered with its positional seed intact; the
        // broken one was quarantined after max_retries + 1 attempts.
        assert_eq!(outcomes.len(), n, "every cell reports an outcome");
        match &outcomes[5] {
            CellOutcome::Panicked { message, attempts } => {
                assert_eq!(*attempts, 3);
                assert!(message.contains("cell 5"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(outcomes[7].value(), Some(&7));
        assert_eq!(attempts[5].load(Ordering::SeqCst), 3);
        assert_eq!(attempts[7].load(Ordering::SeqCst), 2);
        for (i, o) in outcomes.iter().enumerate() {
            if i != 5 {
                assert_eq!(o.value(), Some(&(i as u64)), "cell {i} still completed");
            }
        }
        let seeds = seeds_seen.into_inner().unwrap_or_else(|p| p.into_inner());
        assert!(
            seeds.iter().filter(|&&(i, s)| i == 5 && s == 1005).count() == 3,
            "retries keep the same positional seed"
        );
        let events = panic_events.into_inner().unwrap_or_else(|p| p.into_inner());
        let cell5: Vec<_> = events.iter().filter(|e| e.0 == 5).collect();
        assert_eq!(
            cell5.iter().map(|e| e.2).collect::<Vec<_>>(),
            vec![true, true, false],
            "two retries announced, then quarantine"
        );
    }

    #[test]
    fn quarantine_on_first_panic_with_zero_retries() {
        let outcomes = run_robust(
            4,
            1,
            RunPolicy::default().with_retries(0),
            |i| {
                if i == 1 {
                    panic!("no second chances");
                }
                i
            },
            |_| (),
        );
        assert!(matches!(
            outcomes[1],
            CellOutcome::Panicked { attempts: 1, .. }
        ));
        assert_eq!(outcomes[3].value(), Some(&3));
    }

    #[test]
    fn watchdog_flags_slow_cells_without_changing_values() {
        let warnings: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let outcomes = run_robust(
            4,
            2,
            RunPolicy::default().with_budget_ms(20),
            |i| {
                if i == 2 {
                    std::thread::sleep(std::time::Duration::from_millis(120));
                }
                i * 2
            },
            |ev| {
                if let CellEvent::LongRunning { cell, .. } = ev {
                    warnings
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(cell);
                }
            },
        );
        match &outcomes[2] {
            CellOutcome::TimedOut {
                value,
                elapsed_ms,
                budget_ms,
            } => {
                assert_eq!(*value, 4, "the value is still produced");
                assert_eq!(*budget_ms, 20);
                assert!(*elapsed_ms > 20);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(outcomes[0].value(), Some(&0));
        let warned = warnings.into_inner().unwrap_or_else(|p| p.into_inner());
        assert_eq!(warned, vec![2], "watchdog warned exactly once");
    }

    #[test]
    fn watchdog_runs_even_with_one_thread() {
        // threads = 1 + budget still goes through the pooled path so
        // the supervisor exists; results stay serial-ordered.
        let outcomes = run_robust(
            3,
            1,
            RunPolicy::default().with_budget_ms(5000),
            |i| i + 1,
            no_events_usize,
        );
        let values: Vec<usize> = outcomes
            .into_iter()
            .filter_map(CellOutcome::into_value)
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    fn no_events_usize(_: CellEvent<'_, usize>) {}

    #[test]
    fn finished_events_cover_every_cell_exactly_once() {
        let finished: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        run_robust(
            10,
            3,
            RunPolicy::default(),
            |i| i,
            |ev| {
                if let CellEvent::Finished { cell, .. } = ev {
                    finished
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(cell);
                }
            },
        );
        let mut seen = finished.into_inner().unwrap_or_else(|p| p.into_inner());
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
