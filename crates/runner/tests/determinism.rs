//! Cross-module regression tests for the runner's headline invariant:
//! worker count never changes a bit of the reduced output.

use lexcache_runner::{compare, map_indexed, BenchReport, Grid, Measurement};

/// A deterministic stand-in for an episode: a seeded integer recurrence
/// whose result depends only on the derived seed, with a workload that
/// varies by cell so completion order genuinely scrambles.
fn fake_episode(seed: u64) -> Vec<u64> {
    let mut acc = seed ^ 0x9e37_79b9_7f4a_7c15;
    let steps = 100 + (seed % 37) * 50;
    let mut trace = Vec::new();
    for i in 0..steps {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if i % 25 == 0 {
            trace.push(acc);
        }
    }
    trace
}

#[test]
fn grid_reduction_is_bit_identical_across_worker_counts() {
    let grid = Grid::new(4, 6);
    let base_seed = 17u64;
    let run = |threads: usize| {
        grid.run(threads, |c| {
            // Seed derivation is positional: series picks the spec,
            // repeat picks the seed — exactly the serial convention.
            fake_episode(base_seed + c.repeat as u64 + 1000 * c.series as u64)
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8, 32] {
        assert_eq!(run(threads), serial, "threads={threads} diverged");
    }
}

#[test]
fn map_indexed_interleaves_unequal_workloads_correctly() {
    // Heavier cells finish later; canonical reduction must hide that.
    let serial: Vec<u64> = (0..40).map(|i| fake_episode(i as u64)[0]).collect();
    let parallel = map_indexed(40, 7, |i| fake_episode(i as u64)[0]);
    assert_eq!(parallel, serial);
}

#[test]
fn bench_report_pipeline_roundtrip() {
    // measure-free pipeline check: summarize → report → json → compare.
    let mut report = BenchReport::new("smoke", 50.0);
    let m = Measurement {
        iters: 2,
        repeats: 3,
        median_ns: 100.0,
        p90_ns: 120.0,
        min_ns: 90.0,
        mean_ns: 105.0,
    };
    report.push("policy/decide", &m);
    let parsed = BenchReport::from_json(&report.to_json()).expect("roundtrip");
    let cmp = compare(&parsed, &report, 25.0);
    assert!(cmp.passed());
    assert!(cmp.improvements.is_empty() && cmp.missing.is_empty());
}
