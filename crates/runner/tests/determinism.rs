//! Cross-module regression tests for the runner's headline invariant:
//! worker count never changes a bit of the reduced output.

use lexcache_runner::journal::{CellEntry, Journal, JournalWriter, SweepMeta};
use lexcache_runner::{
    compare, map_indexed, run_robust, BenchReport, CellOutcome, Grid, Measurement, RunPolicy,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic stand-in for an episode: a seeded integer recurrence
/// whose result depends only on the derived seed, with a workload that
/// varies by cell so completion order genuinely scrambles.
fn fake_episode(seed: u64) -> Vec<u64> {
    let mut acc = seed ^ 0x9e37_79b9_7f4a_7c15;
    let steps = 100 + (seed % 37) * 50;
    let mut trace = Vec::new();
    for i in 0..steps {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if i % 25 == 0 {
            trace.push(acc);
        }
    }
    trace
}

#[test]
fn grid_reduction_is_bit_identical_across_worker_counts() {
    let grid = Grid::new(4, 6);
    let base_seed = 17u64;
    let run = |threads: usize| {
        grid.run(threads, |c| {
            // Seed derivation is positional: series picks the spec,
            // repeat picks the seed — exactly the serial convention.
            fake_episode(base_seed + c.repeat as u64 + 1000 * c.series as u64)
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8, 32] {
        assert_eq!(run(threads), serial, "threads={threads} diverged");
    }
}

#[test]
fn map_indexed_interleaves_unequal_workloads_correctly() {
    // Heavier cells finish later; canonical reduction must hide that.
    let serial: Vec<u64> = (0..40).map(|i| fake_episode(i as u64)[0]).collect();
    let parallel = map_indexed(40, 7, |i| fake_episode(i as u64)[0]);
    assert_eq!(parallel, serial);
}

#[test]
fn robust_path_with_flaky_cell_is_bit_identical_across_worker_counts() {
    // One cell panics on its first attempt at every worker count; the
    // retried result must splice back so outcomes stay bit-identical
    // to a clean serial run.
    let grid = Grid::new(3, 5);
    let n = grid.n_cells();
    let base_seed = 99u64;
    let cell_value = |i: usize| {
        fake_episode(base_seed + grid.cell(i).repeat as u64 + 71 * grid.cell(i).series as u64)
    };
    let serial: Vec<Vec<u64>> = (0..n).map(cell_value).collect();

    for threads in [1, 2, 4, 8] {
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let outcomes = run_robust(
            n,
            threads,
            RunPolicy::default(),
            |i| {
                if i == 7 && attempts[i].fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient failure on first attempt");
                }
                cell_value(i)
            },
            |_| (),
        );
        let values: Vec<Vec<u64>> = outcomes
            .into_iter()
            .map(|o| o.into_value().expect("flaky cell recovers"))
            .collect();
        assert_eq!(values, serial, "threads={threads} diverged");
        assert_eq!(attempts[7].load(Ordering::SeqCst), 2);
    }
}

#[test]
fn journal_resume_splices_to_a_bit_identical_sweep() {
    // Simulate kill-after-N: journal a full sweep, truncate to the
    // first N cell records, then "resume" by running only the missing
    // cells and splicing — the reduced rows must match an
    // uninterrupted run exactly.
    let grid = Grid::new(2, 4);
    let n = grid.n_cells();
    let base_seed = 5u64;
    let value = |i: usize| fake_episode(base_seed + grid.cell(i).repeat as u64)[0];
    let encode = |v: u64| v.to_string();

    let dir = std::env::temp_dir().join(format!("lexcache_resume_unit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sweep.journal.jsonl");
    let meta = SweepMeta {
        sweep: 0,
        bin: "determinism-test".to_string(),
        n_series: grid.n_series,
        repeats: grid.repeats,
        base_seed,
    };

    let mut w = JournalWriter::create(path.clone());
    w.begin_sweep(&meta).expect("header");
    for i in 0..n {
        w.record(&CellEntry {
            sweep: 0,
            cell: i,
            seed: base_seed + grid.cell(i).repeat as u64,
            payload: encode(value(i)),
        })
        .expect("record");
    }

    // Kill after 3 cells: keep the header plus the first 3 records.
    let full_text = std::fs::read_to_string(&path).expect("journal exists");
    let killed: String = full_text
        .lines()
        .take(4)
        .map(|l| format!("{l}\n"))
        .collect();
    let journal = Journal::from_text(&killed).expect("truncated journal parses");
    assert_eq!(journal.sweep(0), Some(&meta));
    let done = journal.cells_for(0);
    assert_eq!(done.len(), 3);

    // Resume: run only pending cells, splice recorded payloads back.
    let pending: Vec<usize> = (0..n).filter(|i| !done.contains_key(i)).collect();
    let executed = run_robust(
        pending.len(),
        4,
        RunPolicy::default(),
        |local| value(pending[local]),
        |_| (),
    );
    let mut indexed: Vec<(usize, u64)> = done
        .iter()
        .map(|(&i, e)| (i, e.payload.parse::<u64>().expect("recorded payload")))
        .collect();
    for (local, outcome) in executed.into_iter().enumerate() {
        indexed.push((pending[local], outcome.into_value().expect("clean cells")));
    }
    let resumed = grid.rows_from_indexed(indexed);
    let uninterrupted = grid.run(1, |c| value(grid.index(c)));
    assert_eq!(resumed, uninterrupted, "resume must be bit-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_reports_every_panicked_cell() {
    let outcomes = run_robust(
        10,
        3,
        RunPolicy::default().with_retries(1),
        |i| {
            if i % 4 == 2 {
                panic!("cell {i} is broken");
            }
            i
        },
        |_| (),
    );
    let quarantined: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_panicked())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(quarantined, vec![2, 6]);
    for (i, o) in outcomes.iter().enumerate() {
        if !quarantined.contains(&i) {
            assert_eq!(o.value(), Some(&i), "healthy cells still complete");
        }
    }
    if let CellOutcome::Panicked { message, attempts } = &outcomes[6] {
        assert_eq!(*attempts, 2);
        assert!(message.contains("cell 6"));
    }
}

#[test]
fn bench_report_pipeline_roundtrip() {
    // measure-free pipeline check: summarize → report → json → compare.
    let mut report = BenchReport::new("smoke", 50.0);
    let m = Measurement {
        iters: 2,
        repeats: 3,
        median_ns: 100.0,
        p90_ns: 120.0,
        min_ns: 90.0,
        mean_ns: 105.0,
    };
    report.push("policy/decide", &m);
    let parsed = BenchReport::from_json(&report.to_json()).expect("roundtrip");
    let cmp = compare(&parsed, &report, 25.0);
    assert!(cmp.passed());
    assert!(cmp.improvements.is_empty() && cmp.missing.is_empty());
}
