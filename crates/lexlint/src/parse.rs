//! A lightweight item/scope layer over the token stream: enough
//! structure for symbol-aware rules without a real Rust parser.
//!
//! What the rules need — and all this module extracts — is:
//!
//! * every `fn` item with its name, visibility, return-type tokens and
//!   the token range of its body (brace-matched, so per-function scans
//!   such as LX08's lock-discipline walk stay inside one scope);
//! * every `use` declaration, with `{…}` groups expanded to one path
//!   per leaf, so import-level bans (`use std::thread::spawn`) fire
//!   even when the call site later says just `spawn(…)`.
//!
//! Like the lexer, it is deliberately approximate: macros are not
//! expanded and type grammar is skimmed, not parsed. The rules built on
//! it only ever pattern-match structure this layer gets right.

use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Whether the item is `pub` (any restriction form counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Return-type tokens (texts), empty for `()`-returning functions.
    pub ret: Vec<String>,
    /// Token-index range of the body: `start` is the opening `{`,
    /// `end` is the index *past* the matching `}`. Empty for body-less
    /// trait signatures.
    pub body: Range<usize>,
}

/// One expanded `use` path: `use std::{thread, time::Instant};` yields
/// `["std", "thread"]` and `["std", "time", "Instant"]`.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Path segments; a trailing `"*"` marks a glob import.
    pub path: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// The parsed shape of one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Every `fn` item, in source order (outer before nested).
    pub fns: Vec<FnItem>,
    /// Every expanded `use` path, in source order.
    pub uses: Vec<UseDecl>,
}

impl FileAst {
    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.end - f.body.start)
    }
}

/// Parses one file's token stream into its item/scope shape.
pub fn parse(toks: &[Tok]) -> FileAst {
    let mut ast = FileAst::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("fn") {
            if let Some(item) = parse_fn(toks, i) {
                // Continue scanning *inside* the body so nested fns and
                // uses are found too.
                let resume = if item.body.is_empty() {
                    i + 1
                } else {
                    item.body.start + 1
                };
                ast.fns.push(item);
                i = resume;
                continue;
            }
        } else if t.is_ident("use") && stmt_start(toks, i) {
            i = parse_use(toks, i, &mut ast.uses);
            continue;
        }
        i += 1;
    }
    ast
}

/// Whether `toks[i]` begins a statement/item (start of file or right
/// after `;`, `{` or `}`, optionally with `pub …` qualifiers between).
fn stmt_start(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &toks[j - 1];
        if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") || p.is_punct("]") {
            return true;
        }
        // Skip back over visibility qualifiers: `pub`, `pub(crate)`, …
        if p.kind == TokKind::Ident || p.is_punct("(") || p.is_punct(")") {
            if p.is_ident("pub") || p.is_ident("crate") || p.is_ident("super") || p.is_ident("in") {
                j -= 1;
                continue;
            }
            if p.is_punct("(") || p.is_punct(")") {
                j -= 1;
                continue;
            }
        }
        return false;
    }
    true
}

/// Parses the `fn` item whose `fn` keyword sits at `toks[i]`.
fn parse_fn(toks: &[Tok], i: usize) -> Option<FnItem> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(usize) -> T` pointer type, not an item
    }
    let name = name_tok.text.clone();
    let mut j = i + 2;

    // Skip generic parameters `<…>`, tracking shift-operator tokens.
    if toks.get(j).map(|t| t.is_punct("<")).unwrap_or(false) {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" if toks[j].kind == TokKind::Punct => depth += 1,
                "<<" if toks[j].kind == TokKind::Punct => depth += 2,
                ">" if toks[j].kind == TokKind::Punct => depth -= 1,
                ">>" if toks[j].kind == TokKind::Punct => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }

    // Parameter list `(…)`.
    if !toks.get(j).map(|t| t.is_punct("(")).unwrap_or(false) {
        return None;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }

    // Optional return type: tokens between `->` and `{` / `;` / `where`.
    let mut ret = Vec::new();
    if toks.get(j).map(|t| t.is_punct("->")).unwrap_or(false) {
        j += 1;
        let mut pdepth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if pdepth == 0 && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where")) {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                pdepth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                pdepth -= 1;
            }
            ret.push(t.text.clone());
            j += 1;
        }
    }

    // Skip a `where` clause to the body opener.
    while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
        j += 1;
    }

    let body = if toks.get(j).map(|t| t.is_punct("{")).unwrap_or(false) {
        let open = j;
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                depth += 1;
            } else if toks[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        open..(j + 1).min(toks.len())
    } else {
        i..i // body-less signature
    };

    Some(FnItem {
        name,
        is_pub: has_pub_qualifier(toks, i),
        line: toks[i].line,
        ret,
        body,
    })
}

/// Whether the tokens immediately before the `fn` at `i` include `pub`
/// (scanning back over `const` / `unsafe` / `async` / `extern "…"` and
/// visibility-restriction parentheses).
fn has_pub_qualifier(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    let mut budget = 10;
    while j > 0 && budget > 0 {
        let p = &toks[j - 1];
        let qualifier = p.is_ident("const")
            || p.is_ident("unsafe")
            || p.is_ident("async")
            || p.is_ident("extern")
            || p.is_ident("crate")
            || p.is_ident("super")
            || p.is_ident("in")
            || p.is_punct("(")
            || p.is_punct(")")
            || p.kind == TokKind::Str;
        if p.is_ident("pub") {
            return true;
        }
        if !qualifier {
            return false;
        }
        j -= 1;
        budget -= 1;
    }
    false
}

/// Parses the `use` declaration starting at `toks[i]` into `out`;
/// returns the index just past its terminating `;`.
fn parse_use(toks: &[Tok], i: usize, out: &mut Vec<UseDecl>) -> usize {
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
        } else if toks[j].is_punct(";") && depth <= 0 {
            break;
        }
        j += 1;
    }
    let line = toks[i].line;
    let mut prefix = Vec::new();
    expand_use_tree(&toks[i + 1..j.min(toks.len())], line, &mut prefix, out);
    j + 1
}

/// Expands one use-tree token slice, pushing a [`UseDecl`] per leaf.
fn expand_use_tree(toks: &[Tok], line: usize, prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
    let base_len = prefix.len();
    let mut grouped = false;
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_ident("as") {
            k += 2; // alias name does not change what is imported
        } else if t.kind == TokKind::Ident {
            prefix.push(t.text.clone());
            k += 1;
        } else if t.is_punct("*") {
            prefix.push("*".to_string());
            k += 1;
        } else if t.is_punct("{") {
            // Group: split the balanced interior on top-level commas
            // and expand each part against the current prefix.
            let mut depth = 0i32;
            let mut close = k;
            while close < toks.len() {
                if toks[close].is_punct("{") {
                    depth += 1;
                } else if toks[close].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            let inner = &toks[k + 1..close.min(toks.len())];
            let mut start = 0;
            let mut d = 0i32;
            for (idx, it) in inner.iter().enumerate() {
                if it.is_punct("{") {
                    d += 1;
                } else if it.is_punct("}") {
                    d -= 1;
                } else if it.is_punct(",") && d == 0 {
                    expand_use_tree(&inner[start..idx], line, prefix, out);
                    start = idx + 1;
                }
            }
            if start < inner.len() {
                expand_use_tree(&inner[start..], line, prefix, out);
            }
            grouped = true;
            k = close + 1;
        } else {
            k += 1; // `::` and anything else
        }
    }
    if !grouped && prefix.len() > base_len {
        out.push(UseDecl {
            path: prefix.clone(),
            line,
        });
    }
    prefix.truncate(base_len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> FileAst {
        parse(&lex(src).toks)
    }

    #[test]
    fn finds_fns_with_names_visibility_and_returns() {
        let ast = parsed(
            "pub fn a() -> bool { true }\n\
             fn b(x: u8) { let _ = x; }\n\
             pub(crate) fn c<'g>(&'g self) -> MutexGuard<'g, u8> { self.m.lock().unwrap() }\n",
        );
        assert_eq!(ast.fns.len(), 3);
        assert_eq!(ast.fns[0].name, "a");
        assert!(ast.fns[0].is_pub);
        assert_eq!(ast.fns[0].ret, vec!["bool"]);
        assert!(!ast.fns[1].is_pub);
        assert!(ast.fns[1].ret.is_empty());
        assert!(ast.fns[2].is_pub, "pub(crate) counts as pub");
        assert!(ast.fns[2].ret.iter().any(|t| t == "MutexGuard"));
    }

    #[test]
    fn bodies_are_brace_matched_and_nested_fns_found() {
        let src = "fn outer() {\n  fn inner() -> u8 { 7 }\n  inner();\n}\n";
        let ast = parsed(src);
        assert_eq!(ast.fns.len(), 2);
        let outer = &ast.fns[0];
        let inner = &ast.fns[1];
        assert!(outer.body.start < inner.body.start && inner.body.end < outer.body.end);
        // enclosing_fn picks the innermost.
        let mid = inner.body.start + 1;
        assert_eq!(
            ast.enclosing_fn(mid).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let ast = parsed(
            "pub fn m<T: Ord, F>(n: usize, f: F) -> Vec<T> where F: Fn(usize) -> T { Vec::new() }",
        );
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "m");
        assert_eq!(ast.fns[0].ret, vec!["Vec", "<", "T", ">"]);
        assert!(!ast.fns[0].body.is_empty());
    }

    #[test]
    fn trait_signatures_have_empty_bodies() {
        let ast = parsed("trait T { fn f(&self) -> u8; fn g(&self) -> u8 { 1 } }");
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.fns[0].body.is_empty());
        assert!(!ast.fns[1].body.is_empty());
    }

    #[test]
    fn use_groups_expand_to_leaves() {
        let ast = parsed("use std::{thread, time::Instant};\nuse std::sync::Mutex;\n");
        let paths: Vec<String> = ast.uses.iter().map(|u| u.path.join("::")).collect();
        assert_eq!(
            paths,
            vec!["std::thread", "std::time::Instant", "std::sync::Mutex"]
        );
    }

    #[test]
    fn use_aliases_and_globs_keep_the_real_path() {
        let ast = parsed("use std::thread::spawn as sp;\nuse std::env::*;\n");
        let paths: Vec<String> = ast.uses.iter().map(|u| u.path.join("::")).collect();
        assert_eq!(paths, vec!["std::thread::spawn", "std::env::*"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let ast = parsed("pub fn takes(f: fn(usize) -> u8) -> u8 { f(1) }");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "takes");
    }
}
