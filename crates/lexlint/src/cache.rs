//! The incremental lint cache (`.lexlint-cache.json`).
//!
//! A warm run must re-analyze only files whose bytes changed — and
//! produce a byte-identical report to a cold run. The cache therefore
//! stores, per workspace-relative path, the FNV-1a digest of the file's
//! bytes plus the exact findings the rules produced, and three global
//! keys that invalidate everything at once when they drift:
//!
//! * `rules_version` — bumped whenever any rule's behaviour changes,
//! * `config` — digest of `lexlint.toml` (allow entries move findings),
//! * `symbols` — digest of the workspace `pub fn` surface (LX08
//!   verdicts depend on other files' signatures).
//!
//! Digests are stored as 16-hex-digit strings, not JSON numbers: the
//! [`mini_json`](lexcache_runner::mini_json) value model (like JSON
//! itself) carries numbers as `f64`, which silently rounds above 2^53.
//! The file is written through [`lexcache_runner::atomic_write`], so a
//! crashed run leaves the previous cache intact, and a missing or
//! malformed cache simply degrades to a cold run — the cache is never
//! load-bearing for correctness.

use crate::rules::{self, Finding, Suggestion};
use lexcache_runner::mini_json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Bump when any rule's detection logic changes, so stale verdicts are
/// discarded wholesale rather than trusted.
pub const RULES_VERSION: u64 = 3;

const SCHEMA: &str = "lexlint-cache/1";

/// One file's cached verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// FNV-1a digest of the file's bytes at analysis time.
    pub digest: u64,
    /// The findings the full rule set produced for that content.
    pub findings: Vec<Finding>,
}

/// The loaded cache: per-file verdicts keyed by workspace-relative
/// path. Global keys are checked at load; a mismatch yields an empty
/// cache (cold run), never a partial one.
#[derive(Debug, Default)]
pub struct Cache {
    /// Verdicts by workspace-relative path.
    pub files: BTreeMap<String, FileEntry>,
}

impl Cache {
    /// The cached findings for `file`, if its content digest still
    /// matches.
    pub fn lookup(&self, file: &str, digest: u64) -> Option<&[Finding]> {
        self.files
            .get(file)
            .filter(|e| e.digest == digest)
            .map(|e| e.findings.as_slice())
    }
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Loads the cache at `path`, returning an empty cache when the file
/// is missing, malformed, or keyed by a different rules version /
/// config / symbol surface.
pub fn load(path: &Path, config_digest: u64, symbols_digest: u64) -> Cache {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Cache::default();
    };
    let Ok(doc) = mini_json::parse(&text) else {
        return Cache::default();
    };
    let global_ok = doc.get("schema").and_then(Value::as_str) == Some(SCHEMA)
        && doc.get("rules_version").and_then(Value::as_f64) == Some(RULES_VERSION as f64)
        && doc.get("config").and_then(Value::as_str) == Some(hex(config_digest).as_str())
        && doc.get("symbols").and_then(Value::as_str) == Some(hex(symbols_digest).as_str());
    if !global_ok {
        return Cache::default();
    }
    let mut files = BTreeMap::new();
    if let Some(Value::Obj(pairs)) = doc.get("files") {
        for (file, entry) in pairs {
            if let Some(e) = parse_entry(file, entry) {
                files.insert(file.clone(), e);
            }
        }
    }
    Cache { files }
}

fn parse_entry(file: &str, entry: &Value) -> Option<FileEntry> {
    let digest = u64::from_str_radix(entry.get("digest").and_then(Value::as_str)?, 16).ok()?;
    let mut findings = Vec::new();
    for f in entry.get("findings").and_then(Value::as_array)? {
        // `rule_id` interns the rule name back to its canonical
        // &'static str; an unknown rule means a foreign cache.
        let rule = rules::rule_id(f.get("rule").and_then(Value::as_str)?)?;
        let line = f.get("line").and_then(Value::as_f64)? as usize;
        let snippet = f.get("snippet").and_then(Value::as_str)?.to_string();
        let suggestion = match f.get("suggestion") {
            None | Some(Value::Null) => None,
            Some(s) => Some(Suggestion {
                find: s.get("find").and_then(Value::as_str)?.to_string(),
                replace: s.get("replace").and_then(Value::as_str)?.to_string(),
            }),
        };
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line,
            snippet,
            hint: rules::hint_for(rule),
            suggestion,
        });
    }
    Some(FileEntry { digest, findings })
}

/// Serializes and atomically writes the cache. Key order is canonical
/// (BTreeMap iteration), so identical state produces identical bytes.
pub fn save(
    path: &Path,
    config_digest: u64,
    symbols_digest: u64,
    files: &BTreeMap<String, FileEntry>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    out.push_str(&mini_json::quote(SCHEMA));
    out.push_str(&format!(",\"rules_version\":{RULES_VERSION}"));
    out.push_str(",\"config\":");
    out.push_str(&mini_json::quote(&hex(config_digest)));
    out.push_str(",\"symbols\":");
    out.push_str(&mini_json::quote(&hex(symbols_digest)));
    out.push_str(",\"files\":{");
    for (i, (file, e)) in files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&mini_json::quote(file));
        out.push_str(":{\"digest\":");
        out.push_str(&mini_json::quote(&hex(e.digest)));
        out.push_str(",\"findings\":[");
        for (j, f) in e.findings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            out.push_str(&mini_json::quote(f.rule));
            out.push_str(&format!(",\"line\":{}", f.line));
            out.push_str(",\"snippet\":");
            out.push_str(&mini_json::quote(&f.snippet));
            out.push_str(",\"suggestion\":");
            match &f.suggestion {
                None => out.push_str("null"),
                Some(s) => {
                    out.push_str("{\"find\":");
                    out.push_str(&mini_json::quote(&s.find));
                    out.push_str(",\"replace\":");
                    out.push_str(&mini_json::quote(&s.replace));
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out.push('\n');
    lexcache_runner::atomic_write(path, &out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, FileEntry> {
        let mut files = BTreeMap::new();
        files.insert(
            "crates/a/src/lib.rs".to_string(),
            FileEntry {
                digest: 0xdead_beef_dead_beef,
                findings: vec![Finding {
                    rule: "LX03",
                    file: "crates/a/src/lib.rs".to_string(),
                    line: 7,
                    snippet: "let m: HashMap<u8, u8> = HashMap::new();".to_string(),
                    hint: rules::hint_for("LX03"),
                    suggestion: Some(Suggestion {
                        find: "HashMap".to_string(),
                        replace: "BTreeMap".to_string(),
                    }),
                }],
            },
        );
        files.insert(
            "crates/a/src/other.rs".to_string(),
            FileEntry {
                digest: 1,
                findings: Vec::new(),
            },
        );
        files
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lexlint-cache-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrips_entries_digests_and_suggestions() {
        let path = tmp("roundtrip");
        let files = sample();
        save(&path, 11, 22, &files).expect("save");
        let cache = load(&path, 11, 22);
        assert_eq!(cache.files, files, "findings rehydrate exactly");
        let hit = cache.lookup("crates/a/src/lib.rs", 0xdead_beef_dead_beef);
        assert_eq!(hit.map(|f| f.len()), Some(1));
        assert!(
            cache.lookup("crates/a/src/lib.rs", 2).is_none(),
            "digest mismatch means re-analyze"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn global_key_drift_cold_starts() {
        let path = tmp("drift");
        save(&path, 11, 22, &sample()).expect("save");
        assert!(load(&path, 12, 22).files.is_empty(), "config changed");
        assert!(load(&path, 11, 23).files.is_empty(), "symbols changed");
        assert!(!load(&path, 11, 22).files.is_empty(), "same keys hit");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_or_malformed_cache_is_empty_not_fatal() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(load(&path, 1, 2).files.is_empty());
        std::fs::write(&path, "{not json").expect("write");
        assert!(load(&path, 1, 2).files.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn digests_above_f64_precision_survive() {
        // 2^53 + 1 is not representable as f64 — hex strings are.
        let path = tmp("precision");
        let mut files = BTreeMap::new();
        let digest = (1u64 << 53) + 1;
        files.insert(
            "x.rs".to_string(),
            FileEntry {
                digest,
                findings: Vec::new(),
            },
        );
        save(&path, 3, 4, &files).expect("save");
        let cache = load(&path, 3, 4);
        assert_eq!(cache.files.get("x.rs").map(|e| e.digest), Some(digest));
        let _ = std::fs::remove_file(&path);
    }
}
