//! `lexlint` — a from-scratch determinism & numerical-safety linter
//! for this workspace.
//!
//! The paper's regret results are only reproducible if a fixed seed
//! yields a bit-identical episode. Several bug classes silently break
//! that: default-hasher map iteration (order reseeds per process),
//! NaN-swallowing float comparisons, ad-hoc wall-clock reads, hidden
//! `std::env::var` configuration, raw thread spawns, and result files
//! written without the atomic-rename protocol. `lexlint` walks every
//! `crates/*/src/**/*.rs` and `src/**/*.rs` file and enforces twelve
//! machine-checkable invariants — LX01–LX06 are token-local
//! ([`rules`]); LX07–LX12 are symbol-aware ([`xrules`]), built on a
//! lightweight parse layer ([`parse`]) and a workspace symbol table
//! ([`symbols`]) — with a hand-rolled lexer ([`lexer`]), no external
//! parser, in the spirit of the workspace's from-scratch substrates.
//!
//! The engine dogfoods the workspace's own thread pool
//! ([`lexcache_runner::map_indexed`]) to lex and analyze files in
//! parallel, and keeps an incremental cache ([`cache`]) so a warm run
//! re-analyzes only changed files while producing a byte-identical
//! report. Run it as:
//!
//! ```text
//! cargo run -p lexlint -- check [--format text|json|sarif] [--fix]
//! ```
//!
//! Exceptions are vetted through `lexlint.toml` ([`config`]) or inline
//! `// lexlint: allow(LXnn): reason` comments; both require a reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod fix;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod xrules;

pub use config::Config;
pub use report::Format;
pub use rules::Finding;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths of every file lexlint checks:
/// `src/**/*.rs` and `crates/*/src/**/*.rs` under `root`, sorted so
/// output order is deterministic.
pub fn collect_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    // Workspace-relative, sorted.
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| p.strip_prefix(root).map(|r| r.to_path_buf()).unwrap_or(p))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// How the engine runs: worker count for the parallel phases and where
/// (if anywhere) the incremental cache lives.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads for the lex/parse and analyze phases; `0` means
    /// one detected core per worker.
    pub threads: usize,
    /// Path of `.lexlint-cache.json`; `None` disables the cache.
    pub cache_path: Option<PathBuf>,
}

/// What a lint run produced, including cache effectiveness counters.
#[derive(Debug)]
pub struct LintOutcome {
    /// All surviving findings in canonical (file, line, rule) order.
    pub findings: Vec<Finding>,
    /// Number of target files.
    pub total: usize,
    /// Files whose rules actually ran this time.
    pub analyzed: usize,
    /// Files whose verdicts were reused from the cache.
    pub reused: usize,
}

struct ParsedFile {
    rel: String,
    src: String,
    lexed: lexer::Lexed,
    ast: parse::FileAst,
    digest: u64,
}

/// The full engine: parallel lex/parse of every target, workspace
/// symbol table, cache lookup, parallel analysis of the misses, cache
/// write-back.
///
/// Every file is lexed and parsed on every run — the symbol table must
/// see the whole workspace — but rule analysis (the expensive,
/// verdict-producing phase) is skipped for files whose bytes, the
/// config, and the symbol surface are all unchanged. Findings come out
/// in canonical order whether they were computed or reused, so a warm
/// run's report is byte-identical to a cold run's.
pub fn check_workspace_with(
    root: &Path,
    cfg: &Config,
    opts: &EngineOptions,
) -> Result<LintOutcome, String> {
    let targets = collect_targets(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let threads = if opts.threads == 0 {
        lexcache_runner::available_threads()
    } else {
        opts.threads
    };

    // Phase 1: read + lex + parse every target in parallel.
    let parsed: Vec<Result<ParsedFile, String>> =
        lexcache_runner::map_indexed(targets.len(), threads, |i| {
            let rel = &targets[i];
            let abs = root.join(rel);
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            let rel_str = rel
                .to_str()
                .map(|s| s.replace('\\', "/"))
                .unwrap_or_else(|| rel.display().to_string());
            let lexed = lexer::lex(&src);
            let ast = parse::parse(&lexed.toks);
            let digest = lexcache_runner::fnv1a64(src.as_bytes());
            Ok(ParsedFile {
                rel: rel_str,
                src,
                lexed,
                ast,
                digest,
            })
        });
    let mut files = Vec::with_capacity(parsed.len());
    for p in parsed {
        files.push(p?);
    }

    // Phase 2: symbol table over the whole workspace (canonical order —
    // `targets` is sorted), then split cache hits from misses.
    let symbols = symbols::build(files.iter().map(|p| (p.rel.as_str(), &p.ast)));
    let cache = match &opts.cache_path {
        Some(path) => cache::load(path, cfg.digest, symbols.digest),
        None => cache::Cache::default(),
    };
    let misses: Vec<usize> = (0..files.len())
        .filter(|&i| cache.lookup(&files[i].rel, files[i].digest).is_none())
        .collect();

    // Phase 3: analyze the misses in parallel.
    let fresh: Vec<Vec<Finding>> = lexcache_runner::map_indexed(misses.len(), threads, |k| {
        let p = &files[misses[k]];
        let mut found = rules::check_lexed(&p.rel, &p.src, &p.lexed, cfg);
        found.extend(xrules::check_file_x(
            &p.rel, &p.src, &p.lexed, &p.ast, &symbols, cfg,
        ));
        // Canonical per-file order, so cached and fresh verdicts render
        // identically.
        found.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        found
    });
    let fresh_by_index: BTreeMap<usize, Vec<Finding>> = misses.iter().copied().zip(fresh).collect();

    // Phase 4: assemble the report in target order and write the cache
    // back.
    let mut findings = Vec::new();
    let mut entries: BTreeMap<String, cache::FileEntry> = BTreeMap::new();
    for (i, p) in files.iter().enumerate() {
        let file_findings: Vec<Finding> = match fresh_by_index.get(&i) {
            Some(fs) => fs.clone(),
            None => cache
                .lookup(&p.rel, p.digest)
                .map(|fs| fs.to_vec())
                .unwrap_or_default(),
        };
        entries.insert(
            p.rel.clone(),
            cache::FileEntry {
                digest: p.digest,
                findings: file_findings.clone(),
            },
        );
        findings.extend(file_findings);
    }
    if let Some(path) = &opts.cache_path {
        cache::save(path, cfg.digest, symbols.digest, &entries)
            .map_err(|e| format!("writing cache {}: {e}", path.display()))?;
    }
    Ok(LintOutcome {
        findings,
        total: files.len(),
        analyzed: misses.len(),
        reused: files.len() - misses.len(),
    })
}

/// Runs every rule over every target file under `root`, serially and
/// without a cache. Findings are ordered by (file, line, rule). This is
/// the simple entry point tests and tools use; the CLI drives
/// [`check_workspace_with`].
pub fn check_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let opts = EngineOptions {
        threads: 1,
        cache_path: None,
    };
    check_workspace_with(root, cfg, &opts).map(|o| o.findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_workspace_is_clean() {
        // Dogfood: the repo that ships lexlint must pass lexlint — now
        // including the symbol-aware rules LX07–LX12. The test mirrors
        // the CLI so `cargo test` alone catches rule regressions even
        // if the verify script is skipped.
        let root = workspace_root();
        let cfg = config::load(&root.join("lexlint.toml")).expect("config parses");
        let findings = check_workspace(&root, &cfg).expect("walk succeeds");
        let rendered = report::render(&findings, Format::Text, true);
        assert!(findings.is_empty(), "lexlint violations:\n{rendered}");
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let root = workspace_root();
        let cfg = config::load(&root.join("lexlint.toml")).expect("config parses");
        let serial = check_workspace(&root, &cfg).expect("serial");
        let parallel = check_workspace_with(
            &root,
            &cfg,
            &EngineOptions {
                threads: 4,
                cache_path: None,
            },
        )
        .expect("parallel");
        assert_eq!(
            serial, parallel.findings,
            "worker count must never change the report"
        );
        assert_eq!(parallel.analyzed, parallel.total);
        assert_eq!(parallel.reused, 0);
    }

    #[test]
    fn collect_targets_is_sorted_and_rs_only() {
        let root = workspace_root();
        let targets = collect_targets(&root).expect("walk succeeds");
        assert!(!targets.is_empty());
        let mut sorted = targets.clone();
        sorted.sort();
        assert_eq!(targets, sorted, "target order must be deterministic");
        assert!(targets
            .iter()
            .all(|p| p.extension().map(|e| e == "rs").unwrap_or(false)));
        // Fixture files live under tests/, never under src/, so the
        // workspace scan must not pick them up.
        assert!(targets
            .iter()
            .all(|p| !p.to_string_lossy().contains("fixtures")));
    }

    fn workspace_root() -> PathBuf {
        // crates/lexlint → workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."))
    }
}
