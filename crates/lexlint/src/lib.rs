//! `lexlint` — a from-scratch determinism & numerical-safety linter
//! for this workspace.
//!
//! The paper's regret results are only reproducible if a fixed seed
//! yields a bit-identical episode. Two bug classes silently break that:
//! default-hasher map iteration (order reseeds per process) and
//! NaN-swallowing float comparisons (`partial_cmp(..).unwrap_or(Equal)`
//! turns a NaN into "everything is equal" instead of failing loudly).
//! `lexlint` walks every `crates/*/src/**/*.rs` and `src/**/*.rs` file
//! and enforces six machine-checkable invariants ([`rules`]) with a
//! hand-rolled lexer ([`lexer`]) — no external parser, in the spirit of
//! the workspace's from-scratch substrates.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p lexlint -- check [--format json] [--fix-hints] [--root DIR]
//! ```
//!
//! Exceptions are vetted through `lexlint.toml` ([`config`]) or inline
//! `// lexlint: allow(LXnn): reason` comments; both require a reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::Config;
pub use report::Format;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths of every file lexlint checks:
/// `src/**/*.rs` and `crates/*/src/**/*.rs` under `root`, sorted so
/// output order is deterministic.
pub fn collect_targets(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    // Workspace-relative, sorted.
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| p.strip_prefix(root).map(|r| r.to_path_buf()).unwrap_or(p))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over every target file under `root`. Findings are
/// ordered by (file, line, rule) — the collection order is already
/// deterministic.
pub fn check_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let targets = collect_targets(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for rel in &targets {
        let abs = root.join(rel);
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.display().to_string());
        findings.extend(rules::check_file(&rel_str, &src, cfg));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_workspace_is_clean() {
        // Dogfood: the repo that ships lexlint must pass lexlint. The
        // test mirrors the CLI so `cargo test` alone catches rule
        // regressions even if the verify script is skipped.
        let root = workspace_root();
        let cfg = config::load(&root.join("lexlint.toml")).expect("config parses");
        let findings = check_workspace(&root, &cfg).expect("walk succeeds");
        let rendered = report::render(&findings, Format::Text, true);
        assert!(findings.is_empty(), "lexlint violations:\n{rendered}");
    }

    #[test]
    fn collect_targets_is_sorted_and_rs_only() {
        let root = workspace_root();
        let targets = collect_targets(&root).expect("walk succeeds");
        assert!(!targets.is_empty());
        let mut sorted = targets.clone();
        sorted.sort();
        assert_eq!(targets, sorted, "target order must be deterministic");
        assert!(targets
            .iter()
            .all(|p| p.extension().map(|e| e == "rs").unwrap_or(false)));
        // Fixture files live under tests/, never under src/, so the
        // workspace scan must not pick them up.
        assert!(targets
            .iter()
            .all(|p| !p.to_string_lossy().contains("fixtures")));
    }

    fn workspace_root() -> PathBuf {
        // crates/lexlint → workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."))
    }
}
