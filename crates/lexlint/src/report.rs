//! Rendering findings as human-readable text or line-delimited JSON.

use crate::rules::Finding;

/// Output format of the `check` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: [RULE] snippet` lines plus a summary.
    Text,
    /// One JSON object per finding: `{"rule", "file", "line", "snippet"}`.
    Json,
}

/// Renders findings to a string in the requested format.
pub fn render(findings: &[Finding], format: Format, fix_hints: bool) -> String {
    match format {
        Format::Text => render_text(findings, fix_hints),
        Format::Json => render_json(findings),
    }
}

fn render_text(findings: &[Finding], fix_hints: bool) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.snippet
        ));
        if fix_hints {
            out.push_str(&format!("    fix: {}\n", f.hint));
        }
    }
    if findings.is_empty() {
        out.push_str("lexlint: clean — no violations\n");
    } else {
        let mut by_rule: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for f in findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        out.push_str(&format!(
            "lexlint: {} violation(s) ({})\n",
            findings.len(),
            breakdown.join(", ")
        ));
    }
    out
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\"}}\n",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.snippet)
        ));
    }
    out
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one() -> Vec<Finding> {
        vec![Finding {
            rule: "LX06",
            file: "crates/a/src/lib.rs".to_string(),
            line: 3,
            snippet: "if x == 0.0 { \"quoted\" }".to_string(),
            hint: "use a tolerance",
        }]
    }

    #[test]
    fn text_contains_location_and_summary() {
        let s = render(&one(), Format::Text, false);
        assert!(s.contains("crates/a/src/lib.rs:3: [LX06]"));
        assert!(s.contains("1 violation(s) (LX06: 1)"));
        assert!(!s.contains("fix:"));
    }

    #[test]
    fn fix_hints_are_optional() {
        let s = render(&one(), Format::Text, true);
        assert!(s.contains("fix: use a tolerance"));
    }

    #[test]
    fn json_is_one_record_per_line_with_escaping() {
        let s = render(&one(), Format::Json, false);
        let line = s.lines().next().unwrap_or("");
        assert!(line.starts_with("{\"rule\":\"LX06\""));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"line\":3"));
    }

    #[test]
    fn clean_run_says_so() {
        let s = render(&[], Format::Text, false);
        assert!(s.contains("clean"));
        assert!(render(&[], Format::Json, false).is_empty());
    }
}
