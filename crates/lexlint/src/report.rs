//! Rendering findings as human-readable text, line-delimited JSON, or
//! a minimal SARIF 2.1.0 document for code-scanning upload.

use crate::rules::{self, Finding};

/// Output format of the `check` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: severity [RULE] snippet` lines plus a summary.
    Text,
    /// One JSON object per finding:
    /// `{"rule", "severity", "file", "line", "snippet", "hint", "suggestion"}`.
    Json,
    /// A single SARIF 2.1.0 document (one run, all twelve rules
    /// declared, one result per finding).
    Sarif,
}

/// Renders findings to a string in the requested format.
pub fn render(findings: &[Finding], format: Format, fix_hints: bool) -> String {
    match format {
        Format::Text => render_text(findings, fix_hints),
        Format::Json => render_json(findings),
        Format::Sarif => render_sarif(findings),
    }
}

fn render_text(findings: &[Finding], fix_hints: bool) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n",
            f.file,
            f.line,
            rules::severity(f.rule),
            f.rule,
            f.snippet
        ));
        if fix_hints {
            out.push_str(&format!("    fix: {}\n", f.hint));
            if let Some(s) = &f.suggestion {
                out.push_str(&format!("    autofix: `{}` -> `{}`\n", s.find, s.replace));
            }
        }
    }
    if findings.is_empty() {
        out.push_str("lexlint: clean — no violations\n");
    } else {
        let mut by_rule: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for f in findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        out.push_str(&format!(
            "lexlint: {} violation(s) ({})\n",
            findings.len(),
            breakdown.join(", ")
        ));
    }
    out
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let suggestion = match &f.suggestion {
            None => "null".to_string(),
            Some(s) => format!(
                "{{\"find\":\"{}\",\"replace\":\"{}\"}}",
                escape(&s.find),
                escape(&s.replace)
            ),
        };
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"hint\":\"{}\",\"suggestion\":{}}}\n",
            escape(f.rule),
            rules::severity(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.snippet),
            escape(f.hint),
            suggestion
        ));
    }
    out
}

fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":\"2.1.0\",");
    out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"lexlint\",\"rules\":[");
    for (i, rule) in rules::RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            escape(rule),
            escape(rules::hint_for(rule))
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // SARIF levels are `error` / `warning` / `note`; ours map 1:1.
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            escape(f.rule),
            rules::severity(f.rule),
            escape(&format!("{} — {}", f.snippet, f.hint)),
            escape(&f.file),
            f.line
        ));
    }
    out.push_str("]}]}\n");
    out
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Suggestion;

    fn one() -> Vec<Finding> {
        vec![Finding {
            rule: "LX06",
            file: "crates/a/src/lib.rs".to_string(),
            line: 3,
            snippet: "if x == 0.0 { \"quoted\" }".to_string(),
            hint: "use a tolerance",
            suggestion: None,
        }]
    }

    #[test]
    fn text_contains_location_severity_and_summary() {
        let s = render(&one(), Format::Text, false);
        assert!(s.contains("crates/a/src/lib.rs:3: error [LX06]"));
        assert!(s.contains("1 violation(s) (LX06: 1)"));
        assert!(!s.contains("fix:"));
    }

    #[test]
    fn fix_hints_are_optional_and_autofixes_shown() {
        let s = render(&one(), Format::Text, true);
        assert!(s.contains("fix: use a tolerance"));
        assert!(!s.contains("autofix:"), "no suggestion attached");

        let mut with_sug = one();
        with_sug[0].suggestion = Some(Suggestion {
            find: "HashMap".to_string(),
            replace: "BTreeMap".to_string(),
        });
        let s = render(&with_sug, Format::Text, true);
        assert!(s.contains("autofix: `HashMap` -> `BTreeMap`"));
    }

    #[test]
    fn json_is_one_record_per_line_with_escaping() {
        let s = render(&one(), Format::Json, false);
        let line = s.lines().next().unwrap_or("");
        assert!(line.starts_with("{\"rule\":\"LX06\",\"severity\":\"error\""));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"line\":3"));
        assert!(line.contains("\"hint\":\"use a tolerance\""));
        assert!(line.ends_with("\"suggestion\":null}"));
    }

    #[test]
    fn json_serializes_suggestions_inline() {
        let mut fs = one();
        fs[0].suggestion = Some(Suggestion {
            find: "a\"b".to_string(),
            replace: "c".to_string(),
        });
        let s = render(&fs, Format::Json, false);
        assert!(s.contains("\"suggestion\":{\"find\":\"a\\\"b\",\"replace\":\"c\"}"));
    }

    #[test]
    fn sarif_declares_all_rules_and_locates_results() {
        let s = render(&one(), Format::Sarif, false);
        assert!(s.contains("\"version\":\"2.1.0\""));
        for rule in rules::RULE_IDS {
            assert!(s.contains(&format!("\"id\":\"{rule}\"")), "{rule} declared");
        }
        assert!(s.contains("\"ruleId\":\"LX06\""));
        assert!(s.contains("\"uri\":\"crates/a/src/lib.rs\""));
        assert!(s.contains("\"startLine\":3"));
        // A warning-severity rule maps to SARIF level `warning`.
        let warn = vec![Finding {
            rule: "LX11",
            file: "x.rs".to_string(),
            line: 1,
            snippet: "s".to_string(),
            hint: "h",
            suggestion: None,
        }];
        assert!(render(&warn, Format::Sarif, false).contains("\"level\":\"warning\""));
    }

    #[test]
    fn clean_run_says_so() {
        let s = render(&[], Format::Text, false);
        assert!(s.contains("clean"));
        assert!(render(&[], Format::Json, false).is_empty());
        let sarif = render(&[], Format::Sarif, false);
        assert!(
            sarif.contains("\"results\":[]"),
            "SARIF is always a document"
        );
    }
}
