//! A from-scratch lexer for the subset of Rust surface syntax the rule
//! engine needs: identifiers, literals, punctuation and comments, each
//! tagged with its 1-based source line.
//!
//! It is deliberately *not* a full Rust lexer — no token trees, no
//! macro expansion — but it gets the hard cases right that a regex
//! scanner gets wrong: nested block comments, raw strings, byte
//! strings, char literals vs. lifetimes, and float literals vs. range
//! expressions. Those are exactly the cases that make `grep`-based
//! lint rules misfire inside string fixtures and doc comments.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// Lifetime such as `'a` (distinct from char literals).
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Punctuation; multi-character operators such as `==` and `!=`
    /// arrive as a single token.
    Punct,
}

/// One code token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment with its starting line. Doc comments are included; the
/// rules that look for `// lexlint: …` markers scan these.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body including the `//` / `/*` introducer.
    pub text: String,
}

/// The lexed form of one source file: code tokens and comments,
/// separated so rules can pattern-match on clean token adjacency while
/// still consulting comments for suppression markers.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// are emitted as single-character punctuation so the rules always see
/// the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (incl. `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comments, which nest in Rust.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Raw strings r"…" / r#"…"# and their byte variants.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let (tok, nl) = lex_raw_string(&b, i, line);
            i += tok.text.chars().count();
            out.toks.push(tok);
            line += nl;
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = i;
            let start_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                if b[i] == '\\' {
                    if b.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' || (c == 'b' && i + 1 < n && b[i + 1] == '\'') {
            let start = i;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            if j < n && b[j] == '\\' {
                // Escaped char literal: consume escape + closing quote.
                j += 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                i = (j + 1).min(n);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // Non-identifier single char followed by a closing quote:
            // a char literal such as `'"'`, `' '` or `'('`. (Identifier
            // chars are disambiguated against lifetimes below.)
            if j + 1 < n
                && b[j] != '\''
                && !(b[j].is_alphanumeric() || b[j] == '_')
                && b[j + 1] == '\''
            {
                i = j + 2;
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // Scan an identifier run after the quote.
            let mut k = j;
            while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                k += 1;
            }
            if k < n && b[k] == '\'' && k > j {
                // 'a' — char literal.
                i = k + 1;
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // 'ident — lifetime (or a stray quote, lexed the same).
                i = k.max(j);
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
                if i == start {
                    i += 1; // lone quote: never stall
                }
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (tok, len) = lex_number(&b, i, line);
            i += len;
            out.toks.push(tok);
            continue;
        }
        // Multi-character operators, longest match first.
        let mut matched = false;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= n && b[i..i + oc.len()] == oc[..] {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Whether position `i` starts a raw (possibly byte) string: `r"`,
/// `r#`, `br"`, `br#`.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= n || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && b[j] == '"'
}

/// Lexes a raw string starting at `i`; returns the token and how many
/// newlines it spans.
fn lex_raw_string(b: &[char], i: usize, line: usize) -> (Tok, usize) {
    let n = b.len();
    let start = i;
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0;
    while j < n {
        if b[j] == '\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if b[j] == '"' {
            // Need `hashes` trailing #s to close.
            let mut k = j + 1;
            let mut seen = 0;
            while k < n && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                j = k;
                break;
            }
        }
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Str,
            text: b[start..j.min(n)].iter().collect(),
            line,
        },
        newlines,
    )
}

/// Lexes a number starting at `i`; distinguishes ints from floats,
/// treating `0..n` as int + range rather than a malformed float.
fn lex_number(b: &[char], i: usize, line: usize) -> (Tok, usize) {
    let n = b.len();
    let start = i;
    let mut j = i;
    let mut is_float = false;
    // Hex/octal/binary prefixes are always ints.
    if b[j] == '0' && j + 1 < n && matches!(b[j + 1], 'x' | 'o' | 'b') {
        j += 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Int,
                text: b[start..j].iter().collect(),
                line,
            },
            j - start,
        );
    }
    while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
        j += 1;
    }
    // Fractional part — but not `..` (range) and not `.method()`.
    if j < n && b[j] == '.' {
        let next = b.get(j + 1).copied();
        let is_range = next == Some('.');
        let is_method = next.map(|c| c.is_alphabetic() || c == '_').unwrap_or(false);
        if !is_range && !is_method {
            is_float = true;
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && matches!(b[j], 'e' | 'E') {
        let mut k = j + 1;
        if k < n && matches!(b[k], '+' | '-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64` marks a float, `u32` an int).
    if j < n && (b[j].is_alphabetic() || b[j] == '_') {
        let sstart = j;
        while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        let suffix: String = b[sstart..j].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
    }
    (
        Tok {
            kind: if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text: b[start..j].iter().collect(),
            line,
        },
        j - start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn distinguishes_lifetimes_from_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(ks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokKind::Char, "'x'".into())));
    }

    #[test]
    fn punctuation_char_literals_do_not_open_strings() {
        // `'"'` once desynced the lexer into treating the rest of the
        // file as a string; keep a regression test for each shape.
        let ks = kinds("match c { '\"' => 1, ' ' => 2, '(' => 3, _ => x.unwrap() }");
        assert!(ks.contains(&(TokKind::Char, "'\"'".into())));
        assert!(ks.contains(&(TokKind::Char, "' '".into())));
        assert!(ks.contains(&(TokKind::Char, "'('".into())));
        assert!(ks.contains(&(TokKind::Ident, "unwrap".into())));
    }

    #[test]
    fn range_is_not_a_float() {
        let ks = kinds("for i in 0..10 { let x = 1.5; }");
        assert!(ks.contains(&(TokKind::Int, "0".into())));
        assert!(ks.contains(&(TokKind::Punct, "..".into())));
        assert!(ks.contains(&(TokKind::Float, "1.5".into())));
    }

    #[test]
    fn int_method_call_is_not_a_float() {
        let ks = kinds("let x = 1.max(2);");
        assert!(ks.contains(&(TokKind::Int, "1".into())));
        assert!(ks.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn trailing_dot_float() {
        let ks = kinds("let x = 1. + 2.0f64;");
        assert!(ks.contains(&(TokKind::Float, "1.".into())));
        assert!(ks.contains(&(TokKind::Float, "2.0f64".into())));
    }

    #[test]
    fn comments_do_not_produce_code_tokens() {
        let lexed = lex("// has unwrap() inside\nlet x = 1; /* expect( */");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex(r####"let s = r#"has "quotes" and unwrap()"#; let y = 2;"####);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn equality_operators_are_single_tokens() {
        let ks = kinds("a == b != c <= d");
        assert!(ks.contains(&(TokKind::Punct, "==".into())));
        assert!(ks.contains(&(TokKind::Punct, "!=".into())));
        assert!(ks.contains(&(TokKind::Punct, "<=".into())));
    }

    #[test]
    fn lines_are_tracked_across_strings() {
        let lexed = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
    }
}
