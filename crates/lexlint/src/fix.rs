//! Applying machine-applicable suggestions (`--fix`).
//!
//! Only findings that carry a [`Suggestion`](crate::rules::Suggestion)
//! are touched — a suggestion is a literal find/replace confined to the
//! finding's own line, attached only where the rewrite is mechanically
//! safe (e.g. LX03's `HashMap` → `BTreeMap`, LX07's fully-qualified
//! `Instant::now()` → `Stopwatch::start()`). Everything else stays a
//! human decision. Files are rewritten through
//! [`lexcache_runner::atomic_write`] so an interrupted fix pass never
//! leaves a half-written source file.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// The outcome of a fix pass.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FixOutcome {
    /// Number of suggestions actually applied.
    pub applied: usize,
    /// Findings that carried a suggestion whose `find` text was no
    /// longer present on the line (source drifted since analysis).
    pub stale: usize,
}

/// Applies every suggestion in `findings` to the files under `root`.
/// Edits are grouped per file and applied bottom-up within it (line
/// numbers stay valid because suggestions never add or remove lines,
/// but bottom-up keeps the order canonical when lines repeat).
pub fn apply(root: &Path, findings: &[Finding]) -> Result<FixOutcome, String> {
    let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.suggestion.is_some()) {
        by_file.entry(f.file.as_str()).or_default().push(f);
    }
    let mut outcome = FixOutcome::default();
    for (file, mut edits) in by_file {
        let abs = root.join(file);
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        // Preserve the original line terminators by splitting inclusively.
        let mut lines: Vec<String> = split_keep_newlines(&src);
        edits.sort_by(|a, b| b.line.cmp(&a.line));
        for f in edits {
            let Some(s) = &f.suggestion else { continue };
            match lines.get_mut(f.line.saturating_sub(1)) {
                Some(line) if line.contains(&s.find) => {
                    *line = line.replacen(&s.find, &s.replace, 1);
                    outcome.applied += 1;
                }
                _ => outcome.stale += 1,
            }
        }
        let fixed: String = lines.concat();
        if fixed != src {
            lexcache_runner::atomic_write(&abs, &fixed)
                .map_err(|e| format!("writing {}: {e}", abs.display()))?;
        }
    }
    Ok(outcome)
}

/// Number of findings that carry a machine-applicable suggestion —
/// what `--fix` would change and what `--fix-check` fails on.
pub fn applicable(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.suggestion.is_some()).count()
}

fn split_keep_newlines(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = src;
    while !rest.is_empty() {
        match rest.find('\n') {
            Some(i) => {
                out.push(rest[..=i].to_string());
                rest = &rest[i + 1..];
            }
            None => {
                out.push(rest.to_string());
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Suggestion;

    fn finding(file: &str, line: usize, find: &str, replace: &str) -> Finding {
        Finding {
            rule: "LX03",
            file: file.to_string(),
            line,
            snippet: String::new(),
            hint: "",
            suggestion: Some(Suggestion {
                find: find.to_string(),
                replace: replace.to_string(),
            }),
        }
    }

    #[test]
    fn applies_suggestions_in_place_and_counts_stale() {
        let root = std::env::temp_dir().join(format!("lexlint-fix-{}", std::process::id()));
        std::fs::create_dir_all(&root).expect("mkdir");
        let rel = "lib.rs";
        std::fs::write(
            root.join(rel),
            "use std::collections::HashMap;\nlet m = HashMap::new();\n",
        )
        .expect("seed");
        let findings = vec![
            finding(rel, 1, "HashMap", "BTreeMap"),
            finding(rel, 2, "HashMap", "BTreeMap"),
            finding(rel, 2, "HashSet", "BTreeSet"), // not on the line → stale
        ];
        let outcome = apply(&root, &findings).expect("apply");
        assert_eq!(
            outcome,
            FixOutcome {
                applied: 2,
                stale: 1
            }
        );
        let fixed = std::fs::read_to_string(root.join(rel)).expect("read");
        assert_eq!(
            fixed,
            "use std::collections::BTreeMap;\nlet m = BTreeMap::new();\n"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn findings_without_suggestions_touch_nothing() {
        let root = std::env::temp_dir().join(format!("lexlint-fix2-{}", std::process::id()));
        std::fs::create_dir_all(&root).expect("mkdir");
        std::fs::write(root.join("a.rs"), "fn main() {}\n").expect("seed");
        let mut f = finding("a.rs", 1, "x", "y");
        f.suggestion = None;
        let outcome = apply(&root, &[f]).expect("apply");
        assert_eq!(outcome, FixOutcome::default());
        assert_eq!(applicable(&[]), 0);
        let back = std::fs::read_to_string(root.join("a.rs")).expect("read");
        assert_eq!(back, "fn main() {}\n");
        let _ = std::fs::remove_dir_all(&root);
    }
}
