//! The symbol-aware rules LX07–LX12, built on the parse layer
//! ([`crate::parse`]) and the workspace symbol table
//! ([`crate::symbols`]).
//!
//! | rule | invariant |
//! |------|-----------|
//! | LX07 | no `Instant::now()` / `SystemTime` outside the allowlisted clock boundary — all timing through `obs::Stopwatch` |
//! | LX08 | lock discipline: no second `MutexGuard` acquired, and no `Condvar::wait` on a foreign guard, while another guard is live in the same scope |
//! | LX09 | no raw `std::thread::spawn` outside the pool crate — all parallelism through the scoped pool |
//! | LX10 | no `std::env::var` outside the audited `bench::cli` gateway — hidden config breaks reproducibility |
//! | LX11 | an `Ordering::Relaxed` load that feeds a branch carries a `// lexlint: why` justification |
//! | LX12 | `File::create` / `fs::write` / `BufWriter::new` / `JsonlSink::new` targeting `results/` routes through `atomic_write` (taint-tracked through local `let` bindings) |
//!
//! LX08 is where the symbol table earns its keep: a call to any
//! workspace `pub fn` whose return type mentions `MutexGuard` (e.g.
//! `bench::sweep::bin_state()`) counts as acquiring a lock, exactly
//! like a literal `.lock()`. LX11 uses the parse layer the same way:
//! a Relaxed load in a `-> bool` function is branch-feeding even when
//! the `if` lives at the (unseen) call site.
//!
//! Suppression works as for LX01–LX06: inline
//! `// lexlint: allow(LXnn): reason`, `[[allow]]` entries, plus
//! per-rule `allow_paths` prefixes in `lexlint.toml` for the files
//! that *implement* the sanctioned abstraction.

use crate::config::Config;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parse::FileAst;
use crate::rules::{self, Finding, Suggestion};
use crate::symbols::SymbolTable;
use std::collections::BTreeSet;

/// Checks one parsed file against LX07–LX12; returns surviving
/// findings (inline, config and path suppressions already applied).
pub fn check_file_x(
    file: &str,
    src: &str,
    lexed: &Lexed,
    ast: &FileAst,
    symbols: &SymbolTable,
    cfg: &Config,
) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let toks = &lexed.toks;
    let test_regions = rules::test_mod_regions(toks);
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: usize, sug: Option<Suggestion>| {
        let snippet = lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        raw.push(Finding {
            rule,
            file: file.to_string(),
            line,
            snippet,
            hint: rules::hint_for(rule),
            suggestion: sug,
        });
    };

    let lx07 = !cfg.rule_path_allowed("LX07", file);
    let lx08 = !cfg.rule_path_allowed("LX08", file);
    let lx09 = !cfg.rule_path_allowed("LX09", file);
    let lx10 = !cfg.rule_path_allowed("LX10", file);
    let lx12 = !cfg.rule_path_allowed("LX12", file);

    // ---- import-level bans (use-resolution) --------------------------
    for u in &ast.uses {
        if in_test(u.line) {
            continue;
        }
        let p: Vec<&str> = u.path.iter().map(String::as_str).collect();
        if lx07 && (p.ends_with(&["time", "Instant"]) || p.contains(&"SystemTime")) {
            push("LX07", u.line, None);
        }
        if lx09 && p.ends_with(&["thread", "spawn"]) {
            push("LX09", u.line, None);
        }
        if lx10 && (p.ends_with(&["env", "var"]) || p.ends_with(&["env", "var_os"])) {
            push("LX10", u.line, None);
        }
    }

    // ---- token-level scans (LX07 / LX09 / LX10 / LX11) ---------------
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        if lx07 {
            if t.text == "Instant" && path_call(toks, i, "now") && !rules::prev_is_dot(toks, i) {
                let sug = lines
                    .get(t.line.saturating_sub(1))
                    .filter(|l| l.contains("std::time::Instant::now()"))
                    .map(|_| Suggestion {
                        find: "std::time::Instant::now()".to_string(),
                        replace: "lexcache_runner::clock::Stopwatch::start()".to_string(),
                    });
                push("LX07", t.line, sug);
            }
            if t.text == "SystemTime" {
                push("LX07", t.line, None);
            }
        }
        if lx09 && t.text == "thread" && path_call(toks, i, "spawn") && !rules::prev_is_dot(toks, i)
        {
            push("LX09", t.line, None);
        }
        if lx10
            && t.text == "env"
            && (path_call(toks, i, "var") || path_call(toks, i, "var_os"))
            && !rules::prev_is_dot(toks, i)
        {
            push("LX10", t.line, None);
        }
        if t.text == "load" && rules::prev_is_dot(toks, i) && rules::next_is(toks, i, "(") {
            if relaxed_args(toks, i + 1)
                && branch_feeding(toks, i, ast)
                && !rules::has_why_comment(&lexed.comments, t.line)
            {
                push("LX11", t.line, None);
            }
        }
    }

    // ---- per-function scans (LX08 / LX12) ----------------------------
    let local_guards: BTreeSet<&str> = ast
        .fns
        .iter()
        .filter(|f| f.ret.iter().any(|r| r == "MutexGuard"))
        .map(|f| f.name.as_str())
        .collect();

    for f in &ast.fns {
        if f.body.is_empty() || in_test(f.line) {
            continue;
        }
        // Skip bodies of fns nested inside this one — they are scanned
        // as their own scopes.
        let nested: Vec<std::ops::Range<usize>> = ast
            .fns
            .iter()
            .filter(|g| g.body.start > f.body.start && g.body.end < f.body.end)
            .map(|g| g.body.clone())
            .collect();
        if lx08 {
            lock_discipline(
                toks,
                f.body.clone(),
                &nested,
                &local_guards,
                symbols,
                &mut push,
            );
        }
        if lx12 {
            results_write_sites(toks, f.body.clone(), &nested, &mut push);
        }
    }

    raw.into_iter()
        .filter(|f| !rules::inline_suppressed(&lexed.comments, f))
        .filter(|f| !cfg.is_allowed(f.rule, &f.file, &f.snippet))
        .collect()
}

/// Whether `toks[i]` is followed by `:: name (` — a path call such as
/// `Instant::now(` / `thread::spawn(` / `env::var(`.
fn path_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
        && toks.get(i + 2).map(|t| t.is_ident(name)).unwrap_or(false)
        && toks.get(i + 3).map(|t| t.is_punct("(")).unwrap_or(false)
}

/// Whether the balanced argument list opening at `toks[open]` (`(`)
/// mentions the ident `Relaxed`.
fn relaxed_args(toks: &[Tok], open: usize) -> bool {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct("(") {
            depth += 1;
        } else if toks[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if toks[k].is_ident("Relaxed") {
            return true;
        }
        k += 1;
    }
    false
}

/// Whether the `.load(` at `toks[i]` feeds a branch: an `if` / `while`
/// / `match` head earlier in the same statement, or an enclosing
/// function that returns `bool` (the branch then lives at the call
/// site).
fn branch_feeding(toks: &[Tok], i: usize, ast: &FileAst) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &toks[j - 1];
        if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
            break;
        }
        if p.is_ident("if") || p.is_ident("while") || p.is_ident("match") {
            return true;
        }
        j -= 1;
    }
    ast.enclosing_fn(i)
        .map(|f| f.ret.iter().any(|r| r == "bool"))
        .unwrap_or(false)
}

/// LX08 walker: tracks live `MutexGuard` bindings through one function
/// body and flags (a) an acquisition while another guard is live, and
/// (b) a `Condvar::wait` / `wait_timeout` whose consumed guard leaves
/// another guard held (waiting on one's *own* single guard is the
/// sanctioned condvar pattern).
fn lock_discipline(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    nested: &[std::ops::Range<usize>],
    local_guards: &BTreeSet<&str>,
    symbols: &SymbolTable,
    push: &mut impl FnMut(&'static str, usize, Option<Suggestion>),
) {
    let mut depth = 0i32;
    let mut live: Vec<(String, i32)> = Vec::new();
    // Pending `let [mut] name` whose initializer we are inside.
    let mut pending: Option<(String, i32)> = None;

    let mut i = body.start + 1;
    let end = body.end.saturating_sub(1);
    while i < end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            live.retain(|&(_, d)| d <= depth);
        } else if t.is_punct(";") {
            pending = None;
        } else if t.is_ident("let") {
            // `let [mut] name` followed by `:` or `=` names a binding.
            let mut k = i + 1;
            if toks.get(k).map(|x| x.is_ident("mut")).unwrap_or(false) {
                k += 1;
            }
            let name = toks.get(k).filter(|x| x.kind == TokKind::Ident);
            let shaped = toks
                .get(k + 1)
                .map(|x| x.is_punct(":") || x.is_punct("="))
                .unwrap_or(false);
            if let (Some(name), true) = (name, shaped) {
                pending = Some((name.text.clone(), depth));
            }
        } else if t.is_ident("drop") && rules::next_is(toks, i, "(") {
            if let Some(name) = toks.get(i + 2).filter(|x| x.kind == TokKind::Ident) {
                live.retain(|(n, _)| n != &name.text);
            }
        } else if (t.is_ident("wait") || t.is_ident("wait_timeout"))
            && rules::prev_is_dot(toks, i)
            && rules::next_is(toks, i, "(")
        {
            // First ident inside the args is the consumed guard.
            let consumed = toks
                .get(i + 2)
                .filter(|x| x.kind == TokKind::Ident)
                .map(|x| x.text.clone());
            let consumed_live = consumed
                .as_ref()
                .map(|c| live.iter().any(|(n, _)| n == c))
                .unwrap_or(false);
            if consumed_live {
                if live.len() > 1 {
                    push("LX08", t.line, None);
                }
                if let Some(c) = &consumed {
                    live.retain(|(n, _)| n != c);
                }
            } else if !live.is_empty() {
                push("LX08", t.line, None);
            }
        } else {
            let acquires = (t.is_ident("lock")
                && rules::prev_is_dot(toks, i)
                && rules::next_is(toks, i, "("))
                || (t.kind == TokKind::Ident
                    && rules::next_is(toks, i, "(")
                    && !preceded_by_fn_kw(toks, i)
                    && (local_guards.contains(t.text.as_str()) || symbols.acquires_guard(&t.text)));
            if acquires {
                if !live.is_empty() {
                    push("LX08", t.line, None);
                }
                if let Some((name, d)) = pending.take() {
                    live.push((name, d));
                }
            }
        }
        i += 1;
    }
}

/// Whether `toks[i]` is the name in a `fn name(` definition (so guard-
/// returning fns do not flag their own declaration).
fn preceded_by_fn_kw(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_ident("fn")
}

/// LX12 walker: flags `File::create(…)` / `fs::write(…)` — and the
/// buffered/sink wrappers `BufWriter::new(…)` / `JsonlSink::new(…)`
/// that hide the same unbuffered write — whose argument mentions
/// `results`: directly as a string literal, via a `results_dir()`
/// call, or transitively through tainted `let` bindings
/// (`let tmp = format!("{path}.tmp")` where `path` came from
/// `results_dir()`).
fn results_write_sites(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    nested: &[std::ops::Range<usize>],
    push: &mut impl FnMut(&'static str, usize, Option<Suggestion>),
) {
    // Pass 1: forward taint through let bindings.
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut i = body.start + 1;
    let end = body.end.saturating_sub(1);
    while i < end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).map(|x| x.is_ident("mut")).unwrap_or(false) {
                k += 1;
            }
            if let Some(name) = toks.get(k).filter(|x| x.kind == TokKind::Ident) {
                // Initializer tokens up to the statement's `;`.
                let mut j = k + 1;
                let mut dirty = false;
                while j < end && !toks[j].is_punct(";") {
                    dirty = dirty || mentions_results(&toks[j], &tainted);
                    j += 1;
                }
                if dirty {
                    tainted.insert(name.text.clone());
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: sinks.
    let mut i = body.start + 1;
    while i < end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        let sink = (t.is_ident("File") && path_call(toks, i, "create"))
            || (t.is_ident("fs") && path_call(toks, i, "write"))
            || (t.is_ident("BufWriter") && path_call(toks, i, "new"))
            || (t.is_ident("JsonlSink") && path_call(toks, i, "new"));
        if sink {
            // Balanced argument list opens at i + 3.
            let mut depth = 0i32;
            let mut j = i + 3;
            let mut hits = false;
            while j < toks.len() {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    hits = hits || mentions_results(&toks[j], &tainted);
                }
                j += 1;
            }
            if hits {
                push("LX12", toks[i + 2].line, None);
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Whether one token carries `results`-taint: the `results_dir`
/// helper, a string literal mentioning `results`, an already tainted
/// binding — as a bare ident or implicitly captured in a format
/// string (`format!("{path}.tmp")`).
fn mentions_results(t: &Tok, tainted: &BTreeSet<String>) -> bool {
    match t.kind {
        TokKind::Ident => t.text == "results_dir" || tainted.contains(&t.text),
        TokKind::Str => {
            t.text.contains("results")
                || tainted.iter().any(|n| {
                    t.text.contains(&format!("{{{n}}}")) || t.text.contains(&format!("{{{n}:"))
                })
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn findings(src: &str) -> Vec<(String, usize)> {
        findings_with(src, &SymbolTable::default())
    }

    fn findings_with(src: &str, symbols: &SymbolTable) -> Vec<(String, usize)> {
        let cfg = Config::default();
        let lexed = lex(src);
        let ast = parse(&lexed.toks);
        check_file_x("crates/x/src/lib.rs", src, &lexed, &ast, symbols, &cfg)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn lx07_flags_instant_now_and_systemtime() {
        let got = findings(
            "use std::time::Instant;\n\
             fn f() -> f64 {\n\
                 let t = std::time::Instant::now();\n\
                 t.elapsed().as_secs_f64()\n\
             }\n\
             fn g() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
        );
        let lx07: Vec<usize> = got
            .iter()
            .filter(|(r, _)| r == "LX07")
            .map(|&(_, l)| l)
            .collect();
        assert_eq!(lx07, vec![1, 3, 6, 6], "import, call site, ret type + call");
    }

    #[test]
    fn lx07_call_carries_mechanical_suggestion() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let cfg = Config::default();
        let lexed = lex(src);
        let ast = parse(&lexed.toks);
        let fs = check_file_x("x.rs", src, &lexed, &ast, &SymbolTable::default(), &cfg);
        let sug = fs[0].suggestion.clone();
        assert_eq!(
            sug,
            Some(Suggestion {
                find: "std::time::Instant::now()".to_string(),
                replace: "lexcache_runner::clock::Stopwatch::start()".to_string(),
            })
        );
    }

    #[test]
    fn lx07_silent_in_tests_and_allowed_paths() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let x = std::time::Instant::now(); }\n}\n";
        assert!(findings(src).is_empty(), "test regions are exempt");

        let mut cfg = Config::default();
        cfg.lx07_allow = vec!["crates/runner/src/clock.rs".to_string()];
        let body = "fn f() { let t = std::time::Instant::now(); }\n";
        let lexed = lex(body);
        let ast = parse(&lexed.toks);
        let fs = check_file_x(
            "crates/runner/src/clock.rs",
            body,
            &lexed,
            &ast,
            &SymbolTable::default(),
            &cfg,
        );
        assert!(fs.is_empty(), "the clock boundary itself is allowlisted");
    }

    #[test]
    fn lx08_second_guard_in_scope_is_flagged() {
        let got = findings(
            "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                 let ga = a.lock().unwrap_or_default();\n\
                 let gb = b.lock().unwrap_or_default();\n\
             }\n",
        );
        assert_eq!(got, vec![("LX08".to_string(), 3)]);
    }

    #[test]
    fn lx08_sequential_scopes_are_clean() {
        let got = findings(
            "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                 { let ga = a.lock().unwrap_or_default(); }\n\
                 { let gb = b.lock().unwrap_or_default(); }\n\
             }\n\
             fn g(a: &Mutex<u8>, b: &Mutex<u8>) {\n\
                 let ga = a.lock().unwrap_or_default();\n\
                 drop(ga);\n\
                 let gb = b.lock().unwrap_or_default();\n\
             }\n",
        );
        assert!(got.is_empty(), "braces and drop() both release: {got:?}");
    }

    #[test]
    fn lx08_condvar_wait_on_own_guard_is_sanctioned() {
        // The JobQueue::pop / watchdog shape: one guard, consumed by wait.
        let got = findings(
            "fn pop(q: &Q) -> usize {\n\
                 let mut st = q.state.lock().unwrap_or_default();\n\
                 loop {\n\
                     if st.next < st.len { return st.next; }\n\
                     st = q.ready.wait(st).unwrap_or_default();\n\
                 }\n\
             }\n",
        );
        assert!(
            got.is_empty(),
            "single-guard condvar wait is the idiom: {got:?}"
        );
    }

    #[test]
    fn lx08_wait_while_second_guard_live_is_flagged() {
        let got = findings(
            "fn f(q: &Q, m: &Mutex<u8>) {\n\
                 let g = q.state.lock().unwrap_or_default();\n\
                 let extra = m.lock().unwrap_or_default();\n\
                 let g = q.ready.wait(g).unwrap_or_default();\n\
             }\n",
        );
        assert_eq!(
            got,
            vec![("LX08".to_string(), 3), ("LX08".to_string(), 4)],
            "second acquisition flags, and waiting with `extra` still held flags"
        );
    }

    #[test]
    fn lx08_uses_workspace_symbols_for_guard_returning_fns() {
        let other =
            parse(&lex("pub fn bin_state() -> MutexGuard<'static, u8> { S.lock().unwrap() }").toks);
        let symbols = crate::symbols::build([("crates/bench/src/sweep.rs", &other)]);
        let got = findings_with(
            "fn f(m: &Mutex<u8>) {\n\
                 let g = m.lock().unwrap_or_default();\n\
                 let s = bin_state();\n\
             }\n",
            &symbols,
        );
        assert_eq!(
            got,
            vec![("LX08".to_string(), 3)],
            "cross-file acquisition seen"
        );
    }

    #[test]
    fn lx09_flags_raw_spawn_but_not_scoped() {
        let got = findings(
            "use std::thread::spawn;\n\
             fn f() {\n\
                 let h = std::thread::spawn(|| 1);\n\
                 std::thread::scope(|s| { s.spawn(|| 2); });\n\
             }\n",
        );
        assert_eq!(
            got,
            vec![("LX09".to_string(), 1), ("LX09".to_string(), 3)],
            "import + raw spawn flagged, scope.spawn clean"
        );
    }

    #[test]
    fn lx10_flags_env_var_but_not_args() {
        let got = findings(
            "fn f() -> Option<String> {\n\
                 let _ = std::env::args();\n\
                 std::env::var(\"LEXCACHE_SEED\").ok()\n\
             }\n",
        );
        assert_eq!(got, vec![("LX10".to_string(), 3)]);
    }

    #[test]
    fn lx11_branchy_relaxed_load_needs_why() {
        let bare = "fn f(a: &AtomicBool) { if a.load(Ordering::Relaxed) { go(); } }\n";
        assert_eq!(findings(bare), vec![("LX11".to_string(), 1)]);

        let justified = "fn f(a: &AtomicBool) {\n\
                 // lexlint: why stale read only delays one poll tick\n\
                 if a.load(Ordering::Relaxed) { go(); }\n\
             }\n";
        assert!(findings(justified).is_empty());

        let ret_bool = "fn on(a: &AtomicBool) -> bool { a.load(Ordering::Relaxed) }\n";
        assert_eq!(
            findings(ret_bool),
            vec![("LX11".to_string(), 1)],
            "-> bool fns feed branches at the call site"
        );

        let straight = "fn f(a: &AtomicU64) { let v = a.load(Ordering::Relaxed); rec(v); }\n";
        assert!(findings(straight).is_empty(), "non-branching load is fine");
    }

    #[test]
    fn lx12_flags_results_writes_through_taint() {
        let got = findings(
            "fn f() {\n\
                 let path = format!(\"{}/out.json\", results_dir());\n\
                 let tmp = format!(\"{}.tmp\", path);\n\
                 let f = std::fs::File::create(&tmp);\n\
                 std::fs::write(\"results/direct.json\", \"x\");\n\
             }\n",
        );
        assert_eq!(
            got,
            vec![("LX12".to_string(), 4), ("LX12".to_string(), 5)],
            "transitive taint and direct literal both flagged"
        );
    }

    #[test]
    fn lx12_taint_flows_through_format_captures() {
        let got = findings(
            "fn f() {\n\
                 let path = format!(\"{}/obs.jsonl\", results_dir());\n\
                 let tmp = format!(\"{path}.tmp\");\n\
                 let f = std::fs::File::create(&tmp);\n\
             }\n",
        );
        assert_eq!(
            got,
            vec![("LX12".to_string(), 4)],
            "implicit format capture keeps the taint"
        );
    }

    #[test]
    fn lx12_flags_buffered_and_sink_wrappers() {
        // BufWriter::new / JsonlSink::new hide the same unbuffered
        // write File::create does; one finding per wrapper site (the
        // inner File::create sits inside the scanned argument list).
        let got = findings(
            "fn f() {\n\
                 let path = format!(\"{}/obs.jsonl\", results_dir());\n\
                 let w = BufWriter::new(File::create(&path).unwrap());\n\
                 let s = JsonlSink::new(\"results/obs_fig3.jsonl\");\n\
             }\n",
        );
        assert_eq!(
            got,
            vec![("LX12".to_string(), 3), ("LX12".to_string(), 4)],
            "buffered wrapper and sink constructor both flagged"
        );

        let clean = "fn f(p: &Path) { let w = BufWriter::new(File::create(p).unwrap()); }\n";
        assert!(findings(clean).is_empty(), "untainted wrap is fine");
    }

    #[test]
    fn lx12_ignores_unrelated_writes_and_honors_inline_allow() {
        let clean = "fn f(dir: &Path) { let f = std::fs::File::create(dir.join(\"log.txt\")); }\n";
        assert!(findings(clean).is_empty());

        let allowed = "fn f() {\n\
             // lexlint: allow(LX12): publishes via atomic rename below\n\
             let f = std::fs::File::create(\"results/x.tmp\");\n\
         }\n";
        assert!(findings(allowed).is_empty());
    }
}
