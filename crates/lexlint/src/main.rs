//! CLI entry point: `cargo run -p lexlint -- check [options]`.
//!
//! ```text
//! lexlint check                  lint the workspace, text output
//! lexlint check --format json    one JSON record per finding
//! lexlint check --format sarif   SARIF 2.1.0 document
//! lexlint check --fix-hints      append a suggested fix per finding
//! lexlint check --fix            apply machine-applicable suggestions
//! lexlint check --fix-check      exit 1 if any autofix is unapplied
//! lexlint check --threads N      parallel analysis workers
//! lexlint check --no-cache       skip the incremental cache
//! lexlint check --cache FILE     explicit cache path
//! lexlint check --root DIR       lint a different workspace root
//! lexlint check --config FILE    explicit lexlint.toml path
//! ```
//!
//! Argument parsing follows the same strict contract as `bench::cli`:
//! any unknown flag or malformed value prints the reason plus usage and
//! exits 2 — never a silent default. Both `--flag value` and
//! `--flag=value` forms are accepted.
//!
//! Exit codes: 0 clean, 1 violations found (or, with `--fix-check`,
//! unapplied autofixes), 2 usage or I/O error.

#![forbid(unsafe_code)]

use lexlint::{check_workspace_with, config, fix, report, EngineOptions, Format};
use std::path::PathBuf;

const USAGE: &str = "usage: lexlint check [--format text|json|sarif] [--fix-hints] \
[--fix] [--fix-check] [--threads N] [--no-cache] [--cache FILE] [--root DIR] [--config FILE]";

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

struct Opts {
    format: Format,
    fix_hints: bool,
    apply_fixes: bool,
    fix_check: bool,
    threads: usize,
    no_cache: bool,
    cache: Option<PathBuf>,
    root: PathBuf,
    config_path: Option<PathBuf>,
}

/// Strict flag parsing; `Err(reason)` becomes reason + usage + exit 2.
fn parse(args: Vec<String>) -> Result<Opts, String> {
    let mut opts = Opts {
        format: Format::Text,
        fix_hints: false,
        apply_fixes: false,
        fix_check: false,
        threads: 0,
        no_cache: false,
        cache: None,
        root: PathBuf::from("."),
        config_path: None,
    };
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        // Accept `--flag=value` by splitting once on `=`.
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>| {
            inline
                .clone()
                .or_else(|| it.next())
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        let boolean = matches!(
            flag.as_str(),
            "--fix-hints" | "--fix" | "--fix-check" | "--no-cache"
        );
        if boolean && inline.is_some() {
            return Err(format!("{flag} does not take a value"));
        }
        match flag.as_str() {
            "--format" => {
                opts.format = match value(&mut it)?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format expects `text`, `json` or `sarif`, got `{other}`"
                        ))
                    }
                }
            }
            "--fix-hints" => opts.fix_hints = true,
            "--fix" => opts.apply_fixes = true,
            "--fix-check" => opts.fix_check = true,
            "--threads" => {
                let v = value(&mut it)?;
                opts.threads =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{v}`")
                    })?;
            }
            "--no-cache" => opts.no_cache = true,
            "--cache" => opts.cache = Some(PathBuf::from(value(&mut it)?)),
            "--root" => opts.root = PathBuf::from(value(&mut it)?),
            "--config" => opts.config_path = Some(PathBuf::from(value(&mut it)?)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.apply_fixes && opts.fix_check {
        return Err("--fix and --fix-check are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run(args: Vec<String>) -> i32 {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") => {
            eprintln!("{USAGE}");
            return 0;
        }
        None => {
            eprintln!("{USAGE}");
            return 2;
        }
        Some(other) => {
            eprintln!("lexlint: unknown command `{other}` (try `check`)");
            eprintln!("{USAGE}");
            return 2;
        }
    }

    let opts = match parse(it.collect()) {
        Ok(opts) => opts,
        Err(reason) => {
            eprintln!("lexlint: {reason}");
            eprintln!("{USAGE}");
            return 2;
        }
    };

    let cfg_file = opts
        .config_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lexlint.toml"));
    let cfg = match config::load(&cfg_file) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("lexlint: {e}");
            return 2;
        }
    };
    let engine = EngineOptions {
        threads: opts.threads,
        cache_path: if opts.no_cache {
            None
        } else {
            Some(
                opts.cache
                    .clone()
                    .unwrap_or_else(|| opts.root.join(".lexlint-cache.json")),
            )
        },
    };
    let mut outcome = match check_workspace_with(&opts.root, &cfg, &engine) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lexlint: {e}");
            return 2;
        }
    };

    if opts.apply_fixes {
        let applied = match fix::apply(&opts.root, &outcome.findings) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("lexlint: {e}");
                return 2;
            }
        };
        eprintln!(
            "lexlint: applied {} autofix(es), {} stale",
            applied.applied, applied.stale
        );
        // Re-run once so the report and exit code describe the
        // post-fix tree.
        outcome = match check_workspace_with(&opts.root, &cfg, &engine) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("lexlint: {e}");
                return 2;
            }
        };
    }

    eprintln!(
        "lexlint: {} file(s), {} analyzed, {} reused from cache",
        outcome.total, outcome.analyzed, outcome.reused
    );
    print!(
        "{}",
        report::render(&outcome.findings, opts.format, opts.fix_hints)
    );
    if opts.fix_check {
        let n = fix::applicable(&outcome.findings);
        if n > 0 {
            eprintln!("lexlint: {n} machine-applicable autofix(es) not applied (run `lexlint check --fix`)");
            return 1;
        }
    }
    if outcome.findings.is_empty() {
        0
    } else {
        1
    }
}
