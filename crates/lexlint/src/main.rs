//! CLI entry point: `cargo run -p lexlint -- check [options]`.
//!
//! ```text
//! lexlint check                  lint the workspace, text output
//! lexlint check --format json    one JSON record per finding
//! lexlint check --fix-hints      append a suggested fix per finding
//! lexlint check --root DIR       lint a different workspace root
//! lexlint check --config FILE    explicit lexlint.toml path
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use lexlint::{check_workspace, config, report, Format};
use std::path::PathBuf;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") => {
            eprintln!("usage: lexlint check [--format text|json] [--fix-hints] [--root DIR] [--config FILE]");
            return 0;
        }
        None => {
            eprintln!("usage: lexlint check [--format text|json] [--fix-hints] [--root DIR] [--config FILE]");
            return 2;
        }
        Some(other) => {
            eprintln!("lexlint: unknown command `{other}` (try `check`)");
            return 2;
        }
    }

    let mut format = Format::Text;
    let mut fix_hints = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!("lexlint: --format expects `text` or `json`, got {other:?}");
                    return 2;
                }
            },
            "--fix-hints" => fix_hints = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("lexlint: --root expects a directory");
                    return 2;
                }
            },
            "--config" => match it.next() {
                Some(f) => config_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("lexlint: --config expects a file");
                    return 2;
                }
            },
            other => {
                eprintln!("lexlint: unknown option `{other}`");
                return 2;
            }
        }
    }

    let cfg_file = config_path.unwrap_or_else(|| root.join("lexlint.toml"));
    let cfg = match config::load(&cfg_file) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("lexlint: {e}");
            return 2;
        }
    };
    let findings = match check_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lexlint: {e}");
            return 2;
        }
    };
    print!("{}", report::render(&findings, format, fix_hints));
    if findings.is_empty() {
        0
    } else {
        1
    }
}
