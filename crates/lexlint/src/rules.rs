//! The per-file token rules LX01–LX06 (the symbol-aware rules LX07–
//! LX12 live in [`crate::xrules`]), applied to one lexed file at a
//! time.
//!
//! | rule | invariant |
//! |------|-----------|
//! | LX01 | no `.unwrap()` / `.expect(…)` in library code (bins, `main.rs`, `build.rs` and `#[cfg(test)]` modules are exempt) |
//! | LX02 | no NaN-swallowing float ordering: `partial_cmp` chained into `unwrap_or(Ordering::Equal)`, `unwrap()` or `expect(…)` — use `f64::total_cmp` or the `lexcache_core::float_ord` helpers |
//! | LX03 | no default-hasher `HashMap` / `HashSet` in configured simulation/decision-path directories — iteration order follows a randomized hasher; use `BTreeMap` / `BTreeSet` |
//! | LX04 | no unseeded RNG (`thread_rng`, `rand::rng()`, `from_entropy`) outside `#[cfg(test)]` modules |
//! | LX05 | every `#[allow(…)]` / `#![allow(…)]` carries a `// lexlint: why …` justification on the same or preceding line |
//! | LX06 | no `==` / `!=` where either side is a float literal or a float constant path (`f64::NAN`, `f32::INFINITY`, …) |
//!
//! A finding on line `L` is suppressed by a comment on `L` or `L-1` of
//! the form `// lexlint: allow(LXnn): reason`, or by a matching
//! `[[allow]]` entry in `lexlint.toml`. Both require a reason.

use crate::config::Config;
use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Every rule id this engine knows, in report order.
pub const RULE_IDS: &[&str] = &[
    "LX01", "LX02", "LX03", "LX04", "LX05", "LX06", "LX07", "LX08", "LX09", "LX10", "LX11", "LX12",
];

/// Resolves a rule-id string to its canonical `&'static str` (used
/// when findings are re-hydrated from the lint cache).
pub fn rule_id(name: &str) -> Option<&'static str> {
    RULE_IDS.iter().copied().find(|r| *r == name)
}

/// Report severity of a rule: advisory rules (justification-style,
/// where the fix is a comment) are warnings, the rest are errors.
/// Every finding fails the run either way — severity feeds CI
/// annotation levels, not the exit code.
pub fn severity(rule: &str) -> &'static str {
    match rule {
        "LX05" | "LX11" => "warning",
        _ => "error",
    }
}

/// A machine-applicable replacement on the finding's line: substitute
/// the first occurrence of `find` with `replace`. Only attached when
/// the rewrite is provably behavior-preserving (`--fix` applies them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Exact substring of the source line to replace.
    pub find: String,
    /// Replacement text.
    pub replace: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"LX02"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// A one-line suggested fix.
    pub hint: &'static str,
    /// Machine-applicable fix, when the rewrite is mechanical.
    pub suggestion: Option<Suggestion>,
}

/// How a file participates in the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source: all rules apply.
    Lib,
    /// Binary targets (`src/bin/**`, `main.rs`, `build.rs`): exempt
    /// from LX01 (panicking at the top level is fine).
    Bin,
}

/// Classifies a workspace-relative path.
pub fn role_of(file: &str) -> FileRole {
    let name = file.rsplit('/').next().unwrap_or(file);
    if file.contains("/bin/") || name == "main.rs" || name == "build.rs" {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// Checks one file's source text; returns surviving findings (inline
/// and config suppressions already applied).
pub fn check_file(file: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    check_lexed(file, src, &lex(src), cfg)
}

/// [`check_file`] on an already-lexed file — the engine lexes once and
/// shares the token stream between this pass and [`crate::xrules`].
pub fn check_lexed(file: &str, src: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let role = role_of(file);
    let test_regions = test_mod_regions(&lexed.toks);
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push =
        |rule: &'static str, line: usize, hint: &'static str, sug: Option<Suggestion>| {
            let snippet = lines
                .get(line.saturating_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            raw.push(Finding {
                rule,
                file: file.to_string(),
                line,
                snippet,
                hint,
                suggestion: sug,
            });
        };

    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                // LX01: `.unwrap()` / `.expect(` in library code.
                if role == FileRole::Lib
                    && !in_test(t.line)
                    && (t.text == "unwrap" || t.text == "expect")
                    && prev_is_dot(toks, i)
                    && next_is(toks, i, "(")
                {
                    push(
                        "LX01",
                        t.line,
                        "handle the None/Err arm explicitly (match / let-else / unwrap_or_else), or allowlist with a reason",
                        None,
                    );
                }
                // LX02: NaN-swallowing chains off partial_cmp.
                if t.text == "partial_cmp" && next_is(toks, i, "(") {
                    if let Some(line) = nan_unsafe_chain(toks, i) {
                        push(
                            "LX02",
                            line,
                            "use f64::total_cmp (or lexcache_core::float_ord::total_cmp_f64) so NaNs order deterministically",
                            None,
                        );
                    }
                }
                // LX03: default-hasher maps on the decision path.
                if (t.text == "HashMap" || t.text == "HashSet")
                    && cfg.lx03_applies(file)
                    && !in_test(t.line)
                {
                    // Mechanical rewrite: the BTree twins live in
                    // std::collections too, so even `use` lines fix up.
                    let replace = if t.text == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    push(
                        "LX03",
                        t.line,
                        "use BTreeMap/BTreeSet (or an explicitly seeded hasher) — default-hasher iteration order is randomized per process",
                        Some(Suggestion {
                            find: t.text.clone(),
                            replace: replace.to_string(),
                        }),
                    );
                }
                // LX04: unseeded randomness outside tests.
                if !in_test(t.line) {
                    let unseeded = t.text == "thread_rng"
                        || t.text == "from_entropy"
                        || (t.text == "rng"
                            && i >= 2
                            && toks[i - 1].is_punct("::")
                            && toks[i - 2].is_ident("rand")
                            && next_is(toks, i, "("));
                    if unseeded {
                        push(
                            "LX04",
                            t.line,
                            "seed the generator from the episode/config seed (e.g. StdRng::seed_from_u64) so runs are reproducible",
                            None,
                        );
                    }
                }
                // LX05: unjustified #[allow(...)].
                if t.text == "allow"
                    && next_is(toks, i, "(")
                    && is_attribute_head(toks, i)
                    && !has_why_comment(&lexed.comments, attribute_line(toks, i))
                {
                    push(
                        "LX05",
                        t.line,
                        "add `// lexlint: why <reason>` on the same or preceding line, or remove the allow",
                        None,
                    );
                }
            }
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                // LX06: float equality.
                if float_operand(toks, i) {
                    push(
                        "LX06",
                        t.line,
                        "compare with an explicit tolerance, use total_cmp, or justify with `// lexlint: allow(LX06): <reason>`",
                        None,
                    );
                }
            }
            _ => {}
        }
    }

    raw.into_iter()
        .filter(|f| !inline_suppressed(&lexed.comments, f))
        .filter(|f| !cfg.is_allowed(f.rule, &f.file, &f.snippet))
        .collect()
}

/// The canonical hint text for a rule — used to re-hydrate cached
/// findings without storing the (static) hint per entry.
pub fn hint_for(rule: &str) -> &'static str {
    match rule {
        "LX01" => "handle the None/Err arm explicitly (match / let-else / unwrap_or_else), or allowlist with a reason",
        "LX02" => "use f64::total_cmp (or lexcache_core::float_ord::total_cmp_f64) so NaNs order deterministically",
        "LX03" => "use BTreeMap/BTreeSet (or an explicitly seeded hasher) — default-hasher iteration order is randomized per process",
        "LX04" => "seed the generator from the episode/config seed (e.g. StdRng::seed_from_u64) so runs are reproducible",
        "LX05" => "add `// lexlint: why <reason>` on the same or preceding line, or remove the allow",
        "LX06" => "compare with an explicit tolerance, use total_cmp, or justify with `// lexlint: allow(LX06): <reason>`",
        "LX07" => "route timing through obs::Stopwatch — the raw clock boundary is crates/runner/src/clock.rs (lexlint.toml [lx07])",
        "LX08" => "drop or narrow the held MutexGuard before acquiring another lock or waiting — nested guards deadlock pool-shaped code",
        "LX09" => "use the scoped pool (lexcache_runner::map_indexed / run_robust) instead of raw std::thread::spawn",
        "LX10" => "read configuration through bench::cli::env_var so every knob is a visible, reproducible input",
        "LX11" => "a Relaxed load feeding a branch needs `// lexlint: why <reason>` (or a stronger ordering)",
        "LX12" => "route results/ writes through lexcache_runner::atomic_write (temp + rename) so readers never see a torn file",
        _ => "see the lexlint rules table in README.md",
    }
}

/// Whether the token before `i` is a `.` (method-call position).
pub(crate) fn prev_is_dot(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct(".")
}

/// Whether the token after `i` is the punct `p`.
pub(crate) fn next_is(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i + 1).map(|t| t.is_punct(p)).unwrap_or(false)
}

/// From a `partial_cmp` at `i`, scans the rest of the method chain for
/// a NaN-swallowing continuation. Returns the line to report.
fn nan_unsafe_chain(toks: &[Tok], i: usize) -> Option<usize> {
    // Skip the argument list of partial_cmp itself.
    let mut j = i + 1; // at '('
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Now inspect the continuation: a chain of `.method(...)` calls.
    let window_end = (j + 40).min(toks.len());
    let mut k = j;
    while k < window_end {
        if !toks.get(k).map(|t| t.is_punct(".")).unwrap_or(false) {
            return None; // chain ended without a bad continuation
        }
        let m = toks.get(k + 1)?;
        if m.kind != TokKind::Ident {
            return None;
        }
        match m.text.as_str() {
            "unwrap" | "expect" => return Some(m.line),
            "unwrap_or" | "unwrap_or_else" => {
                // Bad iff the fallback is Ordering::Equal.
                let mut d = 0i32;
                for t in toks.iter().take((k + 2 + 20).min(toks.len())).skip(k + 2) {
                    if t.is_punct("(") {
                        d += 1;
                    } else if t.is_punct(")") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    } else if t.is_ident("Equal") {
                        return Some(m.line);
                    }
                }
                return None;
            }
            _ => {
                // Some other adapter (`map`, `unwrap_or_else`, …): skip
                // its argument list and keep walking the chain.
                let mut d = 0i32;
                let mut p = k + 2;
                if !toks.get(p).map(|t| t.is_punct("(")).unwrap_or(false) {
                    return None; // field access or ?; not a call chain
                }
                while p < toks.len() {
                    if toks[p].is_punct("(") {
                        d += 1;
                    } else if toks[p].is_punct(")") {
                        d -= 1;
                        if d == 0 {
                            p += 1;
                            break;
                        }
                    }
                    p += 1;
                }
                k = p;
            }
        }
    }
    None
}

/// Whether `toks[i]` (`allow`) sits directly inside an attribute:
/// `# [ allow (` or `# ! [ allow (`.
fn is_attribute_head(toks: &[Tok], i: usize) -> bool {
    if i >= 2 && toks[i - 1].is_punct("[") && toks[i - 2].is_punct("#") {
        return true;
    }
    i >= 3 && toks[i - 1].is_punct("[") && toks[i - 2].is_punct("!") && toks[i - 3].is_punct("#")
}

/// Line of the `#` that opens the attribute containing `toks[i]`.
fn attribute_line(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j > 0 && !toks[j].is_punct("#") {
        j -= 1;
    }
    toks[j].line
}

/// Whether either operand adjacent to the `==`/`!=` at `i` is a float:
/// a float literal, or a `f64::CONST` / `f32::CONST` path.
fn float_operand(toks: &[Tok], i: usize) -> bool {
    // Right side: first token of RHS (skipping a unary minus).
    if let Some(r) = toks.get(i + 1) {
        if r.kind == TokKind::Float {
            return true;
        }
        if r.is_punct("-")
            && toks
                .get(i + 2)
                .map(|t| t.kind == TokKind::Float)
                .unwrap_or(false)
        {
            return true;
        }
        if (r.is_ident("f64") || r.is_ident("f32"))
            && toks.get(i + 2).map(|t| t.is_punct("::")).unwrap_or(false)
        {
            return true;
        }
    }
    // Left side: last token of LHS.
    if i > 0 {
        let l = &toks[i - 1];
        if l.kind == TokKind::Float {
            return true;
        }
        // `f64::NAN == x`: tokens `f64` `::` `NAN` `==`.
        if l.kind == TokKind::Ident
            && i >= 3
            && toks[i - 2].is_punct("::")
            && (toks[i - 3].is_ident("f64") || toks[i - 3].is_ident("f32"))
        {
            return true;
        }
    }
    false
}

/// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
pub(crate) fn test_mod_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip this attribute and any further attributes.
            let mut j = skip_attribute(toks, i);
            while toks.get(j).map(|t| t.is_punct("#")).unwrap_or(false) {
                j = skip_attribute(toks, j);
            }
            // `mod name {` or `pub mod name {` etc.
            let mut k = j;
            while toks
                .get(k)
                .map(|t| t.kind == TokKind::Ident && t.text != "mod")
                .unwrap_or(false)
            {
                k += 1;
            }
            if toks.get(k).map(|t| t.is_ident("mod")).unwrap_or(false) {
                // Find the opening brace, then its match.
                let mut b = k;
                while b < toks.len() && !toks[b].is_punct("{") && !toks[b].is_punct(";") {
                    b += 1;
                }
                if b < toks.len() && toks[b].is_punct("{") {
                    let start_line = toks[i].line;
                    let mut depth = 0i32;
                    let mut e = b;
                    while e < toks.len() {
                        if toks[e].is_punct("{") {
                            depth += 1;
                        } else if toks[e].is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        e += 1;
                    }
                    let end_line = toks.get(e).map(|t| t.line).unwrap_or(usize::MAX);
                    regions.push((start_line, end_line));
                    i = e + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Whether `toks[i]` starts a `#[cfg(test)]`-style attribute (also
/// matches `cfg(any(test, …))` / `cfg(all(test, …))`).
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_punct("#") {
        return false;
    }
    let j = if toks.get(i + 1).map(|t| t.is_punct("!")).unwrap_or(false) {
        i + 2
    } else {
        i + 1
    };
    if !toks.get(j).map(|t| t.is_punct("[")).unwrap_or(false) {
        return false;
    }
    if !toks.get(j + 1).map(|t| t.is_ident("cfg")).unwrap_or(false) {
        return false;
    }
    // Scan the attribute body for the bare ident `test`.
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        if toks[k].is_punct("[") {
            depth += 1;
        } else if toks[k].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth > 0 && toks[k].is_ident("test") {
            // `cfg(not(test))` guards non-test code — not a test region.
            let negated = k >= 2 && toks[k - 1].is_punct("(") && toks[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
        k += 1;
    }
    false
}

/// Returns the index just past the attribute starting at `toks[i]`
/// (which must be `#`).
fn skip_attribute(toks: &[Tok], i: usize) -> usize {
    let mut k = i;
    let mut depth = 0i32;
    while k < toks.len() {
        if toks[k].is_punct("[") {
            depth += 1;
        } else if toks[k].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Whether a `// lexlint: why …` comment sits on `line` or `line-1`.
pub(crate) fn has_why_comment(comments: &[Comment], line: usize) -> bool {
    comments.iter().any(|c| {
        (c.line == line || c.line + 1 == line)
            && c.text.contains("lexlint: why")
            && justification_after(&c.text, "lexlint: why")
    })
}

/// Whether a finding is suppressed by `// lexlint: allow(LXnn): …` on
/// its own or the preceding line.
pub(crate) fn inline_suppressed(comments: &[Comment], f: &Finding) -> bool {
    let marker = format!("lexlint: allow({})", f.rule);
    comments.iter().any(|c| {
        (c.line == f.line || c.line + 1 == f.line)
            && c.text.contains(&marker)
            && justification_after(&c.text, &marker)
    })
}

/// Whether non-trivial justification text follows `marker` in `text`.
fn justification_after(text: &str, marker: &str) -> bool {
    text.split(marker)
        .nth(1)
        .map(|rest| {
            rest.trim_start_matches([':', ')', '-', '—', ' '])
                .chars()
                .filter(|c| c.is_alphanumeric())
                .count()
                >= 3
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(file: &str, src: &str) -> Vec<&'static str> {
        let cfg = Config::default();
        check_file(file, src, &cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    fn findings_with(file: &str, src: &str, cfg: &Config) -> Vec<&'static str> {
        check_file(file, src, cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn lx01_flags_lib_unwrap_but_not_bins_or_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(findings("crates/a/src/lib.rs", src), vec!["LX01"]);
        assert!(findings("crates/a/src/bin/tool.rs", src).is_empty());
        assert!(findings("src/main.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}";
        assert!(findings("crates/a/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn lx01_does_not_flag_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(findings("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lx02_flags_equal_fallback_and_unwrap() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }";
        assert_eq!(findings("crates/a/src/bin/tool.rs", src), vec!["LX02"]);
        let src2 = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }";
        // Lib code: both LX01 (unwrap) and LX02 (NaN-unsafe) fire.
        let got = findings("crates/a/src/lib.rs", src2);
        assert!(got.contains(&"LX01") && got.contains(&"LX02"));
    }

    #[test]
    fn lx02_accepts_proper_option_handling() {
        let src = "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }";
        assert!(findings("crates/a/src/lib.rs", src).is_empty());
        let src2 = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(findings("crates/a/src/lib.rs", src2).is_empty());
    }

    #[test]
    fn lx03_only_fires_on_configured_paths() {
        let cfg = crate::config::parse("[lx03]\npaths = [\"crates/core/src\"]\n").unwrap();
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        assert_eq!(
            findings_with("crates/core/src/cache.rs", src, &cfg),
            vec!["LX03", "LX03", "LX03"]
        );
        assert!(findings_with("crates/neural/src/lstm.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lx04_flags_thread_rng_and_rand_rng() {
        assert_eq!(
            findings(
                "crates/a/src/lib.rs",
                "fn f() { let mut r = rand::thread_rng(); }"
            ),
            vec!["LX04"]
        );
        assert_eq!(
            findings("crates/a/src/lib.rs", "fn f() { let mut r = rand::rng(); }"),
            vec!["LX04"]
        );
        // Seeded construction is fine.
        assert!(findings(
            "crates/a/src/lib.rs",
            "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }"
        )
        .is_empty());
        // `self.rng()` accessor is not `rand::rng()`.
        assert!(findings("crates/a/src/lib.rs", "fn f(&self) { self.rng().next(); }").is_empty());
    }

    #[test]
    fn lx05_requires_why_comment() {
        let bad = "#[allow(dead_code)]\nfn f() {}";
        assert_eq!(findings("crates/a/src/lib.rs", bad), vec!["LX05"]);
        let good = "// lexlint: why benchmark scaffolding kept for the next PR\n#[allow(dead_code)]\nfn f() {}";
        assert!(findings("crates/a/src/lib.rs", good).is_empty());
        let good_same_line = "#[allow(dead_code)] // lexlint: why kept for API parity\nfn f() {}";
        assert!(findings("crates/a/src/lib.rs", good_same_line).is_empty());
    }

    #[test]
    fn lx06_flags_float_literal_comparison() {
        assert_eq!(
            findings("crates/a/src/lib.rs", "fn f(x: f64) -> bool { x == 0.0 }"),
            vec!["LX06"]
        );
        assert_eq!(
            findings("crates/a/src/lib.rs", "fn f(x: f64) -> bool { 1.5 != x }"),
            vec!["LX06"]
        );
        assert_eq!(
            findings(
                "crates/a/src/lib.rs",
                "fn f(x: f64) -> bool { x == f64::INFINITY }"
            ),
            vec!["LX06"]
        );
        // A unary minus must not hide the float literal.
        assert_eq!(
            findings("crates/a/src/lib.rs", "fn f(x: f64) -> bool { x == -1.0 }"),
            vec!["LX06"]
        );
        // Integer comparisons are fine.
        assert!(findings("crates/a/src/lib.rs", "fn f(x: usize) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn inline_allow_with_reason_suppresses() {
        let src = "fn f(x: f64) -> bool {\n  // lexlint: allow(LX06): exact zero guard before division\n  x == 0.0\n}";
        assert!(findings("crates/a/src/lib.rs", src).is_empty());
        // Wrong rule id does not suppress.
        let src2 = "fn f(x: f64) -> bool {\n  // lexlint: allow(LX01): wrong rule\n  x == 0.0\n}";
        assert_eq!(findings("crates/a/src/lib.rs", src2), vec!["LX06"]);
        // A bare marker without a reason does not suppress.
        let src3 = "fn f(x: f64) -> bool {\n  // lexlint: allow(LX06)\n  x == 0.0\n}";
        assert_eq!(findings("crates/a/src/lib.rs", src3), vec!["LX06"]);
    }

    #[test]
    fn config_allowlist_suppresses_by_pattern() {
        let cfg = crate::config::parse(
            "[[allow]]\nrule = \"LX01\"\nfile = \"crates/a/src/lib.rs\"\npattern = \"expect(\\\"invariant\\\")\"\nreason = \"constructor guarantees it\"\n",
        )
        .unwrap();
        let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant\") }";
        assert!(findings_with("crates/a/src/lib.rs", src, &cfg).is_empty());
        let other = "fn f(x: Option<u8>) -> u8 { x.expect(\"other\") }";
        assert_eq!(
            findings_with("crates/a/src/lib.rs", other, &cfg),
            vec!["LX01"]
        );
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"fn f() { let s = "x.unwrap() == 0.0 HashMap thread_rng"; } // x.unwrap()"#;
        assert!(findings("crates/a/src/lib.rs", src).is_empty());
    }
}
