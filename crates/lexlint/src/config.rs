//! `lexlint.toml`: the allowlist and per-rule configuration.
//!
//! Parsed with a hand-rolled reader for the small TOML subset the tool
//! needs — `[table]` / `[[array-of-table]]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]` (single- or multi-line) and `#`
//! comments. Unknown keys are ignored so the format can grow without
//! breaking older checkouts.
//!
//! ```toml
//! # Directories (workspace-relative prefixes) that form the
//! # simulation/decision path, where LX03 forbids default-hasher maps.
//! [lx03]
//! paths = ["crates/core/src", "crates/simplex/src"]
//!
//! # A vetted exception: suppress one rule in one file, for lines
//! # containing `pattern`. `reason` is mandatory.
//! [[allow]]
//! rule = "LX01"
//! file = "crates/simplex/src/transport.rs"
//! pattern = "expect(\"leaving arc"
//! reason = "spanning-tree invariant; panic message carries context"
//! ```

/// One `[[allow]]` entry: a vetted, documented exception.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule id, e.g. `"LX01"`.
    pub rule: String,
    /// Workspace-relative file path the exception applies to.
    pub file: String,
    /// Substring the offending source line must contain. Empty matches
    /// any line in the file (file-wide exception).
    pub pattern: String,
    /// Why this exception is sound. Entries without a reason are
    /// rejected at load time.
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory prefixes where LX03 (no default-hasher maps) applies.
    pub lx03_paths: Vec<String>,
    /// Path prefixes exempt from LX07 — the workspace's designated
    /// wall-clock boundary (normally just `crates/runner/src/clock.rs`).
    pub lx07_allow: Vec<String>,
    /// Path prefixes exempt from LX08 (lock discipline).
    pub lx08_allow: Vec<String>,
    /// Path prefixes exempt from LX09 — where raw `thread::spawn` is
    /// the implementation of the sanctioned pool itself.
    pub lx09_allow: Vec<String>,
    /// Path prefixes exempt from LX10 — the audited env-read gateway.
    pub lx10_allow: Vec<String>,
    /// Path prefixes exempt from LX12 — where `atomic_write` itself
    /// performs the raw write it exists to encapsulate.
    pub lx12_allow: Vec<String>,
    /// FNV-1a digest of the raw config text; keys the lint cache so a
    /// config edit invalidates every cached verdict.
    pub digest: u64,
    /// Vetted exceptions.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Whether a finding for `rule` at `file`:`line_text` is covered by
    /// an allowlist entry.
    pub fn is_allowed(&self, rule: &str, file: &str, line_text: &str) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && a.file == file
                && (a.pattern.is_empty() || line_text.contains(&a.pattern))
        })
    }

    /// Whether LX03 applies to `file` (a workspace-relative path).
    pub fn lx03_applies(&self, file: &str) -> bool {
        self.lx03_paths.iter().any(|p| file.starts_with(p.as_str()))
    }

    /// Whether `file` sits under a per-rule `allow_paths` prefix for
    /// `rule` (LX07/LX08/LX09/LX10/LX12 accept path allowlists).
    pub fn rule_path_allowed(&self, rule: &str, file: &str) -> bool {
        let paths = match rule {
            "LX07" => &self.lx07_allow,
            "LX08" => &self.lx08_allow,
            "LX09" => &self.lx09_allow,
            "LX10" => &self.lx10_allow,
            "LX12" => &self.lx12_allow,
            _ => return false,
        };
        paths.iter().any(|p| file.starts_with(p.as_str()))
    }
}

/// Parses the configuration text. Returns `Err` with a line-numbered
/// message on malformed input or an `[[allow]]` entry missing its
/// `reason`.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config {
        digest: lexcache_runner::fnv1a64(text.as_bytes()),
        ..Config::default()
    };
    let mut section = String::new();
    let mut pending: Option<AllowEntry> = None;

    // Join multi-line arrays: buffer until brackets balance.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut buf = String::new();
    let mut buf_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if buf.is_empty() {
            if line.trim().is_empty() {
                continue;
            }
            buf_line = idx + 1;
            buf.push_str(&line);
        } else {
            buf.push(' ');
            buf.push_str(&line);
        }
        if balanced(&buf) {
            logical.push((buf_line, std::mem::take(&mut buf)));
        }
    }
    if !buf.is_empty() {
        return Err(format!("line {buf_line}: unterminated array"));
    }

    for (lineno, line) in logical {
        let line = line.trim().to_string();
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush_allow(&mut cfg, &mut pending)?;
            section = name.trim().to_string();
            if section == "allow" {
                pending = Some(AllowEntry::default());
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush_allow(&mut cfg, &mut pending)?;
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match (section.as_str(), key) {
            ("lx03", "paths") => {
                cfg.lx03_paths =
                    parse_string_array(value).map_err(|e| format!("line {lineno}: {e}"))?;
            }
            ("lx07", "allow_paths")
            | ("lx08", "allow_paths")
            | ("lx09", "allow_paths")
            | ("lx10", "allow_paths")
            | ("lx12", "allow_paths") => {
                let paths = parse_string_array(value).map_err(|e| format!("line {lineno}: {e}"))?;
                match section.as_str() {
                    "lx07" => cfg.lx07_allow = paths,
                    "lx08" => cfg.lx08_allow = paths,
                    "lx09" => cfg.lx09_allow = paths,
                    "lx10" => cfg.lx10_allow = paths,
                    _ => cfg.lx12_allow = paths,
                }
            }
            ("allow", _) => {
                let entry = pending
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside [[allow]] table"))?;
                let s = parse_string(value).map_err(|e| format!("line {lineno}: {e}"))?;
                match key {
                    "rule" => entry.rule = s,
                    "file" => entry.file = s,
                    "pattern" => entry.pattern = s,
                    "reason" => entry.reason = s,
                    _ => {} // forward compatibility
                }
            }
            _ => {} // unknown section/key: ignore
        }
    }
    flush_allow(&mut cfg, &mut pending)?;
    Ok(cfg)
}

/// Loads and parses a config file; a missing file yields the default
/// (empty) configuration so the tool runs out of the box.
pub fn load(path: &std::path::Path) -> Result<Config, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn flush_allow(cfg: &mut Config, pending: &mut Option<AllowEntry>) -> Result<(), String> {
    if let Some(entry) = pending.take() {
        if entry.rule.is_empty() || entry.file.is_empty() {
            return Err("[[allow]] entry needs both `rule` and `file`".to_string());
        }
        if entry.reason.trim().is_empty() {
            return Err(format!(
                "[[allow]] entry for {} in {} has no `reason` — every exception must be justified",
                entry.rule, entry.file
            ));
        }
        cfg.allows.push(entry);
    }
    Ok(())
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            out.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                out.push(c);
                escape = true;
            }
            '"' => {
                in_str = !in_str;
                out.push(c);
            }
            '#' if !in_str => break,
            _ => out.push(c),
        }
    }
    out
}

/// Whether brackets and quotes are balanced (so a logical line ended).
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_str
}

/// Parses `"a string"` with `\"` / `\\` escapes.
fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))?;
    let mut out = String::new();
    let mut escape = false;
    for c in inner.chars() {
        if escape {
            out.push(c);
            escape = false;
        } else if c == '\\' {
            escape = true;
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses `["a", "b", "c"]`.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lx03_paths_and_allows() {
        let cfg = parse(
            r#"
# comment
[lx03]
paths = ["crates/core/src", "crates/simplex/src"]

[[allow]]
rule = "LX01"
file = "crates/foo/src/lib.rs"
pattern = "expect(\"invariant\")"
reason = "constructor guarantees non-empty"
"#,
        )
        .unwrap();
        assert_eq!(cfg.lx03_paths.len(), 2);
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.lx03_applies("crates/core/src/sim.rs"));
        assert!(!cfg.lx03_applies("crates/neural/src/lstm.rs"));
        assert!(cfg.is_allowed(
            "LX01",
            "crates/foo/src/lib.rs",
            r#"let x = y.expect("invariant");"#
        ));
        assert!(!cfg.is_allowed("LX01", "crates/foo/src/lib.rs", "let x = y.unwrap();"));
    }

    #[test]
    fn parses_rule_allow_paths() {
        let cfg = parse(
            "[lx07]\nallow_paths = [\"crates/runner/src/clock.rs\"]\n\
             [lx09]\nallow_paths = [\"crates/runner/src\"]\n\
             [lx10]\nallow_paths = [\"crates/bench/src/cli.rs\"]\n\
             [lx12]\nallow_paths = [\"crates/runner/src/journal.rs\"]\n",
        )
        .unwrap();
        assert!(cfg.rule_path_allowed("LX07", "crates/runner/src/clock.rs"));
        assert!(!cfg.rule_path_allowed("LX07", "crates/runner/src/pool.rs"));
        assert!(cfg.rule_path_allowed("LX09", "crates/runner/src/pool.rs"));
        assert!(cfg.rule_path_allowed("LX10", "crates/bench/src/cli.rs"));
        assert!(!cfg.rule_path_allowed("LX10", "crates/bench/src/lib.rs"));
        assert!(cfg.rule_path_allowed("LX12", "crates/runner/src/journal.rs"));
        assert!(!cfg.rule_path_allowed("LX01", "crates/runner/src/pool.rs"));
    }

    #[test]
    fn digest_tracks_text_changes() {
        let a = parse("[lx03]\npaths = [\"a\"]\n").unwrap();
        let b = parse("[lx03]\npaths = [\"b\"]\n").unwrap();
        let a2 = parse("[lx03]\npaths = [\"a\"]\n").unwrap();
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.digest, a2.digest);
        assert_ne!(a.digest, 0, "real text never digests to the default");
    }

    #[test]
    fn multi_line_arrays() {
        let cfg = parse("[lx03]\npaths = [\n  \"a\",\n  \"b\",\n]\n").unwrap();
        assert_eq!(cfg.lx03_paths, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let err = parse("[[allow]]\nrule = \"LX01\"\nfile = \"x.rs\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn empty_pattern_matches_whole_file() {
        let cfg =
            parse("[[allow]]\nrule = \"LX06\"\nfile = \"f.rs\"\nreason = \"vetted\"\n").unwrap();
        assert!(cfg.is_allowed("LX06", "f.rs", "anything == 0.0"));
    }

    #[test]
    fn missing_file_loads_default() {
        let cfg = load(std::path::Path::new("/nonexistent/lexlint.toml")).unwrap();
        assert!(cfg.allows.is_empty() && cfg.lx03_paths.is_empty());
    }
}
