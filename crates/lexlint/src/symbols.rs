//! The workspace symbol table: what one file must know about the
//! others before cross-file rules can run.
//!
//! Built from every target file's [`FileAst`](crate::parse::FileAst)
//! in canonical path order, it records the `pub fn` surface of the
//! workspace — in particular which functions return a `MutexGuard`, so
//! LX08 can treat `bin_state()` the same as a literal `.lock()` call —
//! and digests that surface with the journal's FNV-1a hash. The digest
//! keys the incremental cache: editing a file invalidates only that
//! file *unless* the edit changes a `pub fn` signature, in which case
//! every cached verdict that might have depended on it is discarded.

use crate::parse::FileAst;
use std::collections::BTreeSet;

/// Cross-file facts the rules consult.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Names of `pub fn`s anywhere in the workspace whose return type
    /// mentions `MutexGuard` — calling one acquires a lock.
    pub guard_fns: BTreeSet<String>,
    /// FNV-1a digest over every `pub fn` signature (file, name, return
    /// tokens), in canonical file order.
    pub digest: u64,
}

impl SymbolTable {
    /// Whether calling `name` is known to acquire a `MutexGuard`.
    pub fn acquires_guard(&self, name: &str) -> bool {
        self.guard_fns.contains(name)
    }
}

/// Builds the table from `(workspace-relative path, ast)` pairs, which
/// must already be in canonical (sorted-path) order so the digest is
/// deterministic.
pub fn build<'a, I>(files: I) -> SymbolTable
where
    I: IntoIterator<Item = (&'a str, &'a FileAst)>,
{
    let mut guard_fns = BTreeSet::new();
    let mut sig = String::new();
    for (file, ast) in files {
        for f in &ast.fns {
            if !f.is_pub {
                continue;
            }
            sig.push_str(file);
            sig.push_str("::");
            sig.push_str(&f.name);
            sig.push_str(" -> ");
            sig.push_str(&f.ret.join(" "));
            sig.push('\n');
            if f.ret.iter().any(|t| t == "MutexGuard") {
                guard_fns.insert(f.name.clone());
            }
        }
    }
    SymbolTable {
        guard_fns,
        digest: lexcache_runner::fnv1a64(sig.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn ast(src: &str) -> FileAst {
        parse(&lex(src).toks)
    }

    #[test]
    fn pub_guard_returning_fns_are_indexed() {
        let a = ast(
            "pub fn bin_state() -> MutexGuard<'static, u8> { S.lock().unwrap() }\n\
             fn private_lock() -> MutexGuard<'static, u8> { S.lock().unwrap() }\n\
             pub fn plain() -> u8 { 1 }\n",
        );
        let table = build([("crates/a/src/lib.rs", &a)]);
        assert!(table.acquires_guard("bin_state"));
        assert!(
            !table.acquires_guard("private_lock"),
            "private fns are per-file knowledge, not workspace symbols"
        );
        assert!(!table.acquires_guard("plain"));
    }

    #[test]
    fn digest_ignores_bodies_but_tracks_signatures() {
        let a1 = ast("pub fn f() -> u8 { 1 }");
        let a2 = ast("pub fn f() -> u8 { 2 }");
        let a3 = ast("pub fn f() -> u16 { 1 }");
        let d1 = build([("x.rs", &a1)]).digest;
        let d2 = build([("x.rs", &a2)]).digest;
        let d3 = build([("x.rs", &a3)]).digest;
        assert_eq!(d1, d2, "body edits keep the symbol surface stable");
        assert_ne!(d1, d3, "signature edits change the digest");
    }

    #[test]
    fn empty_workspace_digests_consistently() {
        let t1 = build(std::iter::empty());
        let t2 = build(std::iter::empty());
        assert_eq!(t1.digest, t2.digest);
        assert!(t1.guard_fns.is_empty());
    }
}
