//! LX10 fixture: hidden env configuration vs the audited gateway.
use std::env::var; // import-level finding

pub fn bad_env() -> Option<String> {
    std::env::var("LEXCACHE_HIDDEN").ok() // finding
}

pub fn args_are_fine() -> usize {
    std::env::args().count()
}

pub fn vetted() -> Option<String> {
    // lexlint: allow(LX10): fixture probe — documents the gateway rule
    std::env::var("LEXCACHE_PROBE").ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_reads_in_tests_are_fine() {
        let _ = std::env::var("LEXCACHE_TEST");
    }
}
