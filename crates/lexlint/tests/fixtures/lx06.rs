//! LX06 fixture: `==` / `!=` on float expressions.

pub fn bad_eq(x: f64) -> bool {
    x == 0.5 // VIOLATION LX06
}

pub fn bad_ne(x: f64) -> bool {
    x != 1.0 // VIOLATION LX06
}

pub fn bad_const_compare(x: f64) -> bool {
    x == f64::INFINITY // VIOLATION LX06
}

pub fn good_tolerance(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}

pub fn good_int_compare(n: usize) -> bool {
    n == 3
}

pub fn suppressed(x: f64) -> bool {
    // lexlint: allow(LX06): exact-zero divisor guard
    x != 0.0
}

pub fn allowlisted_via_config(x: f64) -> bool {
    x == 2.5 // vetted-lx06-site
}
