//! LX05 fixture: `#[allow(...)]` needs a `// lexlint: why` note.

#[allow(dead_code)] // VIOLATION LX05 — no why-note
fn unjustified() {}

// lexlint: why retained for the public API sketch in the README
#[allow(dead_code)]
fn justified_on_previous_line() {}

#[allow(dead_code)] // lexlint: why exercised only behind the bench feature
fn justified_same_line() {}

#[allow(clippy::too_many_arguments)] // VIOLATION LX05 — no why-note
fn unjustified_clippy(_a: u8, _b: u8, _c: u8, _d: u8, _e: u8, _f: u8, _g: u8, _h: u8) {}

fn allow_as_an_identifier_is_fine() {
    fn allow(x: u32) -> u32 {
        x
    }
    let _ = allow(1);
}
