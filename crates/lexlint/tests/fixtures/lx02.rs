//! LX02 fixture: NaN-swallowing continuations of `partial_cmp`.

use std::cmp::Ordering;

pub fn bad_unwrap_or(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); // VIOLATION LX02
}

pub fn bad_unwrap_or_else(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| Ordering::Equal)); // VIOLATION LX02
}

pub fn bad_expect(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite")); // VIOLATION LX02
}

pub fn bad_plain_unwrap(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // VIOLATION LX02 (and LX01)
}

pub fn good_total_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn good_handled(a: f64, b: f64) -> Ordering {
    // Explicitly handling the None arm is fine.
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => Ordering::Less,
    }
}

pub fn allowlisted_via_config(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); // vetted-lx02-site
}
