//! LX12 fixture: raw writes into results/ vs atomic_write.

pub fn bad_direct() {
    let _ = std::fs::write("results/table.txt", "x"); // finding: literal path
}

pub fn bad_tainted() {
    let path = format!("{}/fig.json", results_dir());
    let tmp = format!("{path}.tmp");
    let _ = std::fs::File::create(&tmp); // finding: transitive taint
}

pub fn bad_buffered() {
    let path = format!("{}/obs.jsonl", results_dir());
    let _ = std::io::BufWriter::new(std::fs::File::create(&path).unwrap()); // finding: buffered wrapper
}

pub fn good_elsewhere() {
    let _ = std::fs::write("target/scratch.txt", "x");
}

pub fn vetted() {
    // lexlint: allow(LX12): fixture probe — published via rename
    let _ = std::fs::File::create("results/probe.tmp");
}

fn results_dir() -> &'static str {
    "results"
}
