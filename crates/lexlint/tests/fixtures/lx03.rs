//! LX03 fixture: default-hasher maps on the decision path. The test
//! passes this file under a configured `[lx03] paths` prefix.

use std::collections::{BTreeMap, HashMap, HashSet}; // VIOLATION LX03 (x2: HashMap, HashSet)

pub fn bad_map() -> HashMap<u32, f64> {
    HashMap::new() // VIOLATION LX03 (return type line above also flags)
}

pub fn good_map() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}

pub fn suppressed_probe(items: &[u32]) -> bool {
    // lexlint: allow(LX03): ephemeral membership probe, never iterated
    let set: HashSet<u32> = items.iter().copied().collect();
    set.contains(&7)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hashmap_in_tests_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
