//! Deliberately violating source for the CLI integration test.

use std::collections::HashMap; // LX03

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // LX01
}

pub fn close_enough(x: f64) -> bool {
    x == 0.25 // LX06
}

pub fn allowlisted_sentinel(x: f64) -> bool {
    x == -1.0 // vetted-sentinel
}

pub fn counts() -> HashMap<u32, u32> {
    HashMap::new() // LX03
}

pub fn timing() -> std::time::Duration {
    let start = std::time::Instant::now(); // LX07
    start.elapsed()
}

pub fn two_guards(a: &std::sync::Mutex<u8>, b: &std::sync::Mutex<u8>) -> u8 {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    let gb = b.lock().unwrap_or_else(|p| p.into_inner()); // LX08
    *ga + *gb
}

pub fn spawn_off() -> u8 {
    let handle = std::thread::spawn(|| 1); // LX09
    handle.join().unwrap_or(0)
}

pub fn hidden_knob() -> Option<String> {
    std::env::var("WS_KNOB").ok() // LX10
}

pub fn busy(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(std::sync::atomic::Ordering::Relaxed) // LX11
}

pub fn raw_results_write() {
    let _ = std::fs::write("results/ws.txt", "x"); // LX12
}
