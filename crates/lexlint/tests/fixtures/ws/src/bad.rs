//! Deliberately violating source for the CLI integration test.

use std::collections::HashMap; // LX03

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // LX01
}

pub fn close_enough(x: f64) -> bool {
    x == 0.25 // LX06
}

pub fn allowlisted_sentinel(x: f64) -> bool {
    x == -1.0 // vetted-sentinel
}

pub fn counts() -> HashMap<u32, u32> {
    HashMap::new() // LX03
}
