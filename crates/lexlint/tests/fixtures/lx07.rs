//! LX07 fixture: raw wall-clock reads outside the clock boundary.
use std::time::Instant; // import-level finding

pub fn bad_timing() -> f64 {
    let start = std::time::Instant::now(); // finding with autofix
    start.elapsed().as_secs_f64()
}

pub fn bad_wall() -> std::time::SystemTime {
    // ret-type finding + call finding
    std::time::SystemTime::now()
}

pub fn vetted() {
    // lexlint: allow(LX07): fixture probe — measures the linter itself
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
