//! LX11 fixture: branch-feeding Relaxed loads need a why-comment.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn bad_branch(flag: &AtomicBool) -> u64 {
    if flag.load(Ordering::Relaxed) {
        // finding above: Relaxed load in an `if` head, no why-comment
        1
    } else {
        0
    }
}

pub fn bad_predicate(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed) // finding: `-> bool` branches at call sites
}

pub fn justified(flag: &AtomicBool) -> u64 {
    // lexlint: why a stale read only delays one poll tick, never a result
    if flag.load(Ordering::Relaxed) {
        1
    } else {
        0
    }
}

pub fn straight_line(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

pub fn acquire_in_branch(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
