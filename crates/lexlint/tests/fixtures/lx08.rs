//! LX08 fixture: lock discipline — nested guards and condvar waits.
use std::sync::{Condvar, Mutex};

pub fn nested_guards(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    let gb = b.lock().unwrap_or_else(|p| p.into_inner()); // finding: second guard
    *ga + *gb
}

pub fn wait_with_extra(q: &(Mutex<bool>, Condvar), m: &Mutex<u8>) {
    let g = q.0.lock().unwrap_or_else(|p| p.into_inner());
    let extra = m.lock().unwrap_or_else(|p| p.into_inner()); // finding: second guard
    let _g = q.1.wait(g).unwrap_or_else(|p| p.into_inner()); // finding: wait holding `extra`
    drop(extra);
}

pub fn sequential_scopes(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {
    let mut total = 0;
    {
        let ga = a.lock().unwrap_or_else(|p| p.into_inner());
        total += *ga;
    }
    {
        let gb = b.lock().unwrap_or_else(|p| p.into_inner());
        total += *gb;
    }
    total
}

pub fn explicit_drop(a: &Mutex<u8>, b: &Mutex<u8>) {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    drop(ga);
    let gb = b.lock().unwrap_or_else(|p| p.into_inner());
    drop(gb);
}

pub fn condvar_idiom(q: &(Mutex<bool>, Condvar)) {
    let mut done = q.0.lock().unwrap_or_else(|p| p.into_inner());
    while !*done {
        done = q.1.wait(done).unwrap_or_else(|p| p.into_inner());
    }
}

pub fn vetted(a: &Mutex<u8>, b: &Mutex<u8>) {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    // lexlint: allow(LX08): fixture probe — a→b order holds everywhere
    let gb = b.lock().unwrap_or_else(|p| p.into_inner());
    drop(gb);
    drop(ga);
}
