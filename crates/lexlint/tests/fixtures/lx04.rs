//! LX04 fixture: unseeded randomness outside tests.

pub fn bad_thread_rng() -> u64 {
    let mut rng = rand::thread_rng(); // VIOLATION LX04
    rng.random()
}

pub fn bad_rand_rng() -> u64 {
    let mut rng = rand::rng(); // VIOLATION LX04
    rng.random()
}

pub fn bad_from_entropy() -> StdRng {
    StdRng::from_entropy() // VIOLATION LX04
}

pub fn good_seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn suppressed() -> u64 {
    // lexlint: allow(LX04): jitter for a human-facing demo, never simulated
    rand::thread_rng().random()
}

pub fn rng_as_a_variable_is_fine(rng: &mut StdRng) -> u64 {
    // A local named `rng` is not an unseeded source.
    rng.random()
}

#[cfg(test)]
mod tests {
    #[test]
    fn thread_rng_in_tests_is_exempt() {
        let _ = rand::thread_rng();
    }
}
