//! LX09 fixture: raw thread spawns vs the scoped pool.
use std::thread::spawn; // import-level finding

pub fn bad_spawn() {
    let handle = std::thread::spawn(|| 1); // finding
    let _ = handle.join();
}

pub fn good_scoped() {
    std::thread::scope(|s| {
        s.spawn(|| 2);
    });
}

pub fn vetted() {
    // lexlint: allow(LX09): fixture probe — joined immediately below
    let handle = std::thread::spawn(|| 3);
    let _ = handle.join();
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        let handle = std::thread::spawn(|| 4);
        let _ = handle.join();
    }
}
