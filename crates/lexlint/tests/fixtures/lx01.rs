//! LX01 fixture: `.unwrap()` / `.expect()` in library code.
//! Expected findings (plain): lines tagged VIOLATION below.

pub fn plain_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION LX01
}

pub fn plain_expect(x: Option<u32>) -> u32 {
    x.expect("always present") // VIOLATION LX01
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // lexlint: allow(LX01): checked non-empty two lines up
    x.unwrap()
}

pub fn allowlisted_via_config(x: Option<u32>) -> u32 {
    x.expect("vetted-by-config") // neutralized by [[allow]] in the test
}

pub fn not_a_method_call() -> &'static str {
    // Bare identifiers named `unwrap` are not findings.
    fn unwrap() -> &'static str {
        "ok"
    }
    unwrap()
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(Some(3).unwrap(), 3);
        assert_eq!(Some(4).expect("test"), 4);
    }
}
